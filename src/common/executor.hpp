// Per-instance protocol executors (the multi-core protocol layer).
//
// The deterministic Simulator runs every state machine on one thread; the
// networked deployments were doing the same, leaving the E3 atomic bench
// pinned at a 1-core ceiling.  An ExecutorPool gives each *protocol
// instance tree* its own serial execution lane: the executor for a message
// is a stable hash of the instance tag's root segment (the part before the
// first '/'), so "abc0" and every sub-instance it spawns ("abc0/rbc/…",
// "abc0/vba/…") land on the same executor and run in arrival order, while
// independent top-level instances ("abc1", "abc2", …) run concurrently on
// other executors.  That is exactly the unit that owns its own mutable
// state — sub-instances call back into their parent, so splitting a tree
// across threads would race; splitting *trees* across threads cannot.
//
// Inboxes are mutex-light MPSC: producers take a short push lock per task;
// the consumer swaps the whole backlog out under one lock acquisition and
// runs the batch lock-free.  There is no per-task lock round-trip on the
// hot consumer path and never a lock held while protocol code runs.
//
// Determinism contract: executor routing never reorders messages within an
// instance tree (stable assignment + FIFO inbox), and WAL writes stay on
// the single pump thread in arrival order, so replay — which always runs
// sequentially — is bit-exact regardless of how many executors the
// original run used.
//
// `executors == 0` selects sequential mode: post() runs the task inline on
// the caller, which is byte-for-byte the old single-threaded behavior.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <vector>

namespace sintra::common {

class ExecutorPool {
 public:
  using Task = std::function<void()>;
  /// Called (from an executor thread) after a batch of tasks ran; used to
  /// wake an event loop whose wake-up condition the tasks may have made
  /// true (e.g. "all payloads delivered").
  using Notify = std::function<void()>;

  /// `executors == 0` selects sequential inline mode.
  explicit ExecutorPool(std::size_t executors);
  ~ExecutorPool();

  ExecutorPool(const ExecutorPool&) = delete;
  ExecutorPool& operator=(const ExecutorPool&) = delete;

  [[nodiscard]] std::size_t executors() const { return lanes_.size(); }
  [[nodiscard]] bool sequential() const { return lanes_.empty(); }

  /// Register a wake-up hook.  Hooks are multicast: every registered hook
  /// fires after a batch, so several hosts (e.g. multiple tenants of a
  /// machine-wide pool) can each wake their own event loop — a second
  /// registration adds a listener instead of silently stealing the hook.
  void set_notify(Notify notify);

  /// Root segment of an instance tag: everything before the first '/'
  /// ("abc2/rbc/5/echo" -> "abc2").  The whole tree shares one executor.
  [[nodiscard]] static std::string_view tag_root(std::string_view tag);

  /// Stable 64-bit FNV-1a over the root segment — independent of pool
  /// size, process, run; the basis of deterministic executor assignment.
  [[nodiscard]] static std::uint64_t tag_hash(std::string_view tag);

  /// Executor index for an instance tag (0 in sequential mode).
  [[nodiscard]] std::size_t executor_for(std::string_view tag) const;

  /// Executor index for an instance tag within shard `group`.  The lane is
  /// a stable hash of (group, tag root): each tree inside a group stays
  /// serial-FIFO, while the same tag in distinct groups lands on distinct
  /// lanes — S shards hosted on one machine-wide pool spread across cores
  /// instead of colliding on identical tag roots.  Group 0 reproduces the
  /// legacy single-tenant assignment exactly.
  [[nodiscard]] std::size_t executor_for(std::uint64_t group, std::string_view tag) const;

  /// Enqueue a task on executor `index`'s MPSC inbox (any thread).
  /// Sequential mode — and a stopped pool — runs the task inline.
  void post(std::size_t index, Task task);

  /// Block until every posted task has finished (any thread but not an
  /// executor thread).
  void wait_idle();

  /// Drain-and-join: executors run every task already posted, then exit.
  /// Idempotent; the destructor calls it.  Tasks posted after stop() run
  /// inline on the caller.
  void stop();

  struct Stats {
    std::uint64_t posted = 0;             ///< tasks handed to post()
    std::uint64_t batches = 0;            ///< consumer swap-outs (lock acquisitions)
    std::vector<std::uint64_t> executed;  ///< tasks run, per executor
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct Lane {
    std::mutex mutex;
    std::condition_variable cv;
    std::vector<Task> queue;
    std::thread thread;
    std::uint64_t executed = 0;  // guarded by mutex
    std::uint64_t batches = 0;   // guarded by mutex
  };

  void lane_loop(Lane& lane);

  std::vector<std::unique_ptr<Lane>> lanes_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> pending_{0};
  std::atomic<std::uint64_t> posted_{0};
  std::mutex idle_mutex_;
  std::condition_variable idle_cv_;
  std::mutex notify_mutex_;
  std::vector<Notify> notifies_;  ///< multicast: every registered hook fires
};

}  // namespace sintra::common
