file(REMOVE_RECURSE
  "libsintra_app.a"
)
