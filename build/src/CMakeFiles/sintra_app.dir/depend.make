# Empty dependencies file for sintra_app.
# This may be replaced when dependencies are built.
