
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/auth.cpp" "src/CMakeFiles/sintra_app.dir/app/auth.cpp.o" "gcc" "src/CMakeFiles/sintra_app.dir/app/auth.cpp.o.d"
  "/root/repo/src/app/ca.cpp" "src/CMakeFiles/sintra_app.dir/app/ca.cpp.o" "gcc" "src/CMakeFiles/sintra_app.dir/app/ca.cpp.o.d"
  "/root/repo/src/app/client.cpp" "src/CMakeFiles/sintra_app.dir/app/client.cpp.o" "gcc" "src/CMakeFiles/sintra_app.dir/app/client.cpp.o.d"
  "/root/repo/src/app/directory.cpp" "src/CMakeFiles/sintra_app.dir/app/directory.cpp.o" "gcc" "src/CMakeFiles/sintra_app.dir/app/directory.cpp.o.d"
  "/root/repo/src/app/notary.cpp" "src/CMakeFiles/sintra_app.dir/app/notary.cpp.o" "gcc" "src/CMakeFiles/sintra_app.dir/app/notary.cpp.o.d"
  "/root/repo/src/app/replica.cpp" "src/CMakeFiles/sintra_app.dir/app/replica.cpp.o" "gcc" "src/CMakeFiles/sintra_app.dir/app/replica.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sintra_protocols.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sintra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sintra_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sintra_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sintra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
