file(REMOVE_RECURSE
  "CMakeFiles/sintra_app.dir/app/auth.cpp.o"
  "CMakeFiles/sintra_app.dir/app/auth.cpp.o.d"
  "CMakeFiles/sintra_app.dir/app/ca.cpp.o"
  "CMakeFiles/sintra_app.dir/app/ca.cpp.o.d"
  "CMakeFiles/sintra_app.dir/app/client.cpp.o"
  "CMakeFiles/sintra_app.dir/app/client.cpp.o.d"
  "CMakeFiles/sintra_app.dir/app/directory.cpp.o"
  "CMakeFiles/sintra_app.dir/app/directory.cpp.o.d"
  "CMakeFiles/sintra_app.dir/app/notary.cpp.o"
  "CMakeFiles/sintra_app.dir/app/notary.cpp.o.d"
  "CMakeFiles/sintra_app.dir/app/replica.cpp.o"
  "CMakeFiles/sintra_app.dir/app/replica.cpp.o.d"
  "libsintra_app.a"
  "libsintra_app.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sintra_app.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
