file(REMOVE_RECURSE
  "libsintra_net.a"
)
