# Empty compiler generated dependencies file for sintra_net.
# This may be replaced when dependencies are built.
