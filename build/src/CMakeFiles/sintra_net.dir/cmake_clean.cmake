file(REMOVE_RECURSE
  "CMakeFiles/sintra_net.dir/net/corruption.cpp.o"
  "CMakeFiles/sintra_net.dir/net/corruption.cpp.o.d"
  "CMakeFiles/sintra_net.dir/net/party.cpp.o"
  "CMakeFiles/sintra_net.dir/net/party.cpp.o.d"
  "CMakeFiles/sintra_net.dir/net/scheduler.cpp.o"
  "CMakeFiles/sintra_net.dir/net/scheduler.cpp.o.d"
  "CMakeFiles/sintra_net.dir/net/simulator.cpp.o"
  "CMakeFiles/sintra_net.dir/net/simulator.cpp.o.d"
  "libsintra_net.a"
  "libsintra_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sintra_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
