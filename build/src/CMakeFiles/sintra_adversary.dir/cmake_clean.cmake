file(REMOVE_RECURSE
  "CMakeFiles/sintra_adversary.dir/adversary/examples.cpp.o"
  "CMakeFiles/sintra_adversary.dir/adversary/examples.cpp.o.d"
  "CMakeFiles/sintra_adversary.dir/adversary/formula.cpp.o"
  "CMakeFiles/sintra_adversary.dir/adversary/formula.cpp.o.d"
  "CMakeFiles/sintra_adversary.dir/adversary/hybrid.cpp.o"
  "CMakeFiles/sintra_adversary.dir/adversary/hybrid.cpp.o.d"
  "CMakeFiles/sintra_adversary.dir/adversary/lsss.cpp.o"
  "CMakeFiles/sintra_adversary.dir/adversary/lsss.cpp.o.d"
  "CMakeFiles/sintra_adversary.dir/adversary/quorum.cpp.o"
  "CMakeFiles/sintra_adversary.dir/adversary/quorum.cpp.o.d"
  "CMakeFiles/sintra_adversary.dir/adversary/structure.cpp.o"
  "CMakeFiles/sintra_adversary.dir/adversary/structure.cpp.o.d"
  "libsintra_adversary.a"
  "libsintra_adversary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sintra_adversary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
