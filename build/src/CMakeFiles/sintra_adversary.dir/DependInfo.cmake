
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversary/examples.cpp" "src/CMakeFiles/sintra_adversary.dir/adversary/examples.cpp.o" "gcc" "src/CMakeFiles/sintra_adversary.dir/adversary/examples.cpp.o.d"
  "/root/repo/src/adversary/formula.cpp" "src/CMakeFiles/sintra_adversary.dir/adversary/formula.cpp.o" "gcc" "src/CMakeFiles/sintra_adversary.dir/adversary/formula.cpp.o.d"
  "/root/repo/src/adversary/hybrid.cpp" "src/CMakeFiles/sintra_adversary.dir/adversary/hybrid.cpp.o" "gcc" "src/CMakeFiles/sintra_adversary.dir/adversary/hybrid.cpp.o.d"
  "/root/repo/src/adversary/lsss.cpp" "src/CMakeFiles/sintra_adversary.dir/adversary/lsss.cpp.o" "gcc" "src/CMakeFiles/sintra_adversary.dir/adversary/lsss.cpp.o.d"
  "/root/repo/src/adversary/quorum.cpp" "src/CMakeFiles/sintra_adversary.dir/adversary/quorum.cpp.o" "gcc" "src/CMakeFiles/sintra_adversary.dir/adversary/quorum.cpp.o.d"
  "/root/repo/src/adversary/structure.cpp" "src/CMakeFiles/sintra_adversary.dir/adversary/structure.cpp.o" "gcc" "src/CMakeFiles/sintra_adversary.dir/adversary/structure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sintra_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sintra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
