file(REMOVE_RECURSE
  "libsintra_adversary.a"
)
