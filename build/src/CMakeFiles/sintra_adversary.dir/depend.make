# Empty dependencies file for sintra_adversary.
# This may be replaced when dependencies are built.
