# Empty dependencies file for sintra_protocols.
# This may be replaced when dependencies are built.
