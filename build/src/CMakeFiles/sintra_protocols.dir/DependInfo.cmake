
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocols/abba.cpp" "src/CMakeFiles/sintra_protocols.dir/protocols/abba.cpp.o" "gcc" "src/CMakeFiles/sintra_protocols.dir/protocols/abba.cpp.o.d"
  "/root/repo/src/protocols/atomic.cpp" "src/CMakeFiles/sintra_protocols.dir/protocols/atomic.cpp.o" "gcc" "src/CMakeFiles/sintra_protocols.dir/protocols/atomic.cpp.o.d"
  "/root/repo/src/protocols/baselines/pbft_like.cpp" "src/CMakeFiles/sintra_protocols.dir/protocols/baselines/pbft_like.cpp.o" "gcc" "src/CMakeFiles/sintra_protocols.dir/protocols/baselines/pbft_like.cpp.o.d"
  "/root/repo/src/protocols/baselines/reliable_only.cpp" "src/CMakeFiles/sintra_protocols.dir/protocols/baselines/reliable_only.cpp.o" "gcc" "src/CMakeFiles/sintra_protocols.dir/protocols/baselines/reliable_only.cpp.o.d"
  "/root/repo/src/protocols/broadcast.cpp" "src/CMakeFiles/sintra_protocols.dir/protocols/broadcast.cpp.o" "gcc" "src/CMakeFiles/sintra_protocols.dir/protocols/broadcast.cpp.o.d"
  "/root/repo/src/protocols/causal.cpp" "src/CMakeFiles/sintra_protocols.dir/protocols/causal.cpp.o" "gcc" "src/CMakeFiles/sintra_protocols.dir/protocols/causal.cpp.o.d"
  "/root/repo/src/protocols/consistent.cpp" "src/CMakeFiles/sintra_protocols.dir/protocols/consistent.cpp.o" "gcc" "src/CMakeFiles/sintra_protocols.dir/protocols/consistent.cpp.o.d"
  "/root/repo/src/protocols/optimistic.cpp" "src/CMakeFiles/sintra_protocols.dir/protocols/optimistic.cpp.o" "gcc" "src/CMakeFiles/sintra_protocols.dir/protocols/optimistic.cpp.o.d"
  "/root/repo/src/protocols/refresh.cpp" "src/CMakeFiles/sintra_protocols.dir/protocols/refresh.cpp.o" "gcc" "src/CMakeFiles/sintra_protocols.dir/protocols/refresh.cpp.o.d"
  "/root/repo/src/protocols/vba.cpp" "src/CMakeFiles/sintra_protocols.dir/protocols/vba.cpp.o" "gcc" "src/CMakeFiles/sintra_protocols.dir/protocols/vba.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/sintra_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sintra_adversary.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sintra_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/sintra_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
