file(REMOVE_RECURSE
  "libsintra_protocols.a"
)
