file(REMOVE_RECURSE
  "CMakeFiles/sintra_protocols.dir/protocols/abba.cpp.o"
  "CMakeFiles/sintra_protocols.dir/protocols/abba.cpp.o.d"
  "CMakeFiles/sintra_protocols.dir/protocols/atomic.cpp.o"
  "CMakeFiles/sintra_protocols.dir/protocols/atomic.cpp.o.d"
  "CMakeFiles/sintra_protocols.dir/protocols/baselines/pbft_like.cpp.o"
  "CMakeFiles/sintra_protocols.dir/protocols/baselines/pbft_like.cpp.o.d"
  "CMakeFiles/sintra_protocols.dir/protocols/baselines/reliable_only.cpp.o"
  "CMakeFiles/sintra_protocols.dir/protocols/baselines/reliable_only.cpp.o.d"
  "CMakeFiles/sintra_protocols.dir/protocols/broadcast.cpp.o"
  "CMakeFiles/sintra_protocols.dir/protocols/broadcast.cpp.o.d"
  "CMakeFiles/sintra_protocols.dir/protocols/causal.cpp.o"
  "CMakeFiles/sintra_protocols.dir/protocols/causal.cpp.o.d"
  "CMakeFiles/sintra_protocols.dir/protocols/consistent.cpp.o"
  "CMakeFiles/sintra_protocols.dir/protocols/consistent.cpp.o.d"
  "CMakeFiles/sintra_protocols.dir/protocols/optimistic.cpp.o"
  "CMakeFiles/sintra_protocols.dir/protocols/optimistic.cpp.o.d"
  "CMakeFiles/sintra_protocols.dir/protocols/refresh.cpp.o"
  "CMakeFiles/sintra_protocols.dir/protocols/refresh.cpp.o.d"
  "CMakeFiles/sintra_protocols.dir/protocols/vba.cpp.o"
  "CMakeFiles/sintra_protocols.dir/protocols/vba.cpp.o.d"
  "libsintra_protocols.a"
  "libsintra_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sintra_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
