file(REMOVE_RECURSE
  "CMakeFiles/sintra_common.dir/common/bytes.cpp.o"
  "CMakeFiles/sintra_common.dir/common/bytes.cpp.o.d"
  "CMakeFiles/sintra_common.dir/common/logging.cpp.o"
  "CMakeFiles/sintra_common.dir/common/logging.cpp.o.d"
  "CMakeFiles/sintra_common.dir/common/rng.cpp.o"
  "CMakeFiles/sintra_common.dir/common/rng.cpp.o.d"
  "CMakeFiles/sintra_common.dir/common/serialize.cpp.o"
  "CMakeFiles/sintra_common.dir/common/serialize.cpp.o.d"
  "libsintra_common.a"
  "libsintra_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sintra_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
