file(REMOVE_RECURSE
  "libsintra_common.a"
)
