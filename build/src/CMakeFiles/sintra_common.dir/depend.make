# Empty dependencies file for sintra_common.
# This may be replaced when dependencies are built.
