file(REMOVE_RECURSE
  "CMakeFiles/optimistic_failover.dir/optimistic_failover.cpp.o"
  "CMakeFiles/optimistic_failover.dir/optimistic_failover.cpp.o.d"
  "optimistic_failover"
  "optimistic_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimistic_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
