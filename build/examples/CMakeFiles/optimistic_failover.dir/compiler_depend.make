# Empty compiler generated dependencies file for optimistic_failover.
# This may be replaced when dependencies are built.
