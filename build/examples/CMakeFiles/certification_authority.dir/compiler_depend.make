# Empty compiler generated dependencies file for certification_authority.
# This may be replaced when dependencies are built.
