file(REMOVE_RECURSE
  "CMakeFiles/certification_authority.dir/certification_authority.cpp.o"
  "CMakeFiles/certification_authority.dir/certification_authority.cpp.o.d"
  "certification_authority"
  "certification_authority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/certification_authority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
