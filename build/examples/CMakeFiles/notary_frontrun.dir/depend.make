# Empty dependencies file for notary_frontrun.
# This may be replaced when dependencies are built.
