file(REMOVE_RECURSE
  "CMakeFiles/notary_frontrun.dir/notary_frontrun.cpp.o"
  "CMakeFiles/notary_frontrun.dir/notary_frontrun.cpp.o.d"
  "notary_frontrun"
  "notary_frontrun.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/notary_frontrun.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
