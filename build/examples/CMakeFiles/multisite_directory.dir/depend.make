# Empty dependencies file for multisite_directory.
# This may be replaced when dependencies are built.
