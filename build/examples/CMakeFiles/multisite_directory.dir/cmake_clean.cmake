file(REMOVE_RECURSE
  "CMakeFiles/multisite_directory.dir/multisite_directory.cpp.o"
  "CMakeFiles/multisite_directory.dir/multisite_directory.cpp.o.d"
  "multisite_directory"
  "multisite_directory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multisite_directory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
