# Empty dependencies file for bench_e9_msg_complexity.
# This may be replaced when dependencies are built.
