file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_msg_complexity.dir/bench_e9_msg_complexity.cpp.o"
  "CMakeFiles/bench_e9_msg_complexity.dir/bench_e9_msg_complexity.cpp.o.d"
  "bench_e9_msg_complexity"
  "bench_e9_msg_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_msg_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
