file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_abba_rounds.dir/bench_e2_abba_rounds.cpp.o"
  "CMakeFiles/bench_e2_abba_rounds.dir/bench_e2_abba_rounds.cpp.o.d"
  "bench_e2_abba_rounds"
  "bench_e2_abba_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_abba_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
