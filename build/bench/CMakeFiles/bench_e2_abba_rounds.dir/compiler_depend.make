# Empty compiler generated dependencies file for bench_e2_abba_rounds.
# This may be replaced when dependencies are built.
