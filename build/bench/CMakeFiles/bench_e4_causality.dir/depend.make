# Empty dependencies file for bench_e4_causality.
# This may be replaced when dependencies are built.
