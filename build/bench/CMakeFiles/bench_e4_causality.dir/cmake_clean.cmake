file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_causality.dir/bench_e4_causality.cpp.o"
  "CMakeFiles/bench_e4_causality.dir/bench_e4_causality.cpp.o.d"
  "bench_e4_causality"
  "bench_e4_causality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_causality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
