# Empty dependencies file for bench_e7_crypto.
# This may be replaced when dependencies are built.
