file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_crypto.dir/bench_e7_crypto.cpp.o"
  "CMakeFiles/bench_e7_crypto.dir/bench_e7_crypto.cpp.o.d"
  "bench_e7_crypto"
  "bench_e7_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
