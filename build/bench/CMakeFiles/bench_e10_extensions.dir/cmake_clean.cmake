file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_extensions.dir/bench_e10_extensions.cpp.o"
  "CMakeFiles/bench_e10_extensions.dir/bench_e10_extensions.cpp.o.d"
  "bench_e10_extensions"
  "bench_e10_extensions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
