file(REMOVE_RECURSE
  "CMakeFiles/bench_f1_comparison.dir/bench_f1_comparison.cpp.o"
  "CMakeFiles/bench_f1_comparison.dir/bench_f1_comparison.cpp.o.d"
  "bench_f1_comparison"
  "bench_f1_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_f1_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
