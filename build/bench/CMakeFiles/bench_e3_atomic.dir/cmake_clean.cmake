file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_atomic.dir/bench_e3_atomic.cpp.o"
  "CMakeFiles/bench_e3_atomic.dir/bench_e3_atomic.cpp.o.d"
  "bench_e3_atomic"
  "bench_e3_atomic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_atomic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
