# Empty compiler generated dependencies file for bench_e3_atomic.
# This may be replaced when dependencies are built.
