file(REMOVE_RECURSE
  "CMakeFiles/byzantine_attack_test.dir/byzantine_attack_test.cpp.o"
  "CMakeFiles/byzantine_attack_test.dir/byzantine_attack_test.cpp.o.d"
  "byzantine_attack_test"
  "byzantine_attack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/byzantine_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
