file(REMOVE_RECURSE
  "CMakeFiles/vss_test.dir/vss_test.cpp.o"
  "CMakeFiles/vss_test.dir/vss_test.cpp.o.d"
  "vss_test"
  "vss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
