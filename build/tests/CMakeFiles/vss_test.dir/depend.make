# Empty dependencies file for vss_test.
# This may be replaced when dependencies are built.
