# Empty dependencies file for dealer_test.
# This may be replaced when dependencies are built.
