file(REMOVE_RECURSE
  "CMakeFiles/dealer_test.dir/dealer_test.cpp.o"
  "CMakeFiles/dealer_test.dir/dealer_test.cpp.o.d"
  "dealer_test"
  "dealer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dealer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
