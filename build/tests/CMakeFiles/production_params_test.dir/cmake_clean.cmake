file(REMOVE_RECURSE
  "CMakeFiles/production_params_test.dir/production_params_test.cpp.o"
  "CMakeFiles/production_params_test.dir/production_params_test.cpp.o.d"
  "production_params_test"
  "production_params_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/production_params_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
