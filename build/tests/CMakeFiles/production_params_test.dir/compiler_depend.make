# Empty compiler generated dependencies file for production_params_test.
# This may be replaced when dependencies are built.
