file(REMOVE_RECURSE
  "CMakeFiles/lsss_test.dir/lsss_test.cpp.o"
  "CMakeFiles/lsss_test.dir/lsss_test.cpp.o.d"
  "lsss_test"
  "lsss_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
