# Empty dependencies file for lsss_test.
# This may be replaced when dependencies are built.
