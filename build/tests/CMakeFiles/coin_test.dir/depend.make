# Empty dependencies file for coin_test.
# This may be replaced when dependencies are built.
