# Empty compiler generated dependencies file for vba_test.
# This may be replaced when dependencies are built.
