file(REMOVE_RECURSE
  "CMakeFiles/vba_test.dir/vba_test.cpp.o"
  "CMakeFiles/vba_test.dir/vba_test.cpp.o.d"
  "vba_test"
  "vba_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vba_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
