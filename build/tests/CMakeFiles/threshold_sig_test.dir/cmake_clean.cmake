file(REMOVE_RECURSE
  "CMakeFiles/threshold_sig_test.dir/threshold_sig_test.cpp.o"
  "CMakeFiles/threshold_sig_test.dir/threshold_sig_test.cpp.o.d"
  "threshold_sig_test"
  "threshold_sig_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_sig_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
