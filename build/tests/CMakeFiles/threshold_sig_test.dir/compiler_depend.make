# Empty compiler generated dependencies file for threshold_sig_test.
# This may be replaced when dependencies are built.
