# Empty dependencies file for abba_test.
# This may be replaced when dependencies are built.
