file(REMOVE_RECURSE
  "CMakeFiles/abba_test.dir/abba_test.cpp.o"
  "CMakeFiles/abba_test.dir/abba_test.cpp.o.d"
  "abba_test"
  "abba_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abba_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
