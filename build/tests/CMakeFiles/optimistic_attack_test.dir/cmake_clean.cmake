file(REMOVE_RECURSE
  "CMakeFiles/optimistic_attack_test.dir/optimistic_attack_test.cpp.o"
  "CMakeFiles/optimistic_attack_test.dir/optimistic_attack_test.cpp.o.d"
  "optimistic_attack_test"
  "optimistic_attack_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimistic_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
