# Empty dependencies file for optimistic_attack_test.
# This may be replaced when dependencies are built.
