file(REMOVE_RECURSE
  "CMakeFiles/tdh2_test.dir/tdh2_test.cpp.o"
  "CMakeFiles/tdh2_test.dir/tdh2_test.cpp.o.d"
  "tdh2_test"
  "tdh2_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tdh2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
