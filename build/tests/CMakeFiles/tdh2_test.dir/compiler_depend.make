# Empty compiler generated dependencies file for tdh2_test.
# This may be replaced when dependencies are built.
