# Empty dependencies file for quorum_property_test.
# This may be replaced when dependencies are built.
