file(REMOVE_RECURSE
  "CMakeFiles/quorum_property_test.dir/quorum_property_test.cpp.o"
  "CMakeFiles/quorum_property_test.dir/quorum_property_test.cpp.o.d"
  "quorum_property_test"
  "quorum_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quorum_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
