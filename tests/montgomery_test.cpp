// Differential tests for the Montgomery/REDC fast path and the fixed-base /
// multi-exponentiation layers: every fast path must be bit-identical to the
// schoolbook reference path (pow_mod_reference, mul_mod) over random inputs
// for all built-in group moduli and the precomputed RSA moduli, including
// the edge cases (zero, one, base >= m, maximum-width operands).
#include "crypto/group_schnorr.hpp"
#include "crypto/threshold_sig.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace sintra::crypto {
namespace {

std::vector<BigInt> interesting_moduli() {
  std::vector<BigInt> moduli;
  moduli.push_back(SchnorrGroup::test()->p());
  moduli.push_back(SchnorrGroup::production()->p());
  moduli.push_back(SchnorrGroup::big()->p());
  moduli.push_back(SchnorrGroup::test()->q());
  for (int bits : {128, 256, 512}) {
    RsaParams params = RsaParams::precomputed(bits);
    moduli.push_back(params.p * params.q);
  }
  return moduli;
}

TEST(MontgomeryTest, MulModMatchesReferenceOnRandomInputs) {
  Rng rng(101);
  for (const BigInt& m : interesting_moduli()) {
    Montgomery mont(m);
    for (int i = 0; i < 50; ++i) {
      const BigInt a = BigInt::random_below(rng, m);
      const BigInt b = BigInt::random_below(rng, m);
      EXPECT_EQ(mont.mul_mod(a, b), BigInt::mul_mod(a, b, m));
    }
  }
}

TEST(MontgomeryTest, PowMatchesReferenceOnRandomInputs) {
  Rng rng(102);
  for (const BigInt& m : interesting_moduli()) {
    Montgomery mont(m);
    for (int i = 0; i < 12; ++i) {
      const BigInt base = BigInt::random_below(rng, m);
      const BigInt exp = BigInt::random_bits(rng, 1 + static_cast<std::size_t>(i) * 53 % 600);
      EXPECT_EQ(mont.pow(base, exp), BigInt::pow_mod_reference(base, exp, m));
      // The public dispatcher must agree with both paths.
      EXPECT_EQ(BigInt::pow_mod(base, exp, m), BigInt::pow_mod_reference(base, exp, m));
    }
  }
}

TEST(MontgomeryTest, PowEdgeCases) {
  for (const BigInt& m : interesting_moduli()) {
    Montgomery mont(m);
    const BigInt order_sized = m - BigInt(1);
    // Zero and one bases/exponents.
    EXPECT_TRUE(mont.pow(BigInt(0), BigInt(0)).is_one());
    EXPECT_TRUE(mont.pow(BigInt(7), BigInt(0)).is_one());
    EXPECT_TRUE(mont.pow(BigInt(1), order_sized).is_one());
    EXPECT_TRUE(mont.pow(BigInt(0), order_sized).is_zero());
    // Base at and beyond the modulus must be reduced first.
    EXPECT_EQ(mont.pow(m, BigInt(3)), BigInt(0));
    const BigInt beyond = m + BigInt(12345);
    EXPECT_EQ(mont.pow(beyond, order_sized),
              BigInt::pow_mod_reference(beyond, order_sized, m));
    // Maximum-width operands: m-1 raised to m-1.
    EXPECT_EQ(mont.pow(order_sized, order_sized),
              BigInt::pow_mod_reference(order_sized, order_sized, m));
    // mul_mod with maximum-width operands.
    EXPECT_EQ(mont.mul_mod(order_sized, order_sized),
              BigInt::mul_mod(order_sized, order_sized, m));
  }
}

TEST(MontgomeryTest, Pow2MatchesProductOfReferencePowers) {
  Rng rng(103);
  for (const BigInt& m : interesting_moduli()) {
    Montgomery mont(m);
    for (int i = 0; i < 10; ++i) {
      const BigInt b1 = BigInt::random_below(rng, m);
      const BigInt b2 = BigInt::random_below(rng, m);
      // Deliberately unbalanced exponent widths (the threshold-RSA shape).
      const BigInt e1 = BigInt::random_bits(rng, 1 + static_cast<std::size_t>(i) * 131 % 700);
      const BigInt e2 = BigInt::random_bits(rng, 1 + static_cast<std::size_t>(i) * 17 % 130);
      const BigInt want = BigInt::mul_mod(BigInt::pow_mod_reference(b1, e1, m),
                                          BigInt::pow_mod_reference(b2, e2, m), m);
      EXPECT_EQ(mont.pow2(b1, e1, b2, e2), want);
      EXPECT_EQ(BigInt::pow2_mod(b1, e1, b2, e2, m), want);
    }
    // Degenerate exponents.
    const BigInt b = BigInt::random_below(rng, m);
    EXPECT_EQ(mont.pow2(b, BigInt(0), b, BigInt(0)), BigInt(1).mod(m));
    EXPECT_EQ(mont.pow2(b, BigInt(1), BigInt(0), BigInt(5)), BigInt(0));
  }
}

TEST(MontgomeryTest, MultiPowMatchesProductOfReferencePowers) {
  Rng rng(104);
  for (const BigInt& m : interesting_moduli()) {
    Montgomery mont(m);
    for (std::size_t k : {std::size_t{1}, std::size_t{3}, std::size_t{7}}) {
      std::vector<std::pair<BigInt, BigInt>> pairs;
      BigInt want(1);
      for (std::size_t i = 0; i < k; ++i) {
        BigInt base = BigInt::random_below(rng, m);
        BigInt exp = BigInt::random_bits(rng, 1 + (i * 97) % 250);
        want = BigInt::mul_mod(want, BigInt::pow_mod_reference(base, exp, m), m);
        pairs.emplace_back(std::move(base), std::move(exp));
      }
      EXPECT_EQ(mont.multi_pow(pairs), want);
    }
    EXPECT_TRUE(mont.multi_pow({}).is_one());
  }
}

TEST(MontgomeryTest, DispatcherFallsBackForEvenAndTinyModuli) {
  Rng rng(105);
  const BigInt even = BigInt::from_string("0x8ae6dc1067c0315a91688ea460719bfafa266000");
  const BigInt tiny(9223372036854775783LL);  // largest 63-bit prime, single limb
  for (const BigInt& m : {even, tiny}) {
    for (int i = 0; i < 8; ++i) {
      const BigInt base = BigInt::random_below(rng, m);
      const BigInt exp = BigInt::random_bits(rng, 1 + static_cast<std::size_t>(i) * 37 % 200);
      EXPECT_EQ(BigInt::pow_mod(base, exp, m), BigInt::pow_mod_reference(base, exp, m));
      EXPECT_EQ(BigInt::pow2_mod(base, exp, base, exp, m),
                BigInt::mul_mod(BigInt::pow_mod_reference(base, exp, m),
                                BigInt::pow_mod_reference(base, exp, m), m));
    }
  }
  EXPECT_TRUE(BigInt::pow_mod(BigInt(7), BigInt(100), BigInt(1)).is_zero());
  EXPECT_TRUE(BigInt::pow2_mod(BigInt(7), BigInt(3), BigInt(5), BigInt(2), BigInt(1)).is_zero());
}

class GroupFastPathTest : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] std::shared_ptr<const SchnorrGroup> group() const {
    std::string which = GetParam();
    if (which == "test") return SchnorrGroup::test();
    if (which == "default") return SchnorrGroup::production();
    return SchnorrGroup::big();
  }
};

TEST_P(GroupFastPathTest, ExpMatchesReference) {
  auto g = group();
  Rng rng(106);
  for (int i = 0; i < 8; ++i) {
    const BigInt s = g->random_scalar(rng);
    const Element h = g->exp_g(s);  // fixed-base path
    EXPECT_EQ(h.residue(), BigInt::pow_mod_reference(g->g().residue(), s, g->p()));
    // Generic-base path on a fresh element.
    const BigInt s2 = g->random_scalar(rng);
    EXPECT_EQ(g->exp(h, s2).residue(), BigInt::pow_mod_reference(h.residue(), s2, g->p()));
  }
  // Scalars at and beyond the group order reduce mod q on every path.
  EXPECT_EQ(g->exp_g(g->q()), g->identity());
  EXPECT_EQ(g->exp_g(g->q() + BigInt(5)), g->exp_g(BigInt(5)));
  EXPECT_EQ(g->exp_g(BigInt(0)), g->identity());
}

TEST_P(GroupFastPathTest, RegisteredBaseMatchesGenericPath) {
  auto g = group();
  Rng rng(107);
  const Element h = g->exp_g(g->random_scalar(rng));
  g->precompute_base(h);
  for (int i = 0; i < 8; ++i) {
    const BigInt s = g->random_scalar(rng);
    EXPECT_EQ(g->exp(h, s).residue(), BigInt::pow_mod_reference(h.residue(), s, g->p()));
  }
}

TEST_P(GroupFastPathTest, Exp2AndMultiExpMatchReference) {
  auto g = group();
  Rng rng(108);
  for (int i = 0; i < 6; ++i) {
    const Element b1 = g->exp_g(g->random_scalar(rng));
    const Element b2 = g->exp_g(g->random_scalar(rng));
    const BigInt e1 = g->random_scalar(rng);
    const BigInt e2 = g->random_scalar(rng);
    const Element want = g->mul(
        Element::from_residue(BigInt::pow_mod_reference(b1.residue(), e1, g->p())),
        Element::from_residue(BigInt::pow_mod_reference(b2.residue(), e2, g->p())));
    EXPECT_EQ(g->exp2(b1, e1, b2, e2), want);
    EXPECT_EQ(g->multi_exp({{b1, e1}, {b2, e2}}), want);
  }
  EXPECT_EQ(g->multi_exp({}), g->identity());
}

TEST_P(GroupFastPathTest, MembershipMemoPreservesStrictness) {
  auto g = group();
  Rng rng(109);
  const Element h = g->exp_g(g->random_scalar(rng));
  // Repeated checks (memoized after the first) stay positive...
  EXPECT_TRUE(g->is_element(h));
  EXPECT_TRUE(g->is_element(h));
  // ...and non-members stay negative on every retry.
  // p-1 has order 2, never in the q-subgroup.
  const Element outside = Element::from_residue(g->p() - BigInt(1));
  EXPECT_FALSE(g->is_element(outside));
  EXPECT_FALSE(g->is_element(outside));
  EXPECT_FALSE(g->is_element(Element::from_residue(BigInt(0))));
  EXPECT_FALSE(g->is_element(Element::from_residue(g->p())));
  // Round-trip decode twice: the second decode hits the memo and must
  // return the identical element.
  Writer w;
  g->encode_element(w, h);
  g->encode_element(w, h);
  Reader r(w.data());
  EXPECT_EQ(g->decode_element(r), h);
  EXPECT_EQ(g->decode_element(r), h);
}

INSTANTIATE_TEST_SUITE_P(AllParameterSets, GroupFastPathTest,
                         ::testing::Values("test", "default", "big"));

}  // namespace
}  // namespace sintra::crypto
