// ReliableLink unit tests: the seq/ack/retransmit state machine that both
// the TCP and loopback transports run — exactly-once in-order delivery,
// reconnect-driven retransmission, duplicate and reorder handling, and
// bounded-queue degradation (drop-oldest with an explicit gap floor).
#include <gtest/gtest.h>

#include "net/transport/link.hpp"

namespace sintra::net::transport {
namespace {

// Shuttle every sendable frame from `a` into `b`, returning delivered
// payloads; acks flow back immediately (a perfect wire).
std::vector<Bytes> shuttle(ReliableLink& a, ReliableLink& b) {
  std::vector<Bytes> delivered;
  for (auto& frame : a.take_sendable()) {
    auto incoming = b.on_data(frame.seq, frame.base, std::move(frame.payload));
    for (auto& delivery : incoming.deliver) delivered.push_back(std::move(delivery.payload));
    a.on_ack(b.recv_cursor());
    b.mark_ack_sent();
  }
  return delivered;
}

TEST(LinkTest, InOrderExactlyOnce) {
  ReliableLink a, b;
  a.on_connected(0);
  b.on_connected(0);
  for (int i = 0; i < 10; ++i) a.enqueue(bytes_of("m" + std::to_string(i)));
  const auto delivered = shuttle(a, b);
  ASSERT_EQ(delivered.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(delivered[static_cast<std::size_t>(i)],
                                         bytes_of("m" + std::to_string(i)));
  EXPECT_EQ(a.retained(), 0u);  // cumulative acks released everything
  EXPECT_EQ(b.stats().duplicates, 0u);
}

TEST(LinkTest, NothingSendableWhileDisconnected) {
  ReliableLink a;
  a.enqueue(bytes_of("queued"));
  EXPECT_TRUE(a.take_sendable().empty());
  a.on_connected(0);
  EXPECT_EQ(a.take_sendable().size(), 1u);
}

TEST(LinkTest, ReconnectRetransmitsUnacked) {
  ReliableLink a, b;
  a.on_connected(0);
  b.on_connected(0);
  a.enqueue(bytes_of("one"));
  a.enqueue(bytes_of("two"));
  auto frames = a.take_sendable();  // put on the wire...
  ASSERT_EQ(frames.size(), 2u);
  // ...but the connection dies before anything arrives.
  a.on_disconnected();
  b.on_disconnected();
  a.on_connected(b.recv_cursor());  // HELLO exchange: b saw nothing
  b.on_connected(a.recv_cursor());
  const auto delivered = shuttle(a, b);
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], bytes_of("one"));
  EXPECT_EQ(delivered[1], bytes_of("two"));
  EXPECT_EQ(a.stats().retransmitted, 2u);
}

TEST(LinkTest, ReconnectSkipsAlreadyDelivered) {
  ReliableLink a, b;
  a.on_connected(0);
  b.on_connected(0);
  a.enqueue(bytes_of("one"));
  shuttle(a, b);  // delivered and acked
  a.enqueue(bytes_of("two"));
  a.take_sendable();  // lost on the wire
  a.on_disconnected();
  b.on_disconnected();
  a.on_connected(b.recv_cursor());  // b's cursor says "one" arrived
  b.on_connected(a.recv_cursor());
  const auto delivered = shuttle(a, b);
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], bytes_of("two"));
  EXPECT_EQ(b.stats().duplicates, 0u);  // "one" was not resent
}

TEST(LinkTest, DuplicateFramesSuppressed) {
  ReliableLink a, b;
  a.on_connected(0);
  b.on_connected(0);
  a.enqueue(bytes_of("m"));
  auto frames = a.take_sendable();
  ASSERT_EQ(frames.size(), 1u);
  auto first = b.on_data(frames[0].seq, frames[0].base, frames[0].payload);
  EXPECT_EQ(first.deliver.size(), 1u);
  auto second = b.on_data(frames[0].seq, frames[0].base, frames[0].payload);
  EXPECT_TRUE(second.deliver.empty());
  EXPECT_TRUE(second.ack_now);  // duplicate triggers a prompt re-ack
  EXPECT_EQ(b.stats().duplicates, 1u);
}

TEST(LinkTest, ReorderWindowRestoresOrder) {
  ReliableLink a, b;
  a.on_connected(0);
  b.on_connected(0);
  for (int i = 0; i < 4; ++i) a.enqueue(bytes_of("m" + std::to_string(i)));
  auto frames = a.take_sendable();
  ASSERT_EQ(frames.size(), 4u);
  // Deliver in reversed order.
  std::vector<Bytes> delivered;
  for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
    auto incoming = b.on_data(it->seq, it->base, std::move(it->payload));
    for (auto& delivery : incoming.deliver) delivered.push_back(std::move(delivery.payload));
  }
  ASSERT_EQ(delivered.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(delivered[static_cast<std::size_t>(i)],
                                        bytes_of("m" + std::to_string(i)));
  EXPECT_EQ(b.stats().reordered, 3u);
}

TEST(LinkTest, FarFutureSeqDiscarded) {
  ReliableLink b(LinkConfig{.max_outbound = 16, .reorder_window = 8, .ack_every = 4});
  b.on_connected(0);
  auto incoming = b.on_data(1000, 0, bytes_of("early"));
  EXPECT_TRUE(incoming.deliver.empty());
  EXPECT_EQ(b.stats().out_of_window, 1u);
}

TEST(LinkTest, QuotaDropsOldestAndReceiverSkipsGap) {
  ReliableLink a(LinkConfig{.max_outbound = 4, .reorder_window = 8, .ack_every = 64});
  ReliableLink b;
  a.on_connected(0);
  b.on_connected(0);
  // Fill past the quota while the peer never acks.
  for (int i = 0; i < 10; ++i) a.enqueue(bytes_of("m" + std::to_string(i)));
  EXPECT_EQ(a.retained(), 4u);
  EXPECT_EQ(a.stats().dropped_outbound, 6u);
  const auto delivered = shuttle(a, b);
  // Only the last 4 survive; the receiver advances past the gap
  // explicitly instead of waiting forever for seqs 0..5.
  ASSERT_EQ(delivered.size(), 4u);
  EXPECT_EQ(delivered[0], bytes_of("m6"));
  EXPECT_EQ(b.stats().skipped_inbound, 6u);
  EXPECT_EQ(b.recv_cursor(), 10u);
}

TEST(LinkTest, ByzantineFutureAckClamped) {
  // An ack beyond anything ever enqueued is clamped to next_seq_: a lying
  // peer can release only frames destined for itself, and must not corrupt
  // the sequence accounting of later traffic.
  ReliableLink a;
  a.on_connected(0);
  a.enqueue(bytes_of("pending"));  // seq 0
  a.on_ack(1'000'000);             // peer lies about the future
  EXPECT_TRUE(a.take_sendable().empty());
  a.enqueue(bytes_of("next"));
  auto frames = a.take_sendable();
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].seq, 1u);  // numbering unaffected by the lie
}

TEST(LinkTest, AckEveryThresholdRequestsAck) {
  ReliableLink a, b(LinkConfig{.max_outbound = 64, .reorder_window = 8, .ack_every = 3});
  a.on_connected(0);
  b.on_connected(0);
  for (int i = 0; i < 3; ++i) a.enqueue(bytes_of("m"));
  auto frames = a.take_sendable();
  bool ack_now = false;
  for (auto& f : frames) ack_now = b.on_data(f.seq, f.base, std::move(f.payload)).ack_now;
  EXPECT_TRUE(ack_now);
  b.mark_ack_sent();
  EXPECT_FALSE(b.ack_pending());
}

}  // namespace
}  // namespace sintra::net::transport
