// Secure causal atomic broadcast tests: identical sequencing, duplicate
// ciphertext suppression, rejection of invalid ciphertexts, and the
// confidentiality-until-ordering property (front-running resistance).
#include <gtest/gtest.h>

#include "protocols/causal.hpp"
#include "protocols/harness.hpp"

namespace sintra::protocols {
namespace {

using crypto::party_bit;

struct ScState {
  std::unique_ptr<SecureCausalBroadcast> sc;
  std::vector<std::pair<std::uint64_t, Bytes>> delivered;
};

Cluster<ScState> make_cluster(adversary::Deployment deployment, net::Scheduler& sched,
                              crypto::PartySet corrupted = 0, std::uint64_t seed = 1) {
  return Cluster<ScState>(
      std::move(deployment), sched,
      [](net::Party& party, int) {
        auto state = std::make_unique<ScState>();
        state->sc = std::make_unique<SecureCausalBroadcast>(
            party, "sc", [s = state.get()](std::uint64_t seq, Bytes plaintext, Bytes) {
              s->delivered.emplace_back(seq, std::move(plaintext));
            });
        return state;
      },
      corrupted, 0, seed);
}

TEST(CausalTest, RoundTripWithIdenticalSequencing) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 3);
    auto cluster = make_cluster(deployment, sched, 0, seed);
    cluster.start();
    Rng crng(seed + 100);
    const auto& pk = deployment.keys->public_keys().encryption;
    auto ct1 = pk.encrypt(bytes_of("first"), bytes_of("svc"), crng);
    auto ct2 = pk.encrypt(bytes_of("second"), bytes_of("svc"), crng);
    cluster.protocol(0)->sc->submit(ct1);
    cluster.protocol(1)->sc->submit(ct2);
    ASSERT_TRUE(cluster.run_until_all([](ScState& s) { return s.delivered.size() >= 2; },
                                      5000000))
        << "seed " << seed;
    // Identical (sequence, plaintext) at every party.
    auto& reference = cluster.protocol(0)->delivered;
    cluster.for_each([&](int, ScState& s) { EXPECT_EQ(s.delivered, reference); });
    EXPECT_EQ(reference[0].first, 0u);
    EXPECT_EQ(reference[1].first, 1u);
  }
}

TEST(CausalTest, DuplicateCiphertextDeliveredOnce) {
  // A client sends the same ciphertext to several servers: one delivery.
  Rng rng(7);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(7);
  auto cluster = make_cluster(deployment, sched);
  cluster.start();
  Rng crng(9);
  const auto& pk = deployment.keys->public_keys().encryption;
  auto ct = pk.encrypt(bytes_of("once"), bytes_of("svc"), crng);
  cluster.for_each([&](int, ScState& s) { s.sc->submit(ct); });
  ASSERT_TRUE(cluster.run_until_all([](ScState& s) { return s.delivered.size() >= 1; },
                                    3000000));
  cluster.simulator().run(300000);
  cluster.for_each([](int, ScState& s) { EXPECT_EQ(s.delivered.size(), 1u); });
}

TEST(CausalTest, InvalidCiphertextRefusedAtSubmission) {
  Rng rng(8);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(8);
  auto cluster = make_cluster(deployment, sched);
  cluster.start();
  Rng crng(10);
  const auto& pk = deployment.keys->public_keys().encryption;
  auto ct = pk.encrypt(bytes_of("x"), bytes_of("svc"), crng);
  ct.data.push_back(0x00);  // breaks the proof
  EXPECT_THROW(cluster.protocol(0)->sc->submit(ct), ProtocolError);
}

TEST(CausalTest, ToleratesCrashedParties) {
  Rng rng(9);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(9);
  auto cluster = make_cluster(deployment, sched, party_bit(3), 9);
  cluster.start();
  Rng crng(11);
  const auto& pk = deployment.keys->public_keys().encryption;
  cluster.protocol(0)->sc->submit(pk.encrypt(bytes_of("resilient"), bytes_of("svc"), crng));
  EXPECT_TRUE(cluster.run_until_all([](ScState& s) { return s.delivered.size() >= 1; },
                                    3000000));
}

TEST(CausalTest, CiphertextRevealsNothingBeforeOrdering) {
  // Structural confidentiality check: the ciphertext bytes that cross the
  // network before ordering contain no plaintext substring, and with fewer
  // than t+1 decryption shares the adversary's combine fails.
  Rng rng(12);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  const auto& pk = deployment.keys->public_keys().encryption;
  Rng crng(13);
  Bytes secret = bytes_of("SECRET-PATENT-CLAIMS");
  auto ct = pk.encrypt(secret, bytes_of("notary"), crng);
  Writer w;
  ct.encode(w, pk.group());
  const Bytes& wire = w.data();
  // No contiguous 4-byte window of the plaintext appears on the wire.
  for (std::size_t i = 0; i + 4 <= secret.size(); ++i) {
    auto it = std::search(wire.begin(), wire.end(), secret.begin() + static_cast<long>(i),
                          secret.begin() + static_cast<long>(i + 4));
    EXPECT_EQ(it, wire.end());
  }
  // Adversary holds t = 1 party's key: cannot decrypt alone.
  Rng arng(14);
  auto shares = deployment.keys->share(2).decryption.decrypt_shares(pk, ct, arng);
  EXPECT_FALSE(pk.combine(ct, shares).has_value());
}

TEST(CausalTest, SequencesContiguousAcrossManySubmissions) {
  Rng rng(15);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(15);
  auto cluster = make_cluster(deployment, sched);
  cluster.start();
  Rng crng(16);
  const auto& pk = deployment.keys->public_keys().encryption;
  const int total = 8;
  for (int k = 0; k < total; ++k) {
    auto ct = pk.encrypt(bytes_of("doc" + std::to_string(k)), bytes_of("svc"), crng);
    cluster.protocol(k % 4)->sc->submit(ct);
  }
  ASSERT_TRUE(cluster.run_until_all(
      [&](ScState& s) { return s.delivered.size() >= static_cast<std::size_t>(total); },
      20000000));
  cluster.for_each([&](int, ScState& s) {
    for (int k = 0; k < total; ++k) {
      EXPECT_EQ(s.delivered[static_cast<std::size_t>(k)].first, static_cast<std::uint64_t>(k));
    }
  });
}

}  // namespace
}  // namespace sintra::protocols
