// SHA-256 / HMAC known-answer tests (FIPS 180-4, RFC 4231) and properties
// of the domain-separated oracle helpers.
#include <gtest/gtest.h>

#include "crypto/sha256.hpp"

namespace sintra::crypto {
namespace {

std::string hex_of(const Digest& d) {
  return to_hex(BytesView(d.data(), d.size()));
}

TEST(Sha256Test, EmptyString) {
  EXPECT_EQ(hex_of(sha256(Bytes{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256Test, Abc) {
  EXPECT_EQ(hex_of(sha256(bytes_of("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256Test, TwoBlockMessage) {
  EXPECT_EQ(hex_of(sha256(bytes_of("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256Test, MillionA) {
  Bytes data(1000000, 'a');
  EXPECT_EQ(hex_of(sha256(data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256Test, IncrementalMatchesOneShot) {
  Bytes data = bytes_of("the quick brown fox jumps over the lazy dog, repeatedly");
  for (std::size_t split = 0; split <= data.size(); split += 7) {
    Sha256 h;
    h.update(BytesView(data.data(), split));
    h.update(BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finish(), sha256(data));
  }
}

TEST(Sha256Test, ExactBlockBoundaries) {
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    Bytes data(len, 0x5a);
    // Incremental byte-by-byte must equal one-shot.
    Sha256 h;
    for (std::uint8_t b : data) h.update(BytesView(&b, 1));
    EXPECT_EQ(h.finish(), sha256(data)) << "len=" << len;
  }
}

TEST(HmacTest, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(hex_of(hmac_sha256(key, bytes_of("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacTest, Rfc4231Case2) {
  EXPECT_EQ(hex_of(hmac_sha256(bytes_of("Jefe"), bytes_of("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacTest, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes data(50, 0xdd);
  EXPECT_EQ(hex_of(hmac_sha256(key, data)),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacTest, LongKeyIsHashed) {
  Bytes key(131, 0xaa);  // longer than a block
  EXPECT_EQ(hex_of(hmac_sha256(key, bytes_of("Test Using Larger Than Block-Size Key - Hash "
                                             "Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(DomainHashTest, DomainsSeparate) {
  Bytes data = bytes_of("x");
  EXPECT_NE(hash_domain("a", data), hash_domain("b", data));
}

TEST(DomainHashTest, NotPrefixConfusable) {
  // ("ab", "c") and ("a", "bc") must differ thanks to the separator byte.
  EXPECT_NE(hash_domain("ab", bytes_of("c")), hash_domain("a", bytes_of("bc")));
}

TEST(HashExpandTest, LengthExact) {
  for (std::size_t len : {0u, 1u, 31u, 32u, 33u, 64u, 100u, 257u}) {
    EXPECT_EQ(hash_expand("d", bytes_of("seed"), len).size(), len);
  }
}

TEST(HashExpandTest, PrefixConsistent) {
  Bytes longer = hash_expand("d", bytes_of("seed"), 96);
  Bytes shorter = hash_expand("d", bytes_of("seed"), 40);
  EXPECT_TRUE(std::equal(shorter.begin(), shorter.end(), longer.begin()));
}

TEST(HashExpandTest, SeedSensitive) {
  EXPECT_NE(hash_expand("d", bytes_of("s1"), 64), hash_expand("d", bytes_of("s2"), 64));
  EXPECT_NE(hash_expand("d1", bytes_of("s"), 64), hash_expand("d2", bytes_of("s"), 64));
}

}  // namespace
}  // namespace sintra::crypto
