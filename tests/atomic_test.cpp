// Atomic broadcast tests: total order, agreement, liveness (including a
// submission arriving mid-run and under hostile schedulers), duplicate
// suppression and crash tolerance.
#include <gtest/gtest.h>

#include "adversary/examples.hpp"
#include "protocols/atomic.hpp"
#include "protocols/harness.hpp"

namespace sintra::protocols {
namespace {

using crypto::party_bit;

struct AbcState {
  std::unique_ptr<AtomicBroadcast> abc;
  std::vector<std::pair<int, Bytes>> delivered;
};

Cluster<AbcState> make_cluster(adversary::Deployment deployment, net::Scheduler& sched,
                               crypto::PartySet corrupted = 0, std::uint64_t seed = 1) {
  return Cluster<AbcState>(
      std::move(deployment), sched,
      [](net::Party& party, int) {
        auto state = std::make_unique<AbcState>();
        state->abc = std::make_unique<AtomicBroadcast>(
            party, "abc", [s = state.get()](int origin, Bytes payload) {
              s->delivered.emplace_back(origin, std::move(payload));
            });
        return state;
      },
      corrupted, 0, seed);
}

void expect_identical_order(Cluster<AbcState>& cluster) {
  const std::vector<std::pair<int, Bytes>>* reference = nullptr;
  cluster.for_each([&](int, AbcState& s) {
    if (reference == nullptr) {
      reference = &s.delivered;
      return;
    }
    EXPECT_EQ(s.delivered, *reference) << "total order violated";
  });
}

TEST(AtomicTest, SingleSenderDelivers) {
  Rng rng(1);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(2);
  auto cluster = make_cluster(deployment, sched);
  cluster.start();
  cluster.protocol(0)->abc->submit(bytes_of("only"));
  ASSERT_TRUE(cluster.run_until_all([](AbcState& s) { return s.delivered.size() >= 1; },
                                    2000000));
  expect_identical_order(cluster);
  EXPECT_EQ(cluster.protocol(1)->delivered[0].second, bytes_of("only"));
}

TEST(AtomicTest, ConcurrentSendersSameTotalOrder) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 7);
    auto cluster = make_cluster(deployment, sched, 0, seed);
    cluster.start();
    cluster.for_each([](int id, AbcState& s) {
      s.abc->submit(bytes_of("m" + std::to_string(id)));
    });
    ASSERT_TRUE(cluster.run_until_all([](AbcState& s) { return s.delivered.size() >= 4; },
                                      5000000))
        << "seed " << seed;
    expect_identical_order(cluster);
  }
}

TEST(AtomicTest, SubmissionsAcrossRounds) {
  Rng rng(3);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(3);
  auto cluster = make_cluster(deployment, sched);
  cluster.start();
  cluster.protocol(0)->abc->submit(bytes_of("first"));
  ASSERT_TRUE(cluster.run_until_all([](AbcState& s) { return s.delivered.size() >= 1; },
                                    2000000));
  // Second wave after the first round completed.
  cluster.protocol(1)->abc->submit(bytes_of("second"));
  cluster.protocol(2)->abc->submit(bytes_of("third"));
  ASSERT_TRUE(cluster.run_until_all([](AbcState& s) { return s.delivered.size() >= 3; },
                                    2000000));
  expect_identical_order(cluster);
  EXPECT_GE(cluster.protocol(0)->abc->rounds_completed(), 2);
}

TEST(AtomicTest, DuplicateContentDeliveredOnce) {
  // The same payload submitted at several parties (a client broadcasting
  // its request) must be delivered exactly once.
  Rng rng(4);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(4);
  auto cluster = make_cluster(deployment, sched);
  cluster.start();
  cluster.for_each([](int, AbcState& s) { s.abc->submit(bytes_of("dup")); });
  cluster.protocol(0)->abc->submit(bytes_of("unique"));
  ASSERT_TRUE(cluster.run_until_all([](AbcState& s) { return s.delivered.size() >= 2; },
                                    3000000));
  cluster.simulator().run(200000);  // drain any extra rounds
  cluster.for_each([](int, AbcState& s) {
    int dups = 0;
    for (const auto& [origin, payload] : s.delivered) {
      if (payload == bytes_of("dup")) ++dups;
    }
    EXPECT_EQ(dups, 1);
  });
  expect_identical_order(cluster);
}

TEST(AtomicTest, ToleratesCrashedParties) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(7, 2, rng);
    net::RandomScheduler sched(seed * 19);
    auto cluster = make_cluster(deployment, sched, party_bit(2) | party_bit(5), seed);
    cluster.start();
    cluster.protocol(0)->abc->submit(bytes_of("a"));
    cluster.protocol(1)->abc->submit(bytes_of("b"));
    ASSERT_TRUE(cluster.run_until_all([](AbcState& s) { return s.delivered.size() >= 2; },
                                      8000000))
        << "seed " << seed;
    expect_identical_order(cluster);
  }
}

TEST(AtomicTest, LivenessUnderStarvationScheduler) {
  // The paper's headline property: progress under *any* fair-in-the-limit
  // schedule, including one starving a chosen party.
  Rng rng(5);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::StarvePartyScheduler sched(5, /*victim=*/0);
  auto cluster = make_cluster(deployment, sched, 0, 5);
  cluster.start();
  cluster.protocol(0)->abc->submit(bytes_of("starved sender"));
  cluster.protocol(1)->abc->submit(bytes_of("other"));
  EXPECT_TRUE(cluster.run_until_all([](AbcState& s) { return s.delivered.size() >= 2; },
                                    8000000));
  expect_identical_order(cluster);
}

TEST(AtomicTest, ManyMessagesBatchAndDeliver) {
  Rng rng(6);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(6);
  auto cluster = make_cluster(deployment, sched);
  cluster.start();
  const int per_party = 10;
  cluster.for_each([&](int id, AbcState& s) {
    for (int k = 0; k < per_party; ++k) {
      s.abc->submit(bytes_of("p" + std::to_string(id) + "-" + std::to_string(k)));
    }
  });
  ASSERT_TRUE(cluster.run_until_all(
      [&](AbcState& s) { return s.delivered.size() >= 4 * per_party; }, 20000000));
  expect_identical_order(cluster);
  // Every submitted payload present exactly once.
  std::set<Bytes> seen;
  for (const auto& [origin, payload] : cluster.protocol(0)->delivered) {
    EXPECT_TRUE(seen.insert(payload).second) << "duplicate delivery";
  }
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(4 * per_party));
}

TEST(AtomicTest, GeneralAdversaryExample1ClassCrash) {
  // Atomic broadcast over Example 1 with all of class a crashed.
  Rng rng(7);
  auto deployment = adversary::example1_deployment(rng);
  net::RandomScheduler sched(7);
  crypto::PartySet class_a = party_bit(0) | party_bit(1) | party_bit(2) | party_bit(3);
  auto cluster = make_cluster(deployment, sched, class_a, 7);
  cluster.start();
  cluster.protocol(4)->abc->submit(bytes_of("from b"));
  cluster.protocol(8)->abc->submit(bytes_of("from d"));
  ASSERT_TRUE(cluster.run_until_all([](AbcState& s) { return s.delivered.size() >= 2; },
                                    20000000));
  expect_identical_order(cluster);
}

}  // namespace
}  // namespace sintra::protocols
