// Reliable broadcast (Bracha) tests: validity, agreement, integrity —
// including a Byzantine equivocating sender and hostile schedulers.
#include <gtest/gtest.h>

#include "protocols/broadcast.hpp"
#include "protocols/harness.hpp"

namespace sintra::protocols {
namespace {

using crypto::party_bit;

struct RbcState {
  std::unique_ptr<ReliableBroadcast> rbc;
  std::optional<Bytes> delivered;
};

class RbcHarness {
 public:
  RbcHarness(int n, int t, int sender, net::Scheduler& sched, crypto::PartySet corrupted = 0,
             std::uint64_t seed = 1)
      : rng_(seed),
        cluster_(adversary::Deployment::threshold(n, t, rng_), sched,
                 [sender](net::Party& party, int) {
                   auto state = std::make_unique<RbcState>();
                   state->rbc = std::make_unique<ReliableBroadcast>(
                       party, "rbc/0", sender,
                       [s = state.get()](Bytes m) { s->delivered = std::move(m); });
                   return state;
                 },
                 corrupted) {}

  Cluster<RbcState>& cluster() { return cluster_; }

 private:
  Rng rng_;
  Cluster<RbcState> cluster_;
};

TEST(RbcTest, HonestSenderAllDeliver) {
  net::RandomScheduler sched(10);
  RbcHarness h(4, 1, /*sender=*/0, sched);
  h.cluster().start();
  h.cluster().protocol(0)->rbc->start(bytes_of("payload"));
  ASSERT_TRUE(h.cluster().run_until_all(
      [](RbcState& s) { return s.delivered.has_value(); }, 100000));
  h.cluster().for_each([](int, RbcState& s) { EXPECT_EQ(*s.delivered, bytes_of("payload")); });
}

TEST(RbcTest, WorksWithCrashedParties) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    net::RandomScheduler sched(seed);
    RbcHarness h(4, 1, 0, sched, /*corrupted=*/party_bit(3), seed);
    h.cluster().start();
    h.cluster().protocol(0)->rbc->start(bytes_of("m"));
    EXPECT_TRUE(h.cluster().run_until_all(
        [](RbcState& s) { return s.delivered.has_value(); }, 100000))
        << "seed " << seed;
  }
}

TEST(RbcTest, LargerSystems) {
  for (auto [n, t] : {std::pair{7, 2}, std::pair{10, 3}, std::pair{13, 4}}) {
    net::RandomScheduler sched(static_cast<std::uint64_t>(n));
    RbcHarness h(n, t, 1, sched, /*corrupted=*/party_bit(0) | party_bit(n - 1));
    h.cluster().start();
    h.cluster().protocol(1)->rbc->start(bytes_of("big"));
    EXPECT_TRUE(h.cluster().run_until_all(
        [](RbcState& s) { return s.delivered.has_value(); }, 400000))
        << n;
  }
}

TEST(RbcTest, AdversarialSchedulersStillDeliver) {
  // LIFO and starvation schedulers are fair-in-the-limit; the protocol
  // must terminate under them — the asynchronous-model guarantee.
  {
    net::LifoScheduler sched(3);
    RbcHarness h(4, 1, 0, sched);
    h.cluster().start();
    h.cluster().protocol(0)->rbc->start(bytes_of("lifo"));
    EXPECT_TRUE(h.cluster().run_until_all(
        [](RbcState& s) { return s.delivered.has_value(); }, 200000));
  }
  {
    net::StarvePartyScheduler sched(4, /*victim=*/2);
    RbcHarness h(4, 1, 0, sched);
    h.cluster().start();
    h.cluster().protocol(0)->rbc->start(bytes_of("starve"));
    EXPECT_TRUE(h.cluster().run_until_all(
        [](RbcState& s) { return s.delivered.has_value(); }, 200000));
  }
}

TEST(RbcTest, EmptyAndLargeMessages) {
  for (std::size_t len : {0u, 1u, 10000u}) {
    net::RandomScheduler sched(len + 1);
    RbcHarness h(4, 1, 0, sched);
    h.cluster().start();
    h.cluster().protocol(0)->rbc->start(Bytes(len, 0x7e));
    ASSERT_TRUE(h.cluster().run_until_all(
        [](RbcState& s) { return s.delivered.has_value(); }, 100000));
    h.cluster().for_each([&](int, RbcState& s) { EXPECT_EQ(s.delivered->size(), len); });
  }
}

TEST(RbcTest, NonSenderCannotStart) {
  net::RandomScheduler sched(5);
  RbcHarness h(4, 1, 0, sched);
  h.cluster().start();
  EXPECT_THROW(h.cluster().protocol(1)->rbc->start(bytes_of("x")), ProtocolError);
}

TEST(RbcTest, SendFromNonSenderIgnored) {
  // A corrupted party impersonating the sender role: its SEND is rejected
  // (authenticated channels), so nothing is delivered.
  net::RandomScheduler sched(6);
  RbcHarness h(4, 1, /*sender=*/0, sched);
  // Party 3 replaced by an attacker that sends SEND messages for "rbc/0".
  auto& sim = h.cluster().simulator();
  h.cluster().attach_custom(
      3, std::make_unique<net::HookProcess>(
             [&sim](const net::Message&) {
               Writer w;
               w.u8(0);  // kSend
               w.bytes(bytes_of("forged"));
               for (int to = 0; to < 4; ++to) {
                 if (to == 3) continue;
                 net::Message m;
                 m.from = 3;
                 m.to = to;
                 m.tag = "rbc/0";
                 m.payload = w.data();
                 sim.submit(std::move(m));
               }
             },
             nullptr));
  h.cluster().start();
  sim.run(10000);
  h.cluster().for_each([](int, RbcState& s) { EXPECT_FALSE(s.delivered.has_value()); });
}

/// Byzantine sender that equivocates: SEND "A" to half, "B" to the rest.
class EquivocatingSender final : public net::Process {
 public:
  EquivocatingSender(net::Simulator& sim, int id) : sim_(sim), id_(id) {}
  void on_start() override {
    for (int to = 0; to < sim_.n(); ++to) {
      if (to == id_) continue;
      Writer w;
      w.u8(0);  // kSend
      w.bytes(bytes_of(to % 2 == 0 ? "AAAA" : "BBBB"));
      net::Message m;
      m.from = id_;
      m.to = to;
      m.tag = "rbc/0";
      m.payload = w.take();
      sim_.submit(std::move(m));
    }
  }
  void on_message(const net::Message&) override {}

 private:
  net::Simulator& sim_;
  int id_;
};

/// Floods a victim with well-formed ECHO/READY messages that each carry a
/// unique large body — the unbounded-memory DoS of issue 2: before the
/// fix, every distinct body grew a full tally entry (content included) at
/// the victim.
class TallySpamProcess final : public net::Process {
 public:
  TallySpamProcess(net::Simulator& sim, int id, int victim, int floods)
      : sim_(sim), id_(id), victim_(victim), floods_(floods) {}

  void on_start() override {
    for (int i = 0; i < floods_; ++i) {
      for (std::uint8_t type : {std::uint8_t{1}, std::uint8_t{2}}) {  // kEcho, kReady
        Bytes body(1024, 0x5a);
        body[0] = static_cast<std::uint8_t>(i & 0xff);
        body[1] = static_cast<std::uint8_t>((i >> 8) & 0xff);
        body[2] = type;
        Writer w;
        w.u8(type);
        w.bytes(body);
        net::Message m;
        m.from = id_;
        m.to = victim_;
        m.tag = "rbc/0";
        m.payload = w.take();
        sim_.submit(std::move(m));
      }
    }
  }
  void on_message(const net::Message&) override {}

 private:
  net::Simulator& sim_;
  int id_;
  int victim_;
  int floods_;
};

TEST(RbcTest, SpamFloodCannotGrowMemory) {
  // 500 x 2 well-formed messages x 1 KiB of unique garbage (~1 MiB of
  // spam) against party 1, while an honest broadcast runs.  The victim
  // must keep a constant number of tallies, retain (almost) no spam
  // bytes, and still deliver the honest sender's message exactly once.
  net::RandomScheduler sched(21);
  RbcHarness h(4, 1, /*sender=*/0, sched);
  auto& sim = h.cluster().simulator();
  h.cluster().attach_custom(3, std::make_unique<TallySpamProcess>(sim, 3, /*victim=*/1, 500));
  h.cluster().start();
  h.cluster().protocol(0)->rbc->start(bytes_of("legit"));
  ASSERT_TRUE(sim.run_until(
      [&] {
        bool all = true;
        h.cluster().for_each([&](int, RbcState& s) { all = all && s.delivered.has_value(); });
        return all;
      },
      1000000));
  sim.run(1000000);  // let the rest of the flood land
  h.cluster().for_each([](int, RbcState& s) { EXPECT_EQ(*s.delivered, bytes_of("legit")); });
  // Bounded memory: after delivery the tallies are freed entirely; at no
  // point can they exceed one entry per (party, message type) pair.
  ReliableBroadcast& victim = *h.cluster().protocol(1)->rbc;
  EXPECT_EQ(victim.tally_count(), 0u);
  EXPECT_LT(victim.retained_bytes(), 1024u) << "spam bodies were retained";
}

TEST(RbcTest, DuplicatedTrafficDeliversOnce) {
  // At-least-once network: every message duplicated with high probability
  // must not break agreement or cause double delivery.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    net::RandomScheduler sched(seed);
    net::FaultInjector injector(seed, net::FaultPolicy::duplicates());
    RbcHarness h(4, 1, /*sender=*/0, sched, 0, seed);
    h.cluster().simulator().set_fault_injector(&injector);
    h.cluster().start();
    h.cluster().protocol(0)->rbc->start(bytes_of("dup"));
    ASSERT_TRUE(h.cluster().run_until_all(
        [](RbcState& s) { return s.delivered.has_value(); }, 200000))
        << "seed " << seed;
    h.cluster().for_each([](int, RbcState& s) { EXPECT_EQ(*s.delivered, bytes_of("dup")); });
  }
}

TEST(RbcTest, EquivocatingSenderCannotSplitDelivery) {
  // Core agreement property: whatever the corrupted sender does, honest
  // parties never deliver different messages.  (They may deliver nothing.)
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    net::RandomScheduler sched(seed);
    RbcHarness h(4, 1, /*sender=*/0, sched, 0, seed);
    h.cluster().attach_custom(
        0, std::make_unique<EquivocatingSender>(h.cluster().simulator(), 0));
    h.cluster().start();
    h.cluster().simulator().run(1000000);
    std::optional<Bytes> first;
    h.cluster().for_each([&](int, RbcState& s) {
      if (!s.delivered.has_value()) return;
      if (!first.has_value()) first = s.delivered;
      EXPECT_EQ(*s.delivered, *first) << "agreement violated, seed " << seed;
    });
    // And if any honest party delivered, all must (totality of RBC):
    bool any = false;
    bool all = true;
    h.cluster().for_each([&](int, RbcState& s) {
      any = any || s.delivered.has_value();
      all = all && s.delivered.has_value();
    });
    if (any) {
      EXPECT_TRUE(all) << "totality violated, seed " << seed;
    }
  }
}

}  // namespace
}  // namespace sintra::protocols
