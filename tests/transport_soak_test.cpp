// Transport soak: a seeded randomized sweep hammering the loopback
// transport with the chaos fault profile (drops, duplicates, replays,
// disconnect/reconnect cycles) and asserting the one property the whole
// stack rests on — every payload stream reaches the protocol layer
// exactly once, in order, with no loss and no duplicates.  Seed count is
// SINTRA_SOAK_SEEDS (default 20; the chaos CI job raises it).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "net/transport/loopback.hpp"

namespace sintra::net::transport {
namespace {

int soak_seeds() {
  if (const char* env = std::getenv("SINTRA_SOAK_SEEDS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  return 20;
}

Bytes tagged(int from, int to, int i) {
  return bytes_of(std::to_string(from) + ">" + std::to_string(to) + "#" + std::to_string(i));
}

// One chaos round: every ordered pair sends `count` payloads, interleaved
// with hub steps so faults hit mid-stream, then the network is driven to
// quiescence (healing any pair whose disconnect budget ran out before its
// auto-reconnect fired).
void run_round(std::uint64_t seed, int n, int count) {
  // max_outbound stays far above the in-flight volume: the soak asserts
  // *no loss*, so the drop-oldest quota must never engage (bounded-queue
  // degradation has its own test in link_test.cpp).
  LoopbackHub hub(n, seed, LoopbackHub::FaultProfile::chaos(),
                  LinkConfig{.max_outbound = 4096, .reorder_window = 512, .ack_every = 16});

  std::map<std::pair<int, int>, std::vector<Bytes>> received;
  for (int node = 0; node < n; ++node) {
    hub.set_receiver(node, [&received, node](int from, BytesView payload) {
      received[{from, node}].emplace_back(payload.begin(), payload.end());
    });
  }

  Rng traffic_rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  for (int i = 0; i < count; ++i) {
    for (int from = 0; from < n; ++from) {
      for (int to = 0; to < n; ++to) {
        if (from != to) hub.send(from, to, tagged(from, to, i));
      }
    }
    // Interleave delivery so faults land mid-stream, not only at the end.
    const std::uint64_t burst = traffic_rng.below(2 * static_cast<std::uint64_t>(n * n));
    for (std::uint64_t s = 0; s < burst; ++s) hub.step();
  }

  constexpr std::size_t kStepCap = 2'000'000;
  std::size_t steps = hub.run_until_quiescent(kStepCap);
  // The chaos profile's disconnect budget can exhaust with a pair still
  // down and no auto-reconnect pending; heal explicitly and drain again —
  // that is the operator-restores-the-cable case, not a transport bug.
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      if (!hub.pair_connected(a, b)) hub.connect(a, b);
    }
  }
  steps += hub.run_until_quiescent(kStepCap);
  ASSERT_LT(steps, kStepCap) << "seed " << seed << ": transport failed to quiesce";

  for (int from = 0; from < n; ++from) {
    for (int to = 0; to < n; ++to) {
      if (from == to) continue;
      const auto& got = received[{from, to}];
      ASSERT_EQ(got.size(), static_cast<std::size_t>(count))
          << "seed " << seed << " pair " << from << "->" << to
          << ": lost or duplicated payloads";
      for (int i = 0; i < count; ++i) {
        ASSERT_EQ(got[static_cast<std::size_t>(i)], tagged(from, to, i))
            << "seed " << seed << " pair " << from << "->" << to << " index " << i
            << ": order violated";
      }
      EXPECT_EQ(hub.link(to, from).stats().skipped_inbound, 0u)
          << "quota engaged; the soak volume must stay below max_outbound";

      // Exact retransmit accounting (issue 7 satellite): every frame put
      // on a wire is either a first transmission or a resend — the two
      // per-frame counters must partition `sent` exactly, and with the
      // quota never engaging, every enqueued payload got exactly one
      // first transmission.  These are equalities, not bounds: any
      // over- or under-count in take_sendable's bookkeeping fails here.
      const ReliableLink::Stats& out = hub.link(from, to).stats();
      ASSERT_EQ(out.dropped_outbound, 0u)
          << "seed " << seed << " pair " << from << "->" << to;
      ASSERT_EQ(out.sent, out.first_transmissions + out.retransmitted)
          << "seed " << seed << " pair " << from << "->" << to
          << ": sent must partition into first sends + resends";
      ASSERT_EQ(out.first_transmissions, out.enqueued)
          << "seed " << seed << " pair " << from << "->" << to
          << ": exactly one first transmission per enqueued payload";
      ASSERT_EQ(out.retransmitted, out.sent - out.enqueued)
          << "seed " << seed << " pair " << from << "->" << to;
    }
  }

  const LoopbackHub::Stats stats = hub.stats();
  // The profile is actually doing something: a run where no fault ever
  // fired would vacuously pass.
  EXPECT_GT(stats.dropped_frames + stats.duplicated_frames + stats.replayed_frames +
                stats.disconnects,
            0u)
      << "seed " << seed << ": no faults injected — profile misconfigured?";
}

TEST(TransportSoakTest, ChaosSweepExactlyOnceInOrder) {
  const int seeds = soak_seeds();
  for (int seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_round(static_cast<std::uint64_t>(seed), /*n=*/4, /*count=*/40);
  }
}

TEST(TransportSoakTest, HeavierStreamsSmallerNetwork) {
  const int seeds = std::max(1, soak_seeds() / 4);
  for (int seed = 1; seed <= seeds; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    run_round(static_cast<std::uint64_t>(seed) * 104729, /*n=*/2, /*count=*/400);
  }
}

}  // namespace
}  // namespace sintra::net::transport
