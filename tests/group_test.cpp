// Schnorr group tests: parameter validation (the hard-coded sets are
// re-verified here), element/scalar algebra, and the random oracles into
// the group.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/group.hpp"

namespace sintra::crypto {
namespace {

class GroupParamTest : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] GroupPtr group() const {
    const std::string which = GetParam();
    if (which == "test") return Group::test_group();
    if (which == "default") return Group::default_group();
    return Group::big_group();
  }
};

TEST_P(GroupParamTest, ParametersAreValid) {
  GroupPtr g = group();
  Rng rng(1);
  EXPECT_TRUE(g->p().is_probable_prime(rng));
  EXPECT_TRUE(g->q().is_probable_prime(rng));
  EXPECT_TRUE(((g->p() - BigInt(1)) % g->q()).is_zero());
  EXPECT_TRUE(g->is_element(g->g()));
  EXPECT_FALSE(g->g().is_one());
  // Generator has order exactly q (q prime, g != 1, g^q = 1).
  EXPECT_TRUE(BigInt::pow_mod(g->g(), g->q(), g->p()).is_one());
}

TEST_P(GroupParamTest, ExponentiationLaws) {
  GroupPtr g = group();
  Rng rng(2);
  BigInt a = g->random_scalar(rng);
  BigInt b = g->random_scalar(rng);
  // g^(a+b) = g^a * g^b
  EXPECT_EQ(g->exp_g(g->scalar_add(a, b)), g->mul(g->exp_g(a), g->exp_g(b)));
  // (g^a)^b = (g^b)^a
  EXPECT_EQ(g->exp(g->exp_g(a), b), g->exp(g->exp_g(b), a));
  // g^0 = 1
  EXPECT_TRUE(g->exp_g(BigInt(0)).is_one());
}

TEST_P(GroupParamTest, InverseAndIdentity) {
  GroupPtr g = group();
  Rng rng(3);
  BigInt a = g->exp_g(g->random_scalar(rng));
  EXPECT_TRUE(g->mul(a, g->inv(a)).is_one());
  EXPECT_EQ(g->mul(a, g->identity()), a);
}

TEST_P(GroupParamTest, MembershipRejectsOutsiders) {
  GroupPtr g = group();
  EXPECT_FALSE(g->is_element(BigInt(0)));
  EXPECT_FALSE(g->is_element(g->p()));
  EXPECT_FALSE(g->is_element(g->p() + BigInt(1)));
  EXPECT_FALSE(g->is_element(BigInt(-2)));
  // p-1 has order 2, not in the order-q subgroup (q odd).
  EXPECT_FALSE(g->is_element(g->p() - BigInt(1)));
}

TEST_P(GroupParamTest, HashToElementLandsInSubgroup) {
  GroupPtr g = group();
  for (int i = 0; i < 5; ++i) {
    Bytes seed = bytes_of("seed" + std::to_string(i));
    BigInt e = g->hash_to_element("t", seed);
    EXPECT_TRUE(g->is_element(e));
    // Deterministic.
    EXPECT_EQ(e, g->hash_to_element("t", seed));
  }
  EXPECT_NE(g->hash_to_element("t", bytes_of("a")), g->hash_to_element("t", bytes_of("b")));
  EXPECT_NE(g->hash_to_element("t1", bytes_of("a")), g->hash_to_element("t2", bytes_of("a")));
}

TEST_P(GroupParamTest, HashToScalarInRange) {
  GroupPtr g = group();
  for (int i = 0; i < 10; ++i) {
    BigInt s = g->hash_to_scalar("t", bytes_of("seed" + std::to_string(i)));
    EXPECT_TRUE(g->is_scalar(s));
  }
}

TEST_P(GroupParamTest, ElementSerializationRoundTrip) {
  GroupPtr g = group();
  Rng rng(4);
  BigInt e = g->exp_g(g->random_scalar(rng));
  Writer w;
  g->encode_element(w, e);
  EXPECT_EQ(w.data().size(), g->element_bytes());
  Reader r(w.data());
  EXPECT_EQ(g->decode_element(r), e);
}

TEST_P(GroupParamTest, DecodeRejectsNonElement) {
  GroupPtr g = group();
  // p - 1 is in range but not in the subgroup.
  Writer w;
  w.raw((g->p() - BigInt(1)).to_bytes_padded(g->element_bytes()));
  Reader r(w.data());
  EXPECT_THROW(g->decode_element(r), ProtocolError);
}

TEST_P(GroupParamTest, ScalarSerializationRejectsOverflow) {
  GroupPtr g = group();
  Writer w;
  g->encode_scalar(w, g->q() - BigInt(1));
  Reader r(w.data());
  EXPECT_EQ(g->decode_scalar(r), g->q() - BigInt(1));
  Writer w2;
  w2.raw(g->q().to_bytes_padded(g->scalar_bytes()));
  Reader r2(w2.data());
  EXPECT_THROW(g->decode_scalar(r2), ProtocolError);
}

INSTANTIATE_TEST_SUITE_P(AllParameterSets, GroupParamTest,
                         ::testing::Values("test", "default", "big"));

TEST(GroupTest, ScalarInverse) {
  GroupPtr g = Group::test_group();
  Rng rng(5);
  BigInt a = g->random_scalar(rng);
  while (a.is_zero()) a = g->random_scalar(rng);
  EXPECT_TRUE(g->scalar_mul(a, g->scalar_inv(a)).is_one());
}

TEST(GroupTest, BadConstructionRejected) {
  // q does not divide p-1.
  EXPECT_THROW(Group(BigInt(23), BigInt(7), BigInt(2), "bad"), LogicError);
}

}  // namespace
}  // namespace sintra::crypto
