// Group backend tests.  The backend-generic suite runs identically over all
// four singletons (three Schnorr parameter sets + secp256k1) through the
// abstract interface; the Schnorr-specific suite re-verifies the hard-coded
// parameter sets and the Z_p* representation details.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/group.hpp"
#include "crypto/group_schnorr.hpp"

namespace sintra::crypto {
namespace {

class GroupBackendTest : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] GroupPtr group() const { return Group::by_name(GetParam()); }
};

TEST_P(GroupBackendTest, GeneratorIsMember) {
  GroupPtr g = group();
  EXPECT_TRUE(g->is_element(g->g()));
  EXPECT_NE(g->g(), g->identity());
}

TEST_P(GroupBackendTest, ExponentiationLaws) {
  GroupPtr g = group();
  Rng rng(2);
  BigInt a = g->random_scalar(rng);
  BigInt b = g->random_scalar(rng);
  // g^(a+b) = g^a * g^b
  EXPECT_EQ(g->exp_g(g->scalar_add(a, b)), g->mul(g->exp_g(a), g->exp_g(b)));
  // (g^a)^b = (g^b)^a
  EXPECT_EQ(g->exp(g->exp_g(a), b), g->exp(g->exp_g(b), a));
  // g^0 = identity
  EXPECT_EQ(g->exp_g(BigInt(0)), g->identity());
  // g^q = identity (generator has order q)
  EXPECT_EQ(g->exp(g->g(), g->q()), g->identity());
}

TEST_P(GroupBackendTest, InverseAndIdentity) {
  GroupPtr g = group();
  Rng rng(3);
  Element a = g->exp_g(g->random_scalar(rng));
  EXPECT_EQ(g->mul(a, g->inv(a)), g->identity());
  EXPECT_EQ(g->mul(a, g->identity()), a);
  EXPECT_TRUE(g->is_element(g->identity()));
}

TEST_P(GroupBackendTest, Exp2MatchesSeparateExps) {
  GroupPtr g = group();
  Rng rng(6);
  Element b1 = g->exp_g(g->random_scalar(rng));
  Element b2 = g->exp_g(g->random_scalar(rng));
  BigInt e1 = g->random_scalar(rng);
  BigInt e2 = g->random_scalar(rng);
  EXPECT_EQ(g->exp2(b1, e1, b2, e2), g->mul(g->exp(b1, e1), g->exp(b2, e2)));
}

TEST_P(GroupBackendTest, MultiExpMatchesProduct) {
  GroupPtr g = group();
  Rng rng(7);
  std::vector<std::pair<Element, BigInt>> pairs;
  Element expected = g->identity();
  for (int i = 0; i < 7; ++i) {
    Element base = g->exp_g(g->random_scalar(rng));
    BigInt e = g->random_scalar(rng);
    expected = g->mul(expected, g->exp(base, e));
    pairs.emplace_back(std::move(base), std::move(e));
  }
  EXPECT_EQ(g->multi_exp(pairs), expected);
}

TEST_P(GroupBackendTest, PrecomputedBaseMatchesGeneric) {
  GroupPtr g = group();
  Rng rng(8);
  Element base = g->exp_g(g->random_scalar(rng));
  BigInt e = g->random_scalar(rng);
  const Element generic = g->exp(base, e);
  g->precompute_base(base);
  EXPECT_EQ(g->exp(base, e), generic);
}

TEST_P(GroupBackendTest, EmptyElementNeverValidates) {
  GroupPtr g = group();
  Element empty;
  EXPECT_FALSE(g->is_element(empty));
  EXPECT_FALSE(g->is_residue(empty));
  EXPECT_NE(empty, g->identity());
  EXPECT_EQ(empty, Element());
}

TEST_P(GroupBackendTest, HashToElementLandsInGroup) {
  GroupPtr g = group();
  for (int i = 0; i < 5; ++i) {
    Bytes seed = bytes_of("seed" + std::to_string(i));
    Element e = g->hash_to_element("t", seed);
    EXPECT_TRUE(g->is_element(e));
    // Deterministic.
    EXPECT_EQ(e, g->hash_to_element("t", seed));
  }
  EXPECT_NE(g->hash_to_element("t", bytes_of("a")), g->hash_to_element("t", bytes_of("b")));
  EXPECT_NE(g->hash_to_element("t1", bytes_of("a")), g->hash_to_element("t2", bytes_of("a")));
}

TEST_P(GroupBackendTest, HashToScalarInRange) {
  GroupPtr g = group();
  for (int i = 0; i < 10; ++i) {
    BigInt s = g->hash_to_scalar("t", bytes_of("seed" + std::to_string(i)));
    EXPECT_TRUE(g->is_scalar(s));
  }
}

TEST_P(GroupBackendTest, ElementSerializationRoundTrip) {
  GroupPtr g = group();
  Rng rng(4);
  Element e = g->exp_g(g->random_scalar(rng));
  Writer w;
  g->encode_element(w, e);
  EXPECT_EQ(w.data().size(), g->element_bytes());
  Reader r(w.data());
  EXPECT_EQ(g->decode_element(r), e);
}

TEST_P(GroupBackendTest, IdentitySerializationRoundTrip) {
  GroupPtr g = group();
  Writer w;
  g->encode_element(w, g->identity());
  Reader r(w.data());
  EXPECT_EQ(g->decode_element(r), g->identity());
}

TEST_P(GroupBackendTest, DecodeRejectsGarbage) {
  GroupPtr g = group();
  // All-0xFF is never a canonical encoding in any backend (>= p for
  // schnorr, bad prefix for the curve).
  Writer w;
  w.raw(Bytes(g->element_bytes(), 0xFF));
  Reader r(w.data());
  EXPECT_THROW(g->decode_element(r), ProtocolError);
}

TEST_P(GroupBackendTest, ScalarSerializationRejectsOverflow) {
  GroupPtr g = group();
  Writer w;
  g->encode_scalar(w, g->q() - BigInt(1));
  Reader r(w.data());
  EXPECT_EQ(g->decode_scalar(r), g->q() - BigInt(1));
  Writer w2;
  w2.raw(g->q().to_bytes_padded(g->scalar_bytes()));
  Reader r2(w2.data());
  EXPECT_THROW(g->decode_scalar(r2), ProtocolError);
}

TEST_P(GroupBackendTest, ByNameRoundTrip) {
  GroupPtr g = group();
  EXPECT_EQ(Group::by_name(g->name()).get(), g.get());
}

INSTANTIATE_TEST_SUITE_P(AllBackends, GroupBackendTest,
                         ::testing::Values("test-256/128", "default-768/256", "big-1536/256",
                                           "secp256k1"));

TEST(GroupTest, ByNameRejectsUnknown) {
  EXPECT_THROW(Group::by_name("p-1024/160"), ProtocolError);
}

TEST(GroupTest, ScalarInverse) {
  GroupPtr g = Group::test_group();
  Rng rng(5);
  BigInt a = g->random_scalar(rng);
  while (a.is_zero()) a = g->random_scalar(rng);
  EXPECT_TRUE(g->scalar_mul(a, g->scalar_inv(a)).is_one());
}

// -- Schnorr-specific: hard-coded parameter sets and Z_p* representation ----

class SchnorrParamTest : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] std::shared_ptr<const SchnorrGroup> group() const {
    const std::string which = GetParam();
    if (which == "test") return SchnorrGroup::test();
    if (which == "default") return SchnorrGroup::production();
    return SchnorrGroup::big();
  }
};

TEST_P(SchnorrParamTest, ParametersAreValid) {
  auto g = group();
  Rng rng(1);
  EXPECT_TRUE(g->p().is_probable_prime(rng));
  EXPECT_TRUE(g->q().is_probable_prime(rng));
  EXPECT_TRUE(((g->p() - BigInt(1)) % g->q()).is_zero());
  EXPECT_TRUE(g->is_element(g->g()));
  const BigInt& gen = g->g().residue();
  EXPECT_FALSE(gen.is_one());
  // Generator has order exactly q (q prime, g != 1, g^q = 1).
  EXPECT_TRUE(BigInt::pow_mod(gen, g->q(), g->p()).is_one());
}

TEST_P(SchnorrParamTest, MembershipRejectsOutsiders) {
  auto g = group();
  EXPECT_FALSE(g->is_element(Element::from_residue(BigInt(0))));
  EXPECT_FALSE(g->is_element(Element::from_residue(g->p())));
  EXPECT_FALSE(g->is_element(Element::from_residue(g->p() + BigInt(1))));
  EXPECT_FALSE(g->is_element(Element::from_residue(BigInt(-2))));
  // p-1 has order 2, not in the order-q subgroup (q odd).
  EXPECT_FALSE(g->is_element(Element::from_residue(g->p() - BigInt(1))));
  // A point-represented element is never a member of a Schnorr group.
  EXPECT_FALSE(g->is_element(Group::curve_group()->g()));
}

TEST_P(SchnorrParamTest, DecodeRejectsNonSubgroupResidue) {
  auto g = group();
  // p - 1 is in range but not in the subgroup.
  Writer w;
  w.raw((g->p() - BigInt(1)).to_bytes_padded(g->element_bytes()));
  Reader r(w.data());
  EXPECT_THROW(g->decode_element(r), ProtocolError);
  // decode_residue only range-checks, so the same bytes pass there.
  Reader r2(w.data());
  EXPECT_EQ(g->decode_residue(r2), Element::from_residue(g->p() - BigInt(1)));
}

INSTANTIATE_TEST_SUITE_P(AllParameterSets, SchnorrParamTest,
                         ::testing::Values("test", "default", "big"));

TEST(SchnorrGroupTest, BadConstructionRejected) {
  // q does not divide p-1.
  EXPECT_THROW(SchnorrGroup(BigInt(23), BigInt(7), BigInt(2), "bad"), LogicError);
}

}  // namespace
}  // namespace sintra::crypto
