// Shamir sharing / threshold access-structure tests, including the
// Δ-cleared integer Lagrange coefficients that threshold RSA depends on.
#include <gtest/gtest.h>

#include "crypto/group.hpp"
#include "crypto/shamir.hpp"

namespace sintra::crypto {
namespace {

TEST(PartySetTest, Helpers) {
  PartySet s = set_of({0, 3, 5});
  EXPECT_TRUE(contains(s, 0));
  EXPECT_FALSE(contains(s, 1));
  EXPECT_TRUE(contains(s, 5));
  EXPECT_EQ(popcount(s), 3);
  EXPECT_EQ(set_members(s), (std::vector<int>{0, 3, 5}));
  EXPECT_EQ(full_set(4), PartySet{0b1111});
  EXPECT_EQ(popcount(full_set(64)), 64);
}

TEST(ShamirPolynomialTest, EvalAtZeroIsSecret) {
  Rng rng(1);
  BigInt modulus = Group::test_group()->q();
  BigInt secret = BigInt::random_below(rng, modulus);
  auto poly = ShamirPolynomial::random(secret, 3, modulus, rng);
  EXPECT_EQ(poly.eval(BigInt(0)), secret);
}

TEST(ShamirPolynomialTest, DegreeZeroIsConstant) {
  Rng rng(2);
  BigInt modulus = Group::test_group()->q();
  BigInt secret = BigInt::random_below(rng, modulus);
  auto poly = ShamirPolynomial::random(secret, 0, modulus, rng);
  for (int x = 1; x <= 5; ++x) EXPECT_EQ(poly.eval_at(x), secret);
}

TEST(LagrangeTest, FieldInterpolation) {
  // f(x) = 3 + 2x + x^2 over Z_q; interpolate f(0) from f(1), f(2), f(3).
  BigInt q = Group::test_group()->q();
  std::vector<int> points = {1, 2, 3};
  auto f = [&](int x) {
    return BigInt(3 + 2 * x + x * x).mod(q);
  };
  BigInt acc;
  for (int j : points) {
    acc = BigInt::add_mod(acc, BigInt::mul_mod(lagrange_field(points, j, 0, q), f(j), q), q);
  }
  EXPECT_EQ(acc, BigInt(3));
}

TEST(LagrangeTest, FieldInterpolationAtNonzeroTarget) {
  BigInt q = Group::test_group()->q();
  std::vector<int> points = {1, 3, 5};
  auto f = [&](int x) { return BigInt(7 + 5 * x + 2 * x * x).mod(q); };
  BigInt acc;
  for (int j : points) {
    acc = BigInt::add_mod(acc, BigInt::mul_mod(lagrange_field(points, j, 4, q), f(j), q), q);
  }
  EXPECT_EQ(acc, f(4));
}

TEST(LagrangeTest, IntegerCoefficientsAreExact) {
  // Δ = n! clears all denominators (Shoup's lemma) — verified for every
  // (t+1)-subset of n = 7.
  const int n = 7;
  BigInt delta = BigInt::factorial(n);
  std::vector<int> points = {2, 3, 5, 7};  // party indices + 1
  for (int j : points) {
    BigInt c = lagrange_integer(points, j, delta);
    EXPECT_FALSE(c.is_zero());
  }
}

TEST(LagrangeTest, IntegerInterpolationRecoversDeltaTimesSecret) {
  Rng rng(3);
  BigInt q = Group::test_group()->q();
  const int n = 6;
  BigInt delta = BigInt::factorial(n);
  BigInt secret = BigInt::random_below(rng, q);
  auto poly = ShamirPolynomial::random(secret, 2, q, rng);
  std::vector<int> points = {1, 4, 6};
  BigInt acc;
  for (int j : points) {
    acc += lagrange_integer(points, j, delta) * poly.eval_at(j);
  }
  EXPECT_EQ(acc.mod(q), BigInt::mul_mod(delta.mod(q), secret, q));
}

class ThresholdSchemeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ThresholdSchemeTest, DealAndReconstruct) {
  auto [n, t] = GetParam();
  ThresholdScheme scheme(n, t);
  Rng rng(static_cast<std::uint64_t>(n * 100 + t));
  BigInt q = Group::test_group()->q();
  BigInt secret = BigInt::random_below(rng, q);
  auto shares = scheme.deal(secret, q, rng);
  ASSERT_EQ(static_cast<int>(shares.size()), n);

  // Any t+1 parties reconstruct.
  std::map<int, BigInt> subset;
  for (int i = 0; i <= t; ++i) subset[n - 1 - i] = shares[static_cast<std::size_t>(n - 1 - i)];
  EXPECT_EQ(scheme.reconstruct(subset, q), secret);
}

TEST_P(ThresholdSchemeTest, QualifiedSetsExact) {
  auto [n, t] = GetParam();
  ThresholdScheme scheme(n, t);
  EXPECT_FALSE(scheme.qualified(full_set(t)));       // t parties: no
  EXPECT_TRUE(scheme.qualified(full_set(t + 1)));    // t+1 parties: yes
  EXPECT_TRUE(scheme.qualified(full_set(n)));
  EXPECT_FALSE(scheme.qualified(0));
}

TEST_P(ThresholdSchemeTest, UnqualifiedReconstructThrows) {
  auto [n, t] = GetParam();
  ThresholdScheme scheme(n, t);
  Rng rng(9);
  BigInt q = Group::test_group()->q();
  auto shares = scheme.deal(BigInt(12345), q, rng);
  std::map<int, BigInt> too_few;
  for (int i = 0; i < t; ++i) too_few[i] = shares[static_cast<std::size_t>(i)];
  if (t > 0) {
    EXPECT_THROW(scheme.reconstruct(too_few, q), ProtocolError);
  }
}

TEST_P(ThresholdSchemeTest, TSharesRevealNothingStructural) {
  // Information-theoretic check at small scale: for every possible secret,
  // there exists a polynomial consistent with any t observed shares — here
  // verified by re-dealing with a forced different secret and observing
  // that the t-share view can collide (i.e. shares alone don't pin the
  // secret).  Structural proxy: coefficients() must fail for t parties.
  auto [n, t] = GetParam();
  ThresholdScheme scheme(n, t);
  if (t == 0) return;
  EXPECT_THROW(scheme.coefficients(full_set(t)), ProtocolError);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ThresholdSchemeTest,
                         ::testing::Values(std::make_pair(1, 0), std::make_pair(4, 1),
                                           std::make_pair(7, 2), std::make_pair(10, 3),
                                           std::make_pair(16, 5), std::make_pair(31, 10)));

TEST(ThresholdSchemeTest, CoefficientsSatisfyDeltaIdentity) {
  // sum c_j * share_j == Δ * secret (mod modulus) for random qualified sets.
  const int n = 9;
  const int t = 2;
  ThresholdScheme scheme(n, t);
  Rng rng(11);
  BigInt q = Group::test_group()->q();
  BigInt secret = BigInt::random_below(rng, q);
  auto shares = scheme.deal(secret, q, rng);
  for (int trial = 0; trial < 20; ++trial) {
    PartySet parties = 0;
    while (popcount(parties) < t + 1 + static_cast<int>(rng.below(3))) {
      parties |= party_bit(static_cast<int>(rng.below(n)));
    }
    BigInt acc;
    for (const auto& [unit, coeff] : scheme.coefficients(parties)) {
      acc += coeff * shares[static_cast<std::size_t>(unit)];
    }
    EXPECT_EQ(acc.mod(q), BigInt::mul_mod(scheme.delta().mod(q), secret, q));
  }
}

TEST(ThresholdSchemeTest, UnitsOfMapping) {
  ThresholdScheme scheme(5, 1);
  for (int p = 0; p < 5; ++p) {
    EXPECT_EQ(scheme.units_of(p), std::vector<int>{p});
    EXPECT_EQ(scheme.unit_owner(p), p);
  }
  EXPECT_EQ(scheme.num_units(), 5);
}

TEST(ThresholdSchemeTest, InvalidParametersRejected) {
  EXPECT_THROW(ThresholdScheme(0, 0), ProtocolError);
  EXPECT_THROW(ThresholdScheme(4, 4), ProtocolError);
  EXPECT_THROW(ThresholdScheme(4, -1), ProtocolError);
  EXPECT_THROW(ThresholdScheme(65, 1), ProtocolError);
}

TEST(ThresholdSchemeTest, WorksOverRsaStyleModulus) {
  // Sharing over a composite modulus of secret order (the threshold-RSA
  // setting): reconstruct via integer coefficients without reducing the
  // shares mod anything the parties could not know.
  Rng rng(13);
  BigInt p(1019);
  BigInt q(1283);
  BigInt m = p * q;  // stands in for p'q'
  ThresholdScheme scheme(5, 2);
  BigInt secret = BigInt::random_below(rng, m);
  auto shares = scheme.deal(secret, m, rng);
  std::map<int, BigInt> subset;
  for (int i : {0, 2, 4}) subset[i] = shares[static_cast<std::size_t>(i)];
  EXPECT_EQ(scheme.reconstruct(subset, m), secret);
}

}  // namespace
}  // namespace sintra::crypto
