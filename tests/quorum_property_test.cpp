// Cross-model quorum-system property tests: the abstract invariants every
// QuorumSystem implementation (threshold, generalized Q³, hybrid) must
// satisfy for the protocol stack's safety arguments to go through —
// checked exhaustively over all party subsets.
#include <gtest/gtest.h>

#include "adversary/examples.hpp"
#include "adversary/hybrid.hpp"

namespace sintra::adversary {
namespace {

using crypto::full_set;
using crypto::PartySet;

/// The invariants the protocols rely on, for every subset pair.
void check_invariants(const QuorumSystem& q) {
  const int n = q.n();
  ASSERT_LE(n, 16) << "exhaustive check infeasible";
  const PartySet limit = PartySet{1} << n;
  const PartySet universe = full_set(n);

  // The full set is a quorum; the empty set is corruptible and nothing else.
  EXPECT_TRUE(q.is_quorum(universe));
  EXPECT_TRUE(q.corruptible(0));
  EXPECT_FALSE(q.exceeds_fault_set(0));

  for (PartySet a = 0; a < limit; ++a) {
    // Monotonicity of all predicates.
    for (int i = 0; i < n; ++i) {
      PartySet bigger = a | crypto::party_bit(i);
      if (q.is_quorum(a)) EXPECT_TRUE(q.is_quorum(bigger));
      if (q.exceeds_fault_set(a)) EXPECT_TRUE(q.exceeds_fault_set(bigger));
      if (q.is_vote_quorum(a)) EXPECT_TRUE(q.is_vote_quorum(bigger));
      if (q.corruptible(bigger)) EXPECT_TRUE(q.corruptible(a & bigger));
    }
    // exceeds_fault_set is the negation of corruptible restricted to the
    // universe (in the Byzantine-only models) or implies non-corruptible
    // (hybrid): a set beyond one fault set can never be fully corrupted.
    if (q.exceeds_fault_set(a)) EXPECT_FALSE(q.corruptible(a));
    // Vote quorum implies both weaker predicates... (vote => exceeds).
    if (q.is_vote_quorum(a)) EXPECT_TRUE(q.exceeds_fault_set(a));
    // A quorum's complement must be corruptible-or-crashable: protocols
    // wait for quorums, so the adversary must be able to silence exactly
    // the complement.  (For Byzantine-only models: complement in A.)
    // Conversely a corruptible set must never contain a quorum.
    if (q.corruptible(a)) EXPECT_FALSE(q.is_quorum(a) && n > 1);
  }

  // Quorum intersection: any two quorums intersect beyond one fault set —
  // the root of every uniqueness argument in the stack.
  for (PartySet a = 0; a < limit; ++a) {
    if (!q.is_quorum(a)) continue;
    for (PartySet b = a; b < limit; ++b) {
      if (!q.is_quorum(b)) continue;
      EXPECT_TRUE(q.exceeds_fault_set(a & b))
          << "quorums " << a << " and " << b << " intersect corruptibly";
    }
  }

  // Vote-quorum residue: removing any corruptible set from a vote quorum
  // leaves a set beyond one fault set — majority voting stays correct.
  for (PartySet a = 0; a < limit; ++a) {
    if (!q.is_vote_quorum(a)) continue;
    for (PartySet bad = 0; bad < limit; ++bad) {
      if (!q.corruptible(bad)) continue;
      EXPECT_TRUE(q.exceeds_fault_set(a & ~bad));
    }
  }

  // Liveness compatibility: the honest parties left after silencing any
  // corruptible set still contain a quorum (Byzantine-only models) —
  // otherwise the protocols could wait forever.
  for (PartySet bad : {PartySet{0}, PartySet{1}}) {
    if (q.corruptible(bad)) EXPECT_TRUE(q.is_quorum(universe & ~bad));
  }
}

TEST(QuorumPropertyTest, Threshold4_1) {
  check_invariants(ThresholdQuorum(4, 1));
}

TEST(QuorumPropertyTest, Threshold7_2) {
  check_invariants(ThresholdQuorum(7, 2));
}

TEST(QuorumPropertyTest, Threshold10_3) {
  check_invariants(ThresholdQuorum(10, 3));
}

TEST(QuorumPropertyTest, GeneralizedExample1) {
  check_invariants(GeneralQuorum(example1_access().to_adversary_structure(9)));
}

TEST(QuorumPropertyTest, GeneralizedExample2) {
  check_invariants(GeneralQuorum(example2_structure()));
}

TEST(QuorumPropertyTest, Hybrid6_1_1) {
  check_invariants(HybridQuorum(6, 1, 1));
}

TEST(QuorumPropertyTest, Hybrid9_2_1) {
  check_invariants(HybridQuorum(9, 2, 1));
}

TEST(QuorumPropertyTest, HybridCrashOnly5_0_2) {
  check_invariants(HybridQuorum(5, 0, 2));
}

TEST(QuorumPropertyTest, LivenessUnderEveryMaximalSetExample1) {
  // For the generalized model: after silencing ANY maximal corruptible
  // set, the remaining honest parties form a quorum and a vote quorum
  // minus any further corruptible set still answers consistently.
  auto structure = example1_access().to_adversary_structure(9);
  GeneralQuorum q(structure);
  for (PartySet bad : structure.maximal_sets()) {
    PartySet honest = full_set(9) & ~bad;
    EXPECT_TRUE(q.is_quorum(honest));
    EXPECT_TRUE(q.is_vote_quorum(honest));
    EXPECT_TRUE(q.exceeds_fault_set(honest));
  }
}

TEST(QuorumPropertyTest, LivenessUnderEveryMaximalSetExample2) {
  auto structure = example2_structure();
  GeneralQuorum q(structure);
  for (PartySet bad : structure.maximal_sets()) {
    PartySet honest = full_set(16) & ~bad;
    EXPECT_TRUE(q.is_quorum(honest));
    EXPECT_TRUE(q.is_vote_quorum(honest));
  }
}

}  // namespace
}  // namespace sintra::adversary
