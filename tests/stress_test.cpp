// Randomized full-stack stress sweeps: many seeds x corruption patterns x
// schedulers x system sizes, asserting the safety and liveness invariants
// of the complete pipeline on every combination.  This is the "soak"
// counterpart to the targeted protocol tests.
#include <gtest/gtest.h>

#include "adversary/hybrid.hpp"
#include "protocols/atomic.hpp"
#include "protocols/causal.hpp"
#include "protocols/harness.hpp"

namespace sintra {
namespace {

using crypto::PartySet;
using crypto::party_bit;

struct AbcState {
  std::unique_ptr<protocols::AtomicBroadcast> abc;
  std::vector<std::pair<int, Bytes>> log;
};

struct Config {
  int n;
  int t;
  std::uint64_t seed;
};

class StressTest : public ::testing::TestWithParam<Config> {};

TEST_P(StressTest, RandomCorruptionRandomSchedulerFullPipeline) {
  const auto [n, t, seed] = GetParam();
  Rng meta(seed);
  Rng rng(seed * 3 + 1);
  auto deployment = adversary::Deployment::threshold(n, t, rng);

  // Random corruption set of size t.
  PartySet corrupted = 0;
  while (crypto::popcount(corrupted) < t) {
    corrupted |= party_bit(static_cast<int>(meta.below(static_cast<std::uint64_t>(n))));
  }

  // Random scheduler flavour.
  std::unique_ptr<net::Scheduler> sched;
  switch (meta.below(3)) {
    case 0: sched = std::make_unique<net::RandomScheduler>(seed); break;
    case 1: sched = std::make_unique<net::LifoScheduler>(seed); break;
    default: {
      int victim = 0;
      do {
        victim = static_cast<int>(meta.below(static_cast<std::uint64_t>(n)));
      } while (crypto::contains(corrupted, victim));
      sched = std::make_unique<net::StarvePartyScheduler>(seed, victim);
      break;
    }
  }

  protocols::Cluster<AbcState> cluster(
      deployment, *sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<AbcState>();
        s->abc = std::make_unique<protocols::AtomicBroadcast>(
            party, "abc", [p = s.get()](int origin, Bytes payload) {
              p->log.emplace_back(origin, std::move(payload));
            });
        return s;
      },
      corrupted, 0, seed);
  cluster.start();

  // Random workload: 1-3 payloads per honest party, some submitted later.
  int total = 0;
  std::vector<std::pair<int, Bytes>> late;
  cluster.for_each([&](int id, AbcState&) {
    const int count = 1 + static_cast<int>(meta.below(3));
    for (int k = 0; k < count; ++k) {
      Bytes payload = bytes_of("p" + std::to_string(id) + "." + std::to_string(k));
      if (meta.below(4) == 0) {
        late.emplace_back(id, std::move(payload));
      } else {
        cluster.protocol(id)->abc->submit(std::move(payload));
      }
      ++total;
    }
  });
  cluster.simulator().run(50000);  // partial progress
  for (auto& [id, payload] : late) cluster.protocol(id)->abc->submit(std::move(payload));

  // Liveness: everything delivers.
  ASSERT_TRUE(cluster.run_until_all(
      [&](AbcState& s) { return s.log.size() >= static_cast<std::size_t>(total); },
      100000000))
      << "n=" << n << " seed=" << seed;

  // Safety: identical order; no duplicates; exactly the submitted set.
  const auto& reference = [&]() -> const std::vector<std::pair<int, Bytes>>& {
    for (int id = 0; id < n; ++id) {
      if (cluster.protocol(id) != nullptr) return cluster.protocol(id)->log;
    }
    throw std::logic_error("no honest party");
  }();
  cluster.for_each([&](int, AbcState& s) { EXPECT_EQ(s.log, reference); });
  std::set<Bytes> seen;
  for (const auto& [origin, payload] : reference) {
    EXPECT_TRUE(seen.insert(payload).second) << "duplicate delivery";
  }
  EXPECT_EQ(static_cast<int>(seen.size()), total);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StressTest,
    ::testing::Values(Config{4, 1, 101}, Config{4, 1, 102}, Config{4, 1, 103},
                      Config{4, 1, 104}, Config{7, 2, 201}, Config{7, 2, 202},
                      Config{7, 2, 203}, Config{10, 3, 301}, Config{10, 3, 302}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return "n" + std::to_string(info.param.n) + "_seed" + std::to_string(info.param.seed);
    });

struct ScState {
  std::unique_ptr<protocols::SecureCausalBroadcast> sc;
  std::vector<Bytes> log;
};

TEST(StressTest, CausalPipelineSweep) {
  // Secure causal pipeline under several seeds with a crash fault.
  for (std::uint64_t seed = 401; seed <= 404; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed);
    protocols::Cluster<ScState> cluster(
        deployment, sched,
        [](net::Party& party, int) {
          auto s = std::make_unique<ScState>();
          s->sc = std::make_unique<protocols::SecureCausalBroadcast>(
              party, "sc", [p = s.get()](std::uint64_t, Bytes plaintext, Bytes) {
                p->log.push_back(std::move(plaintext));
              });
          return s;
        },
        party_bit(static_cast<int>(seed % 4)), 0, seed);
    cluster.start();
    Rng crng(seed + 7);
    const auto& pk = deployment.keys->public_keys().encryption;
    const int total = 5;
    for (int k = 0; k < total; ++k) {
      auto ct = pk.encrypt(bytes_of("doc" + std::to_string(k)), bytes_of("svc"), crng);
      int submitter = (k + 1 + static_cast<int>(seed)) % 4;
      if (cluster.protocol(submitter) == nullptr) submitter = (submitter + 1) % 4;
      cluster.protocol(submitter)->sc->submit(ct);
    }
    ASSERT_TRUE(cluster.run_until_all(
        [&](ScState& s) { return s.log.size() >= static_cast<std::size_t>(total); },
        100000000))
        << "seed " << seed;
    const std::vector<Bytes>* reference = nullptr;
    cluster.for_each([&](int, ScState& s) {
      if (reference == nullptr) reference = &s.log;
      else EXPECT_EQ(s.log, *reference);
    });
  }
}

TEST(StressTest, HybridPipelineSweep) {
  for (std::uint64_t seed = 501; seed <= 503; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::hybrid_deployment(6, 1, 1, rng);
    net::RandomScheduler sched(seed);
    protocols::Cluster<AbcState> cluster(
        deployment, sched,
        [](net::Party& party, int) {
          auto s = std::make_unique<AbcState>();
          s->abc = std::make_unique<protocols::AtomicBroadcast>(
              party, "abc", [p = s.get()](int origin, Bytes payload) {
                p->log.emplace_back(origin, std::move(payload));
              });
          return s;
        },
        party_bit(static_cast<int>(seed % 6)) |
            party_bit(static_cast<int>((seed + 3) % 6)),
        0, seed);
    cluster.start();
    int submitter = static_cast<int>((seed + 1) % 6);
    while (cluster.protocol(submitter) == nullptr) submitter = (submitter + 1) % 6;
    cluster.protocol(submitter)->abc->submit(bytes_of("hybrid-stress"));
    ASSERT_TRUE(
        cluster.run_until_all([](AbcState& s) { return s.log.size() >= 1; }, 50000000))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace sintra
