// Work-pool tests: sequential determinism, owner-thread completion
// delivery, exception containment, full-queue inline fallback, and
// bit-exact Simulator runs with the pool attached (the pipeline must not
// perturb seeded executions).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include "adversary/examples.hpp"
#include "common/work_pool.hpp"
#include "protocols/abba.hpp"
#include "protocols/harness.hpp"

namespace sintra {
namespace {

using common::WorkPool;

Bytes payload_of(std::uint8_t b) { return Bytes{b}; }

TEST(WorkPoolTest, SequentialModeRunsInlineAtSubmit) {
  WorkPool pool(0);
  EXPECT_TRUE(pool.sequential());
  const auto owner = std::this_thread::get_id();
  std::vector<int> order;
  pool.submit(
      [&] {
        EXPECT_EQ(std::this_thread::get_id(), owner);
        order.push_back(1);
        return payload_of(7);
      },
      [&](Bytes result) {
        EXPECT_EQ(std::this_thread::get_id(), owner);
        EXPECT_EQ(result, payload_of(7));
        order.push_back(2);
      });
  // Job and completion both already ran, in order, before submit returned.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_FALSE(pool.has_completions());
  EXPECT_EQ(pool.drain(), 0u);
}

TEST(WorkPoolTest, ThreadedCompletionsRunOnOwnerThread) {
  WorkPool pool(2);
  EXPECT_EQ(pool.threads(), 2u);
  const auto owner = std::this_thread::get_id();
  std::atomic<int> off_owner_jobs{0};
  std::vector<std::uint8_t> seen;
  constexpr int kJobs = 32;
  for (int i = 0; i < kJobs; ++i) {
    pool.submit(
        [&, i] {
          if (std::this_thread::get_id() != owner) off_owner_jobs.fetch_add(1);
          return payload_of(static_cast<std::uint8_t>(i));
        },
        [&](Bytes result) {
          // Completions only ever run on the owner thread, inside drain().
          EXPECT_EQ(std::this_thread::get_id(), owner);
          ASSERT_EQ(result.size(), 1u);
          seen.push_back(result[0]);
        });
  }
  pool.wait_idle();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kJobs));
  // At least some work actually left the owner thread.
  EXPECT_GT(off_owner_jobs.load(), 0);
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < kJobs; ++i) EXPECT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(WorkPoolTest, ThrowingJobYieldsEmptyBytesAndPoolSurvives) {
  for (std::size_t threads : {std::size_t{0}, std::size_t{2}}) {
    WorkPool pool(threads);
    bool empty_seen = false;
    pool.submit([]() -> Bytes { throw std::runtime_error("malformed batch"); },
                [&](Bytes result) { empty_seen = result.empty(); });
    pool.wait_idle();
    EXPECT_TRUE(empty_seen) << "threads=" << threads;
    // Pool still functional after the throw.
    bool ok = false;
    pool.submit([] { return payload_of(1); }, [&](Bytes result) { ok = !result.empty(); });
    pool.wait_idle();
    EXPECT_TRUE(ok) << "threads=" << threads;
  }
}

TEST(WorkPoolTest, FullQueueFallsBackToInlineExecution) {
  WorkPool pool(1, /*max_queue=*/1);
  const auto owner = std::this_thread::get_id();
  std::promise<void> gate;
  std::shared_future<void> opened = gate.get_future().share();
  std::atomic<bool> worker_busy{false};
  pool.submit(
      [&, opened] {
        worker_busy.store(true);
        opened.wait();
        return payload_of(1);
      },
      [](Bytes) {});
  while (!worker_busy.load()) std::this_thread::yield();
  pool.submit([&, opened] { opened.wait(); return payload_of(2); }, [](Bytes) {});  // queued
  // Queue is now full: the next submit must run inline on the caller and
  // complete before returning — overload degrades to synchronous, never
  // blocks, never drops.
  bool inline_done = false;
  pool.submit(
      [&] {
        EXPECT_EQ(std::this_thread::get_id(), owner);
        return payload_of(3);
      },
      [&](Bytes result) {
        EXPECT_EQ(result, payload_of(3));
        inline_done = true;
      });
  EXPECT_TRUE(inline_done);
  gate.set_value();
  pool.wait_idle();
}

TEST(WorkPoolTest, StopFiresEveryCompletionExactlyOnce) {
  // Regression: shutdown used to discard completions still parked in the
  // finished queue — a submitted verification could silently never report.
  // stop() (and the destructor through it) must drain every completion on
  // the owner thread, each exactly once.
  constexpr int kJobs = 64;
  std::atomic<int> fired{0};
  {
    WorkPool pool(2, /*max_queue=*/8);
    const auto owner = std::this_thread::get_id();
    for (int i = 0; i < kJobs; ++i) {
      pool.submit([i] { return payload_of(static_cast<std::uint8_t>(i)); },
                  [&, owner](Bytes result) {
                    EXPECT_EQ(std::this_thread::get_id(), owner);
                    EXPECT_EQ(result.size(), 1u);
                    fired.fetch_add(1);
                  });
    }
    pool.stop();
    EXPECT_EQ(fired.load(), kJobs) << "stop() dropped undrained completions";
    pool.stop();  // idempotent: must not re-fire anything
    EXPECT_EQ(fired.load(), kJobs);
  }  // destructor after stop(): still exactly once
  EXPECT_EQ(fired.load(), kJobs);
}

TEST(WorkPoolTest, HasCompletionsAndNotifyWakeTheOwner) {
  WorkPool pool(1);
  std::atomic<int> notified{0};
  pool.set_notify([&] { notified.fetch_add(1); });
  pool.submit([] { return payload_of(9); }, [](Bytes) {});
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!pool.has_completions()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "completion never surfaced";
    std::this_thread::yield();
  }
  EXPECT_GE(notified.load(), 1);
  EXPECT_EQ(pool.drain(), 1u);
  EXPECT_FALSE(pool.has_completions());
}

// -- Simulator determinism with the pool attached -----------------------------

struct AbbaState {
  std::unique_ptr<protocols::Abba> abba;
  std::optional<bool> decision;
};

struct RunFingerprint {
  std::uint64_t steps = 0;
  std::uint64_t messages = 0;
  bool decision = false;

  bool operator==(const RunFingerprint&) const = default;
};

/// One seeded 4-party ABBA run; when `pool` is non-null it is attached to
/// every honest party (the Simulator mandates sequential mode).
RunFingerprint run_abba(std::uint64_t seed, WorkPool* pool) {
  Rng rng(seed);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(seed);
  protocols::Cluster<AbbaState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto state = std::make_unique<AbbaState>();
        state->abba = std::make_unique<protocols::Abba>(
            party, "ba/0", [s = state.get()](bool v, int) { s->decision = v; });
        return state;
      },
      0, 0, seed);
  if (pool != nullptr) {
    for (int id = 0; id < cluster.n(); ++id) cluster.party(id)->set_work_pool(pool);
  }
  cluster.start();
  cluster.for_each([&](int id, AbbaState& s) { s.abba->start(id % 2 == 0); });
  EXPECT_TRUE(cluster.run_until_all(
      [](AbbaState& s) { return s.decision.has_value(); }, 3000000));
  RunFingerprint fp;
  fp.steps = cluster.simulator().now();
  fp.messages = cluster.simulator().total_messages();
  cluster.for_each([&](int, AbbaState& s) { fp.decision = s.decision.value_or(false); });
  return fp;
}

TEST(WorkPoolTest, SeededSimulatorRunsAreBitExactWithPoolEnabled) {
  for (std::uint64_t seed : {1ull, 5ull, 23ull}) {
    WorkPool pool_a(0);
    WorkPool pool_b(0);
    RunFingerprint with_pool_a = run_abba(seed, &pool_a);
    RunFingerprint with_pool_b = run_abba(seed, &pool_b);
    RunFingerprint without_pool = run_abba(seed, nullptr);
    // Repeats with the pool agree, and the pool changes nothing at all
    // versus the plain inline path.
    EXPECT_EQ(with_pool_a, with_pool_b) << "seed " << seed;
    EXPECT_EQ(with_pool_a, without_pool) << "seed " << seed;
  }
}

}  // namespace
}  // namespace sintra
