// Chaos harness: every protocol layer must keep its safety invariants
// under at-least-once delivery — duplicated, replayed, dropped-then-
// retransmitted traffic and crash-restarting parties — and stay live,
// since every injected fault is bounded (net/fault.hpp).
//
// Matrix (acceptance criteria of issue 2): protocol in {RBC, ABBA, VBA,
// atomic, causal} x fault policy in {duplicates, replays, retrying link,
// crash-restart} x seeds.  The scheduler alternates by seed between the
// random baseline and the reordering-maximizing LIFO adversary, so every
// policy also runs under adversarial delivery order.  Seed count is
// SINTRA_CHAOS_SEEDS (default 8; CI's reduced sweep sets it lower).
#include <gtest/gtest.h>

#include <cstdlib>

#include "net/corruption.hpp"
#include "protocols/abba.hpp"
#include "protocols/atomic.hpp"
#include "protocols/broadcast.hpp"
#include "protocols/causal.hpp"
#include "protocols/harness.hpp"
#include "protocols/vba.hpp"

namespace sintra::protocols {
namespace {

int chaos_seeds() {
  if (const char* env = std::getenv("SINTRA_CHAOS_SEEDS")) {
    const int value = std::atoi(env);
    if (value > 0) return value;
  }
  return 8;
}

enum class Fault { kDuplicates, kReplays, kRetryingLink, kCrashRestart };

constexpr Fault kAllFaults[] = {Fault::kDuplicates, Fault::kReplays, Fault::kRetryingLink,
                                Fault::kCrashRestart};

const char* fault_name(Fault fault) {
  switch (fault) {
    case Fault::kDuplicates: return "duplicates";
    case Fault::kReplays: return "replays";
    case Fault::kRetryingLink: return "retrying-link";
    case Fault::kCrashRestart: return "crash-restart";
  }
  return "?";
}

/// Applies one matrix cell to a freshly built cluster: either a fault
/// policy on the network or a crash-restart plan for party 1.
template <typename State>
void arm(ChaosCluster<State>& cluster, Fault fault, std::uint64_t seed) {
  switch (fault) {
    case Fault::kDuplicates:
      cluster.set_fault_policy(seed * 31 + 1, net::FaultPolicy::duplicates());
      break;
    case Fault::kReplays:
      cluster.set_fault_policy(seed * 31 + 2, net::FaultPolicy::replays());
      break;
    case Fault::kRetryingLink:
      cluster.set_fault_policy(seed * 31 + 3, net::FaultPolicy::retrying_link());
      break;
    case Fault::kCrashRestart:
      // Party 1 loses all volatile state after 6 deliveries, misses the
      // next 4 messages (stashed by the reliable link), then rebuilds
      // from its write-ahead log and rejoins.
      cluster.set_restarting(1, /*crash_after=*/6, /*down_for=*/4);
      break;
  }
}

/// Scheduler for a seed: even seeds the random baseline, odd seeds the
/// reordering-maximizing (still fair) LIFO adversary.
std::unique_ptr<net::Scheduler> scheduler_for(std::uint64_t seed) {
  if (seed % 2 == 0) return std::make_unique<net::RandomScheduler>(seed * 101);
  return std::make_unique<net::LifoScheduler>(seed * 101);
}

// ---------------------------------------------------------------- RBC --

struct RbcState {
  std::unique_ptr<ReliableBroadcast> rbc;
  std::vector<Bytes> delivered;  ///< must end up with exactly one entry
};

void run_rbc(Fault fault, std::uint64_t seed) {
  SCOPED_TRACE(std::string("rbc/") + fault_name(fault) + "/seed " + std::to_string(seed));
  Rng rng(seed);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  auto sched = scheduler_for(seed);
  ChaosCluster<RbcState> cluster(
      deployment, *sched,
      [](net::Party& party, int id) {
        auto state = std::make_unique<RbcState>();
        state->rbc = std::make_unique<ReliableBroadcast>(
            party, "rbc/0", /*sender=*/0,
            [s = state.get()](Bytes m) { s->delivered.push_back(std::move(m)); });
        if (id == 0) state->rbc->start(bytes_of("chaos-payload"));
        return state;
      },
      seed);
  arm(cluster, fault, seed);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all([](RbcState& s) { return !s.delivered.empty(); }, 200000))
      << "liveness violated";
  cluster.for_each([](int, RbcState& s) {
    // Exactly-once application delivery + agreement with the sender.
    ASSERT_EQ(s.delivered.size(), 1u) << "double delivery";
    EXPECT_EQ(s.delivered[0], bytes_of("chaos-payload"));
  });
}

TEST(ChaosTest, ReliableBroadcast) {
  for (Fault fault : kAllFaults) {
    for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(chaos_seeds()); ++seed) {
      run_rbc(fault, seed);
    }
  }
}

// --------------------------------------------------------------- ABBA --

struct AbbaState {
  std::unique_ptr<Abba> abba;
  std::vector<bool> decisions;  ///< must end up with exactly one entry
};

void run_abba(Fault fault, std::uint64_t seed) {
  SCOPED_TRACE(std::string("abba/") + fault_name(fault) + "/seed " + std::to_string(seed));
  Rng rng(seed);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  auto sched = scheduler_for(seed);
  ChaosCluster<AbbaState> cluster(
      deployment, *sched,
      [](net::Party& party, int id) {
        auto state = std::make_unique<AbbaState>();
        state->abba = std::make_unique<Abba>(
            party, "ba/0",
            [s = state.get()](bool v, int) { s->decisions.push_back(v); });
        state->abba->start(id % 2 == 1);  // mixed inputs
        return state;
      },
      seed);
  arm(cluster, fault, seed);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all([](AbbaState& s) { return !s.decisions.empty(); }, 3000000))
      << "termination violated";
  std::optional<bool> common;
  cluster.for_each([&](int, AbbaState& s) {
    ASSERT_EQ(s.decisions.size(), 1u) << "decided twice";
    if (!common.has_value()) common = s.decisions[0];
    EXPECT_EQ(s.decisions[0], *common) << "agreement violated";
  });
}

TEST(ChaosTest, Abba) {
  for (Fault fault : kAllFaults) {
    for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(chaos_seeds()); ++seed) {
      run_abba(fault, seed);
    }
  }
}

// ---------------------------------------------------------------- VBA --

struct VbaState {
  std::unique_ptr<Vba> vba;
  std::vector<Bytes> decisions;
};

bool ok_prefix(BytesView value) {
  return value.size() >= 3 && value[0] == 'o' && value[1] == 'k' && value[2] == ':';
}

void run_vba(Fault fault, std::uint64_t seed) {
  SCOPED_TRACE(std::string("vba/") + fault_name(fault) + "/seed " + std::to_string(seed));
  Rng rng(seed);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  auto sched = scheduler_for(seed);
  ChaosCluster<VbaState> cluster(
      deployment, *sched,
      [](net::Party& party, int id) {
        auto state = std::make_unique<VbaState>();
        state->vba = std::make_unique<Vba>(
            party, "vba/0", ok_prefix,
            [s = state.get()](Bytes v) { s->decisions.push_back(std::move(v)); });
        state->vba->propose(bytes_of("ok:proposal-" + std::to_string(id)));
        return state;
      },
      seed);
  arm(cluster, fault, seed);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all([](VbaState& s) { return !s.decisions.empty(); }, 3000000))
      << "termination violated";
  std::optional<Bytes> common;
  cluster.for_each([&](int, VbaState& s) {
    ASSERT_EQ(s.decisions.size(), 1u) << "decided twice";
    if (!common.has_value()) common = s.decisions[0];
    EXPECT_EQ(s.decisions[0], *common) << "agreement violated";
  });
  // External validity: the decision is some party's (well-formed) proposal.
  ASSERT_TRUE(common.has_value());
  EXPECT_TRUE(ok_prefix(*common));
}

TEST(ChaosTest, Vba) {
  for (Fault fault : kAllFaults) {
    for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(chaos_seeds()); ++seed) {
      run_vba(fault, seed);
    }
  }
}

// ------------------------------------------------------------- atomic --

struct AbcState {
  std::unique_ptr<AtomicBroadcast> abc;
  std::vector<std::pair<int, Bytes>> delivered;
};

void run_atomic(Fault fault, std::uint64_t seed) {
  SCOPED_TRACE(std::string("abc/") + fault_name(fault) + "/seed " + std::to_string(seed));
  Rng rng(seed);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  auto sched = scheduler_for(seed);
  ChaosCluster<AbcState> cluster(
      deployment, *sched,
      [](net::Party& party, int id) {
        auto state = std::make_unique<AbcState>();
        state->abc = std::make_unique<AtomicBroadcast>(
            party, "abc", [s = state.get()](int origin, Bytes payload) {
              s->delivered.emplace_back(origin, std::move(payload));
            });
        // Parties 0 and 2 submit one payload each.
        if (id == 0 || id == 2) state->abc->submit(bytes_of("m" + std::to_string(id)));
        return state;
      },
      seed);
  arm(cluster, fault, seed);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all([](AbcState& s) { return s.delivered.size() >= 2; },
                                    5000000))
      << "liveness violated";
  // Total order on the common prefix, and no payload delivered twice.
  const std::vector<std::pair<int, Bytes>>* reference = nullptr;
  cluster.for_each([&](int, AbcState& s) {
    for (std::size_t i = 0; i < s.delivered.size(); ++i) {
      for (std::size_t j = i + 1; j < s.delivered.size(); ++j) {
        EXPECT_NE(s.delivered[i], s.delivered[j]) << "double delivery";
      }
    }
    if (reference == nullptr) {
      reference = &s.delivered;
      return;
    }
    const std::size_t common = std::min(reference->size(), s.delivered.size());
    for (std::size_t i = 0; i < common; ++i) {
      EXPECT_EQ(s.delivered[i], (*reference)[i]) << "total order violated at " << i;
    }
  });
}

TEST(ChaosTest, AtomicBroadcast) {
  for (Fault fault : kAllFaults) {
    for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(chaos_seeds()); ++seed) {
      run_atomic(fault, seed);
    }
  }
}

// ------------------------------------------------------------- causal --

struct ScState {
  std::unique_ptr<SecureCausalBroadcast> sc;
  std::vector<std::pair<std::uint64_t, Bytes>> delivered;
};

void run_causal(Fault fault, std::uint64_t seed) {
  SCOPED_TRACE(std::string("causal/") + fault_name(fault) + "/seed " + std::to_string(seed));
  Rng rng(seed);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  auto sched = scheduler_for(seed);
  Rng crng(seed + 500);
  const auto& pk = deployment.keys->public_keys().encryption;
  const auto ct1 = pk.encrypt(bytes_of("first"), bytes_of("svc"), crng);
  const auto ct2 = pk.encrypt(bytes_of("second"), bytes_of("svc"), crng);
  ChaosCluster<ScState> cluster(
      deployment, *sched,
      [&ct1, &ct2](net::Party& party, int id) {
        auto state = std::make_unique<ScState>();
        state->sc = std::make_unique<SecureCausalBroadcast>(
            party, "sc", [s = state.get()](std::uint64_t seq, Bytes plaintext, Bytes) {
              s->delivered.emplace_back(seq, std::move(plaintext));
            });
        if (id == 0) state->sc->submit(ct1);
        if (id == 1) state->sc->submit(ct2);
        return state;
      },
      seed);
  arm(cluster, fault, seed);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all([](ScState& s) { return s.delivered.size() >= 2; },
                                    5000000))
      << "liveness violated";
  // Identical (sequence, plaintext) at every party; sequence numbers are
  // consecutive from 0 with no repeats (exactly-once).
  const std::vector<std::pair<std::uint64_t, Bytes>>* reference = nullptr;
  cluster.for_each([&](int, ScState& s) {
    for (std::size_t i = 0; i < s.delivered.size(); ++i) {
      EXPECT_EQ(s.delivered[i].first, i) << "sequence gap or repeat";
    }
    if (reference == nullptr) {
      reference = &s.delivered;
      return;
    }
    const std::size_t common = std::min(reference->size(), s.delivered.size());
    for (std::size_t i = 0; i < common; ++i) {
      EXPECT_EQ(s.delivered[i], (*reference)[i]) << "sequencing diverged at " << i;
    }
  });
}

TEST(ChaosTest, SecureCausalBroadcast) {
  for (Fault fault : kAllFaults) {
    for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(chaos_seeds()); ++seed) {
      run_causal(fault, seed);
    }
  }
}

// -------------------------------------------------- targeted scenarios --

TEST(ChaosTest, CrashRestartedPartyRejoinsMidAbba) {
  // The acceptance-criterion scenario, checked explicitly: party 1
  // crashes mid-agreement, rebuilds from its WAL, rejoins, and the run
  // still terminates with agreement — and party 1 itself decides.
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(chaos_seeds()); ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    auto sched = scheduler_for(seed);
    ChaosCluster<AbbaState> cluster(
        deployment, *sched,
        [](net::Party& party, int id) {
          auto state = std::make_unique<AbbaState>();
          state->abba = std::make_unique<Abba>(
              party, "ba/0",
              [s = state.get()](bool v, int) { s->decisions.push_back(v); });
          state->abba->start(id % 2 == 0);
          return state;
        },
        seed);
    // ABBA can decide within ~9 deliveries per party on friendly seeds, so
    // crash early enough that the crash always lands mid-protocol.
    cluster.set_restarting(1, /*crash_after=*/5, /*down_for=*/3);
    cluster.start();
    ASSERT_TRUE(
        cluster.run_until_all([](AbbaState& s) { return !s.decisions.empty(); }, 3000000));
    EXPECT_GE(cluster.restarting(1)->restarts(), 1) << "party 1 never actually crashed";
    std::optional<bool> common;
    cluster.for_each([&](int id, AbbaState& s) {
      ASSERT_EQ(s.decisions.size(), 1u);
      if (!common.has_value()) common = s.decisions[0];
      EXPECT_EQ(s.decisions[0], *common) << "party " << id << " disagrees after restart";
    });
  }
}

TEST(ChaosTest, EverythingAtOnce) {
  // Full chaos policy (duplicates + replays + drops) combined with a
  // crash-restarting party, on the protocol with the most moving parts.
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(chaos_seeds()); ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    auto sched = scheduler_for(seed);
    ChaosCluster<AbbaState> cluster(
        deployment, *sched,
        [](net::Party& party, int id) {
          auto state = std::make_unique<AbbaState>();
          state->abba = std::make_unique<Abba>(
              party, "ba/0",
              [s = state.get()](bool v, int) { s->decisions.push_back(v); });
          state->abba->start(id >= 2);
          return state;
        },
        seed);
    cluster.set_fault_policy(seed * 97, net::FaultPolicy::chaos());
    cluster.set_restarting(2, /*crash_after=*/8, /*down_for=*/5);
    cluster.start();
    ASSERT_TRUE(
        cluster.run_until_all([](AbbaState& s) { return !s.decisions.empty(); }, 3000000));
    std::optional<bool> common;
    cluster.for_each([&](int, AbbaState& s) {
      ASSERT_EQ(s.decisions.size(), 1u);
      if (!common.has_value()) common = s.decisions[0];
      EXPECT_EQ(s.decisions[0], *common);
    });
    const auto& stats = cluster.injector()->stats();
    // The injector must have actually exercised the faults (otherwise the
    // sweep silently tests nothing).
    EXPECT_GT(stats.duplicated + stats.replayed + stats.dropped, 0u);
  }
}

// ------------------------------- flooder + crash-restart combinations --
//
// Issue 4's combined stressor: a Byzantine flooder saturating a protocol's
// buffering path while an honest party crash-restarts mid-run.  Each cell
// asserts the protocol's safety property for the correct parties AND that
// every correct party's buffered bytes stayed under its ResourceBudget cap
// throughout (peak, not just final occupancy).

/// Caps for the combined cells: far below the flood volume, comfortably
/// above honest traffic (including a restarted party's WAL replay).
net::BudgetConfig flood_budget() {
  net::BudgetConfig config;
  config.per_peer_cap = 8 << 10;
  config.per_instance_cap = 64 << 10;
  config.total_cap = 128 << 10;
  return config;
}

template <typename State>
void expect_budget_held(ChaosCluster<State>& cluster, const net::BudgetConfig& config) {
  cluster.for_each([&](int id, State&) {
    const net::Party* party = cluster.party(id);
    ASSERT_NE(party, nullptr);
    EXPECT_LE(party->budget().peak_total(), config.total_cap)
        << "party " << id << " exceeded its total budget under flood";
    EXPECT_LE(party->budget().peer_total(3), config.per_peer_cap)
        << "party " << id << " holds over-cap residue for the flooder";
  });
}

/// Replaces party 3 with a FlooderProcess spraying `profile` traffic at
/// `tag`, and arms a crash-restart plan for party 1.
template <typename State>
void arm_flood_and_restart(ChaosCluster<State>& cluster, adversary::Deployment& deployment,
                           std::uint64_t seed, net::FlooderProcess::Profile profile,
                           std::string tag) {
  cluster.set_custom(3, [&cluster, &deployment, seed, profile, tag] {
    return std::make_unique<net::FlooderProcess>(cluster.simulator(), 3, deployment,
                                                 seed * 13, profile, tag);
  });
  cluster.set_restarting(1, /*crash_after=*/6, /*down_for=*/4);
  cluster.set_budget(flood_budget());
}

TEST(ChaosTest, FloodedRbcSurvivesCrashRestart) {
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(chaos_seeds()); ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    auto sched = scheduler_for(seed);
    ChaosCluster<RbcState> cluster(
        deployment, *sched,
        [](net::Party& party, int id) {
          auto state = std::make_unique<RbcState>();
          state->rbc = std::make_unique<ReliableBroadcast>(
              party, "rbc/0", /*sender=*/0,
              [s = state.get()](Bytes m) { s->delivered.push_back(std::move(m)); });
          if (id == 0) state->rbc->start(bytes_of("flooded-payload"));
          return state;
        },
        seed);
    arm_flood_and_restart(cluster, deployment, seed,
                          net::FlooderProcess::Profile::kBogusTags, "rbc");
    cluster.start();
    ASSERT_TRUE(
        cluster.run_until_all([](RbcState& s) { return !s.delivered.empty(); }, 1000000))
        << "flood + restart broke rbc liveness";
    cluster.for_each([](int, RbcState& s) {
      ASSERT_EQ(s.delivered.size(), 1u);
      EXPECT_EQ(s.delivered[0], bytes_of("flooded-payload"));
    });
    expect_budget_held(cluster, flood_budget());
  }
}

TEST(ChaosTest, FloodedAbbaSurvivesCrashRestart) {
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(chaos_seeds()); ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    auto sched = scheduler_for(seed);
    ChaosCluster<AbbaState> cluster(
        deployment, *sched,
        [](net::Party& party, int id) {
          auto state = std::make_unique<AbbaState>();
          state->abba = std::make_unique<Abba>(
              party, "ba/0",
              [s = state.get()](bool v, int) { s->decisions.push_back(v); });
          state->abba->start(id % 2 == 0);
          return state;
        },
        seed);
    arm_flood_and_restart(cluster, deployment, seed,
                          net::FlooderProcess::Profile::kAbbaRounds, "ba/0");
    cluster.start();
    ASSERT_TRUE(
        cluster.run_until_all([](AbbaState& s) { return !s.decisions.empty(); }, 3000000))
        << "flood + restart broke abba termination";
    std::optional<bool> common;
    cluster.for_each([&](int id, AbbaState& s) {
      ASSERT_EQ(s.decisions.size(), 1u);
      if (!common.has_value()) common = s.decisions[0];
      EXPECT_EQ(s.decisions[0], *common) << "party " << id << " disagrees";
    });
    expect_budget_held(cluster, flood_budget());
  }
}

TEST(ChaosTest, FloodedVbaSurvivesCrashRestart) {
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(chaos_seeds()); ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    auto sched = scheduler_for(seed);
    ChaosCluster<VbaState> cluster(
        deployment, *sched,
        [](net::Party& party, int id) {
          auto state = std::make_unique<VbaState>();
          state->vba = std::make_unique<Vba>(
              party, "vba/0", ok_prefix,
              [s = state.get()](Bytes v) { s->decisions.push_back(std::move(v)); });
          state->vba->propose(bytes_of("ok:proposal-" + std::to_string(id)));
          return state;
        },
        seed);
    arm_flood_and_restart(cluster, deployment, seed,
                          net::FlooderProcess::Profile::kBogusTags, "vba/0");
    cluster.start();
    ASSERT_TRUE(
        cluster.run_until_all([](VbaState& s) { return !s.decisions.empty(); }, 3000000))
        << "flood + restart broke vba termination";
    std::optional<Bytes> common;
    cluster.for_each([&](int id, VbaState& s) {
      ASSERT_EQ(s.decisions.size(), 1u);
      if (!common.has_value()) common = s.decisions[0];
      EXPECT_EQ(s.decisions[0], *common) << "party " << id << " disagrees";
    });
    ASSERT_TRUE(common.has_value());
    EXPECT_TRUE(ok_prefix(*common));
    expect_budget_held(cluster, flood_budget());
  }
}

TEST(ChaosTest, FloodedAtomicSurvivesCrashRestart) {
  // The heaviest cell: validly signed future-round batches (the flooder
  // holds a dealt key share) against the atomic broadcast round buffers,
  // while party 1 crash-restarts from its WAL.
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(chaos_seeds()); ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    auto sched = scheduler_for(seed);
    ChaosCluster<AbcState> cluster(
        deployment, *sched,
        [](net::Party& party, int id) {
          auto state = std::make_unique<AbcState>();
          state->abc = std::make_unique<AtomicBroadcast>(
              party, "abc", [s = state.get()](int origin, Bytes payload) {
                s->delivered.emplace_back(origin, std::move(payload));
              });
          if (id == 0 || id == 2) state->abc->submit(bytes_of("m" + std::to_string(id)));
          return state;
        },
        seed);
    arm_flood_and_restart(cluster, deployment, seed,
                          net::FlooderProcess::Profile::kAbcRounds, "abc");
    cluster.start();
    auto honest_count = [](AbcState& s) {
      std::size_t count = 0;
      for (const auto& [origin, payload] : s.delivered) {
        if (origin != 3) ++count;
      }
      return count;
    };
    ASSERT_TRUE(cluster.run_until_all(
        [&](AbcState& s) { return honest_count(s) >= 2; }, 8000000))
        << "flood + restart broke atomic broadcast liveness";
    const std::vector<std::pair<int, Bytes>>* reference = nullptr;
    cluster.for_each([&](int id, AbcState& s) {
      if (reference == nullptr) reference = &s.delivered;
      const std::size_t common = std::min(reference->size(), s.delivered.size());
      for (std::size_t i = 0; i < common; ++i) {
        EXPECT_EQ(s.delivered[i], (*reference)[i])
            << "total order violated at " << i << ", party " << id;
      }
    });
    expect_budget_held(cluster, flood_budget());
  }
}

TEST(ChaosTest, FloodedCausalSurvivesCrashRestart) {
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(chaos_seeds()); ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    auto sched = scheduler_for(seed);
    Rng crng(seed + 900);
    const auto& pk = deployment.keys->public_keys().encryption;
    const auto ct1 = pk.encrypt(bytes_of("first"), bytes_of("svc"), crng);
    const auto ct2 = pk.encrypt(bytes_of("second"), bytes_of("svc"), crng);
    ChaosCluster<ScState> cluster(
        deployment, *sched,
        [&ct1, &ct2](net::Party& party, int id) {
          auto state = std::make_unique<ScState>();
          state->sc = std::make_unique<SecureCausalBroadcast>(
              party, "sc", [s = state.get()](std::uint64_t seq, Bytes plaintext, Bytes) {
                s->delivered.emplace_back(seq, std::move(plaintext));
              });
          if (id == 0) state->sc->submit(ct1);
          if (id == 1) state->sc->submit(ct2);
          return state;
        },
        seed);
    arm_flood_and_restart(cluster, deployment, seed,
                          net::FlooderProcess::Profile::kBogusTags, "sc");
    cluster.start();
    ASSERT_TRUE(cluster.run_until_all([](ScState& s) { return s.delivered.size() >= 2; },
                                      5000000))
        << "flood + restart broke causal liveness";
    const std::vector<std::pair<std::uint64_t, Bytes>>* reference = nullptr;
    cluster.for_each([&](int id, ScState& s) {
      for (std::size_t i = 0; i < s.delivered.size(); ++i) {
        EXPECT_EQ(s.delivered[i].first, i) << "sequence gap or repeat at party " << id;
      }
      if (reference == nullptr) {
        reference = &s.delivered;
        return;
      }
      const std::size_t common = std::min(reference->size(), s.delivered.size());
      for (std::size_t i = 0; i < common; ++i) {
        EXPECT_EQ(s.delivered[i], (*reference)[i]) << "sequencing diverged at " << i;
      }
    });
    expect_budget_held(cluster, flood_budget());
  }
}

}  // namespace
}  // namespace sintra::protocols
