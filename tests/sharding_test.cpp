// Sharded multi-group operation (issue 10 tentpole).
//
// Unit layer: multicast notify hooks (two hosts sharing one machine-wide
// pool must BOTH wake — the second set_notify used to steal the hook),
// group-salted executor-lane assignment (group 0 is bit-identical to the
// legacy single-tenant hash), and the rendezvous ShardPartitioner
// (deterministic, balanced, and removal-stable: dropping a shard remaps
// only the keys that lived on it).
//
// Client layer: PartitionedClient routes by consistent hash — every
// request lands on exactly the shard the partitioner names, per-shard
// routed counters add up, and each shard's traffic stays on that shard's
// Network endpoint.
//
// Cluster layer: two independent SINTRA groups × four parties multiplexed
// over ONE LoopbackHub, one NetworkedNode per machine hosting both
// tenants, one shared ExecutorPool per machine.  Both groups' atomic
// broadcasts must agree independently, each group's WAL must replay into
// a fresh sequential party bit-exactly, and the wire stats must prove the
// multi-group coalescing claim: payloads of BOTH groups rode shared BATCH
// super-frames (one HMAC each), never one frame per payload.
//
// Isolation layer: a Byzantine flooder saturating group A's future-epoch
// buffer exhausts A's OWN ResourceBudget; group B — distinct budget on
// the same host — keeps buffering untouched.  Payloads stamped with a
// group the host does not run are counted and dropped, never a crash.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "adversary/quorum.hpp"
#include "app/client.hpp"
#include "common/executor.hpp"
#include "common/rng.hpp"
#include "common/work_pool.hpp"
#include "net/budget.hpp"
#include "net/transport/loopback.hpp"
#include "net/transport/networked_node.hpp"
#include "protocols/atomic.hpp"
#include "protocols/harness.hpp"

namespace sintra {
namespace {

using app::PartitionedClient;
using app::ShardPartitioner;
using common::ExecutorPool;
using common::WorkPool;
using net::transport::LoopbackHub;
using net::transport::NetworkedNode;
using protocols::AtomicBroadcast;
using protocols::HostedParty;

// ---- unit: multicast notify hooks -------------------------------------------

TEST(MulticastNotifyTest, ExecutorPoolWakesEveryRegisteredHook) {
  ExecutorPool pool(1);
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  pool.set_notify([&first] { first.fetch_add(1); });
  // The second registration must NOT replace the first — two NetworkedNodes
  // sharing one machine-wide pool both need their run_until() woken.
  pool.set_notify([&second] { second.fetch_add(1); });
  pool.set_notify(nullptr);  // null hooks are ignored, not registered
  pool.post(0, [] {});
  pool.wait_idle();
  pool.stop();
  EXPECT_GE(first.load(), 1) << "first hook starved after second set_notify";
  EXPECT_GE(second.load(), 1);
}

TEST(MulticastNotifyTest, WorkPoolWakesEveryRegisteredHook) {
  WorkPool pool(1);
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  pool.set_notify([&first] { first.fetch_add(1); });
  pool.set_notify([&second] { second.fetch_add(1); });
  pool.submit([] { return Bytes{1}; }, [](Bytes) {});
  pool.wait_idle();
  pool.stop();
  EXPECT_GE(first.load(), 1) << "first hook starved after second set_notify";
  EXPECT_GE(second.load(), 1);
}

// ---- unit: group-salted lane assignment -------------------------------------

TEST(LaneSaltTest, GroupZeroMatchesLegacyAssignmentAndSaltsSpreadLanes) {
  ExecutorPool pool(4);
  bool moved = false;
  for (const char* tag : {"abc0", "abc1/rbc/3", "svc/vba/0/echo", "x"}) {
    // Group 0 must be bit-identical to the pre-sharding hash: a
    // single-tenant host sees exactly the legacy lane layout.
    EXPECT_EQ(pool.executor_for(0, tag), pool.executor_for(tag)) << tag;
    for (std::uint64_t group = 1; group <= 64; ++group) {
      const std::size_t lane = pool.executor_for(group, tag);
      EXPECT_LT(lane, pool.executors());
      if (lane != pool.executor_for(tag)) moved = true;
      // Same (group, tag-root) → same lane: the whole instance tree of a
      // tenant's protocol stays serialized on one executor.
      EXPECT_EQ(lane, pool.executor_for(group, std::string(tag) + "/sub"));
    }
  }
  EXPECT_TRUE(moved) << "salting never changed any lane — groups would all collide";
  pool.stop();
}

// ---- unit: rendezvous partitioner -------------------------------------------

Bytes key_of(int i) { return bytes_of("key-" + std::to_string(i)); }

TEST(ShardPartitionerTest, DeterministicBalancedAndRemovalStable) {
  ShardPartitioner partitioner(/*seed=*/42);
  for (std::uint32_t shard : {0u, 1u, 2u, 3u}) partitioner.add_shard(shard);

  constexpr int kKeys = 2000;
  std::map<std::uint32_t, int> load;
  std::vector<std::uint32_t> owner(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    owner[static_cast<std::size_t>(i)] = partitioner.shard_for(key_of(i));
    EXPECT_EQ(owner[static_cast<std::size_t>(i)], partitioner.shard_for(key_of(i)))
        << "non-deterministic owner for key " << i;
    ++load[owner[static_cast<std::size_t>(i)]];
  }
  // Rendezvous weights are independent per shard: each of the four shards
  // should hold roughly a quarter; 10% is a generous statistical floor.
  for (std::uint32_t shard : {0u, 1u, 2u, 3u}) {
    EXPECT_GT(load[shard], kKeys / 10) << "shard " << shard << " starved";
  }

  // Removing shard 2 remaps ONLY the keys shard 2 owned.
  partitioner.remove_shard(2);
  for (int i = 0; i < kKeys; ++i) {
    const std::uint32_t before = owner[static_cast<std::size_t>(i)];
    const std::uint32_t after = partitioner.shard_for(key_of(i));
    if (before != 2) {
      EXPECT_EQ(after, before) << "key " << i << " moved without touching shard 2";
    } else {
      EXPECT_NE(after, 2u);
    }
  }

  // Distinct seeds give distinct layouts (the salt reaches the scores).
  ShardPartitioner other(/*seed=*/43);
  for (std::uint32_t shard : {0u, 1u, 2u, 3u}) other.add_shard(shard);
  int differs = 0;
  for (int i = 0; i < kKeys; ++i) {
    if (other.shard_for(key_of(i)) != owner[static_cast<std::size_t>(i)]) ++differs;
  }
  EXPECT_GT(differs, 0);
}

// ---- client: partitioned routing --------------------------------------------

/// Network stub that records submitted messages (no delivery).
struct RecordingNetwork final : public net::Network {
  std::vector<net::Message> sent;
  int endpoints;
  explicit RecordingNetwork(int n) : endpoints(n) {}
  void submit(net::Message message) override { sent.push_back(std::move(message)); }
  [[nodiscard]] int n() const override { return endpoints; }
  [[nodiscard]] std::uint64_t now() const override { return 0; }
  TimerId schedule_timer(int, std::uint64_t, TimerFn) override { return 0; }
  void cancel_timer(TimerId) override {}
};

TEST(PartitionedClientTest, RoutesByKeyOntoTheOwningShardsNetwork) {
  Rng rng(7);
  const auto deployment = adversary::Deployment::threshold(4, 1, rng);
  constexpr std::uint32_t kShards[] = {0, 1, 2, 3};

  PartitionedClient client(/*seed=*/42, /*on_reply=*/nullptr);
  std::map<std::uint32_t, std::unique_ptr<RecordingNetwork>> nets;
  for (const std::uint32_t shard : kShards) {
    auto net = std::make_unique<RecordingNetwork>(deployment.n() + 1);
    client.add_shard(shard, *net, deployment.n(), deployment, "svc",
                     app::Replica::Mode::kAtomic);
    nets.emplace(shard, std::move(net));
  }

  constexpr int kRequests = 200;
  std::map<std::uint32_t, std::uint64_t> expected;
  for (int i = 0; i < kRequests; ++i) {
    const auto handle = client.request(std::string_view("key-" + std::to_string(i)),
                                       bytes_of("op" + std::to_string(i)));
    EXPECT_EQ(handle.shard, client.partitioner().shard_for(key_of(i)))
        << "router disagreed with the partitioner";
    ++expected[handle.shard];
  }

  std::uint64_t routed_total = 0;
  for (const auto& [shard, count] : client.routed()) {
    EXPECT_EQ(count, expected[shard]);
    routed_total += count;
    // Broadcast mode sends each request to all n servers of ITS shard —
    // and to no other shard's network.
    EXPECT_EQ(nets[shard]->sent.size(), expected[shard] * static_cast<std::size_t>(deployment.n()));
  }
  EXPECT_EQ(routed_total, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(client.outstanding(), static_cast<std::size_t>(kRequests));
  EXPECT_EQ(client.completed(), 0u);
}

// ---- cluster: two groups × four parties over one transport ------------------

constexpr int kN = 4;
constexpr int kShards = 2;
constexpr int kPerShard = 2;
constexpr std::uint64_t kSeed = 17;

std::string shard_tag(int s) { return "shard" + std::to_string(s); }

struct ShardState {
  std::unique_ptr<AtomicBroadcast> abc;
  std::vector<Bytes> delivered;  ///< written only by this group's lane
  std::atomic<std::size_t> total{0};
};

std::unique_ptr<ShardState> make_shard_state(net::Party& party, int shard) {
  auto state = std::make_unique<ShardState>();
  party.with_instance(shard_tag(shard), [&party, &state, shard] {
    state->abc = std::make_unique<AtomicBroadcast>(
        party, shard_tag(shard), [s = state.get()](int, Bytes payload) {
          s->delivered.push_back(std::move(payload));
          s->total.fetch_add(1, std::memory_order_release);
        });
  });
  return state;
}

struct ShardedCluster {
  LoopbackHub hub;
  std::vector<std::unique_ptr<NetworkedNode>> nodes;
  std::vector<std::unique_ptr<ExecutorPool>> execs;
  /// hosts[node][shard]
  std::vector<std::vector<std::unique_ptr<HostedParty<ShardState>>>> hosts;

  ShardedCluster(const adversary::Deployment& deployment, std::size_t executors)
      : hub(kN, kSeed) {
    for (int id = 0; id < kN; ++id) {
      NetworkedNode::Config config;
      config.node_id = id;
      config.n = kN;
      auto node = std::make_unique<NetworkedNode>(config);
      auto pool = std::make_unique<ExecutorPool>(executors);
      std::vector<std::unique_ptr<HostedParty<ShardState>>> tenants;
      for (int s = 0; s < kShards; ++s) {
        auto& endpoint = node->add_group(static_cast<std::uint32_t>(s));
        auto host = std::make_unique<HostedParty<ShardState>>(
            endpoint, id, deployment,
            kSeed * 7919 + static_cast<std::uint64_t>(id * kShards + s),
            [&pool, s](net::Party& party) {
              party.enable_wal();
              party.set_executors(pool.get());
              // Distinct lane salt per tenant: two groups running the
              // same protocol tags must not serialize on one lane.
              party.set_lane_group(static_cast<std::uint64_t>(s));
              return make_shard_state(party, s);
            });
        endpoint.attach(*host);
        tenants.push_back(std::move(host));
      }
      node->set_executors(pool.get());
      node->bind_transport_batched(
          [this, id](int peer, std::vector<net::transport::GroupPayload> payloads) {
            hub.send_many(id, peer, std::move(payloads));
          });
      hub.set_receiver(id, [raw = node.get()](int from, std::uint32_t group, BytesView payload) {
        raw->on_transport_receive(from, group, payload);
      });
      nodes.push_back(std::move(node));
      hosts.push_back(std::move(tenants));
      execs.push_back(std::move(pool));
    }
  }

  ~ShardedCluster() { stop(); }

  void stop() {
    for (auto& pool : execs) pool->stop();
  }

  ShardState& state(int id, int shard) {
    return hosts[static_cast<std::size_t>(id)][static_cast<std::size_t>(shard)]->protocol();
  }

  bool run_until_total(std::size_t per_shard_total, std::size_t max_iters = 5'000'000) {
    auto done = [&] {
      for (auto& tenants : hosts) {
        for (auto& host : tenants) {
          if (host->protocol().total.load(std::memory_order_acquire) < per_shard_total) {
            return false;
          }
        }
      }
      return true;
    };
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
      if (done()) return true;
      bool progressed = false;
      for (auto& node : nodes) progressed = (node->poll() > 0) || progressed;
      progressed = hub.step() || progressed;
      if (!progressed) {
        for (auto& pool : execs) pool->wait_idle();
        for (auto& node : nodes) node->poll();
        hub.tick();
        std::this_thread::yield();
      }
    }
    return done();
  }
};

TEST(ShardedClusterTest, TwoGroupsAgreeIndependentlyOverOneTransport) {
  Rng rng(23);
  const auto deployment = adversary::Deployment::threshold(kN, 1, rng);
  ShardedCluster cluster(deployment, /*executors=*/4);

  for (int s = 0; s < kShards; ++s) {
    for (int i = 0; i < kPerShard; ++i) {
      auto& host = *cluster.hosts[static_cast<std::size_t>((s + i) % kN)][static_cast<std::size_t>(s)];
      host.party().with_instance(shard_tag(s), [&host, s, i] {
        host.protocol().abc->submit(bytes_of("s" + std::to_string(s) + "/p" + std::to_string(i)));
      });
    }
  }
  ASSERT_TRUE(cluster.run_until_total(kPerShard));
  cluster.stop();

  // (a) agreement per group: every node delivers each group's payloads in
  // one order — multiplexing S groups over one link must not leak between
  // their protocol instances.
  for (int s = 0; s < kShards; ++s) {
    const auto& reference = cluster.state(0, s).delivered;
    ASSERT_EQ(reference.size(), static_cast<std::size_t>(kPerShard));
    for (int id = 1; id < kN; ++id) {
      EXPECT_EQ(cluster.state(id, s).delivered, reference)
          << "node " << id << " shard " << s << " disagrees";
    }
    // The two groups carried disjoint payload sets (no cross-delivery).
    for (const Bytes& payload : reference) {
      const std::string text(payload.begin(), payload.end());
      EXPECT_EQ(text.substr(0, 2), "s" + std::to_string(s));
    }
  }

  // (b) per-group WAL replay: each tenant's log restores into a fresh
  // sequential party and reproduces that tenant's sequence exactly.
  for (int s = 0; s < kShards; ++s) {
    const Bytes snapshot = cluster.hosts[0][static_cast<std::size_t>(s)]->snapshot();
    NetworkedNode::Config config;
    config.node_id = 0;
    config.n = kN;
    NetworkedNode replay_node(config);
    HostedParty<ShardState> replay(
        replay_node, 0, deployment, kSeed * 7919 + static_cast<std::uint64_t>(s),
        [s](net::Party& party) {
          party.enable_wal();
          return make_shard_state(party, s);
        });
    replay.restore(snapshot);
    EXPECT_EQ(replay.protocol().delivered, cluster.state(0, s).delivered)
        << "shard " << s << ": WAL replay diverged";
  }

  // (c) the coalescing claim: both groups' payloads rode shared BATCH
  // super-frames.  More payloads than frames means multi-payload frames;
  // one HMAC (and on TCP one sendmsg) covered each frame regardless of
  // how many groups' records it carried.
  const LoopbackHub::Stats wire = cluster.hub.stats();
  EXPECT_GT(wire.batches_sent, 0u);
  EXPECT_GT(wire.coalesced_payloads, wire.batches_sent)
      << "every frame carried a single payload — coalescing never engaged";
  EXPECT_EQ(wire.auth_failures, 0u);
}

// ---- isolation: per-tenant budgets under a flooding peer --------------------

struct CollectorProcess final : public net::Process {
  std::vector<net::Message> messages;
  void on_message(const net::Message& message) override { messages.push_back(message); }
};

Bytes future_payload(std::uint32_t epoch, const std::string& body) {
  net::Message m;
  m.from = 1;
  m.to = 0;
  m.tag = "svc";
  m.payload = bytes_of(body);
  return NetworkedNode::encode_payload(m, epoch);
}

TEST(ShardIsolationTest, FloodingGroupAExhaustsOnlyItsOwnBudget) {
  NetworkedNode::Config config;
  config.node_id = 0;
  config.n = 2;
  config.max_future = 10'000;  // count bound out of the way: budgets decide
  NetworkedNode node(config);

  CollectorProcess process_a;
  CollectorProcess process_b;
  auto& group_a = node.add_group(1);
  auto& group_b = node.add_group(2);
  group_a.attach(process_a);
  group_b.attach(process_b);

  // Distinct budgets, both tight enough that a flood hits the cap fast.
  net::BudgetConfig caps;
  caps.per_peer_cap = 512;
  caps.per_instance_cap = 512;
  caps.total_cap = 512;
  net::ResourceBudget budget_a(caps);
  net::ResourceBudget budget_b(caps);
  group_a.set_budget(&budget_a);
  group_b.set_budget(&budget_b);

  // Byzantine flooder: spray group A with next-epoch traffic until its
  // budget rejects.  Each parked message charges ~payload+tag+16 bytes.
  const auto before = node.stats();
  for (int i = 0; i < 64; ++i) {
    node.on_transport_receive(1, 1, future_payload(1, "flood-" + std::to_string(i)));
  }
  const auto flooded = node.stats();
  EXPECT_GT(flooded.epoch_dropped, before.epoch_dropped) << "flood never hit A's budget";
  EXPECT_GT(flooded.epoch_buffered, before.epoch_buffered);

  // Group B's buffer is metered by B's OWN budget: its future-epoch
  // traffic still parks even though A's allowance is exhausted.
  node.on_transport_receive(1, 2, future_payload(1, "b-parked"));
  const auto after_b = node.stats();
  EXPECT_EQ(after_b.epoch_buffered, flooded.epoch_buffered + 1)
      << "group B was denied buffering by group A's exhaustion";
  EXPECT_EQ(after_b.epoch_dropped, flooded.epoch_dropped);

  // B's parked message replays on B's epoch advance; A's process stays
  // empty until A advances.
  group_b.advance_epoch(1);
  node.poll();
  ASSERT_EQ(process_b.messages.size(), 1u);
  EXPECT_EQ(process_b.messages[0].payload, bytes_of("b-parked"));
  EXPECT_TRUE(process_a.messages.empty());

  // Unknown group ids are counted and dropped — never a crash, and never
  // delivered to some other tenant.
  node.on_transport_receive(1, 77, future_payload(0, "stray"));
  EXPECT_EQ(node.stats().unknown_group, 1u);
  node.poll();
  EXPECT_TRUE(process_a.messages.empty());
  ASSERT_EQ(process_b.messages.size(), 1u);
}

}  // namespace
}  // namespace sintra
