// Active Byzantine attack tests: attackers that HOLD their dealt keys and
// misuse them — replaying shares across instances, forging certificates,
// injecting bogus shares — plus cross-instance domain-separation checks.
// These are the attacks the paper's robustness machinery (NIZK validity
// proofs, statement domain separation, quorum certificates) exists for.
#include <gtest/gtest.h>

#include "app/ca.hpp"
#include "app/client.hpp"
#include "protocols/abba.hpp"
#include "protocols/consistent.hpp"
#include "protocols/harness.hpp"

namespace sintra {
namespace {

using crypto::BigInt;
using crypto::CoinShare;
using crypto::SigShare;

// ---- cross-instance replay (domain separation) ------------------------------

class ReplayTest : public ::testing::Test {
 protected:
  ReplayTest() : rng_(42), deployment_(adversary::Deployment::threshold(4, 1, rng_)) {}
  Rng rng_;
  adversary::Deployment deployment_;
};

TEST_F(ReplayTest, CoinShareBoundToName) {
  // A coin share for instance A replayed into instance B must not verify:
  // the Chaum–Pedersen proof covers the coin base H(name).
  const auto& pk = deployment_.keys->public_keys().coin;
  Bytes name_a = bytes_of("ba/instance-a/coin/1");
  Bytes name_b = bytes_of("ba/instance-b/coin/1");
  auto shares = deployment_.keys->share(0).coin.share(pk, name_a, rng_);
  ASSERT_FALSE(shares.empty());
  EXPECT_TRUE(pk.verify_share(name_a, shares[0]));
  EXPECT_FALSE(pk.verify_share(name_b, shares[0]));
}

TEST_F(ReplayTest, SigShareBoundToStatement) {
  const auto& pk = deployment_.keys->public_keys().cert_sig;
  Bytes stmt_a = bytes_of("abba pre r1 v1 instance-a");
  Bytes stmt_b = bytes_of("abba pre r1 v1 instance-b");
  auto shares = deployment_.keys->share(1).cert_sig.sign(pk, stmt_a, rng_);
  EXPECT_TRUE(pk.verify_share(stmt_a, shares[0]));
  EXPECT_FALSE(pk.verify_share(stmt_b, shares[0]));
}

TEST_F(ReplayTest, CombinedSignatureBoundToStatement) {
  const auto& pk = deployment_.keys->public_keys().cert_sig;
  Bytes stmt_a = bytes_of("statement a");
  std::vector<SigShare> shares;
  for (int p = 0; p < 3; ++p) {
    for (auto& s : deployment_.keys->share(p).cert_sig.sign(pk, stmt_a, rng_)) {
      shares.push_back(s);
    }
  }
  auto sig = pk.combine(stmt_a, shares);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(pk.verify(stmt_a, *sig));
  EXPECT_FALSE(pk.verify(bytes_of("statement b"), *sig));
}

TEST_F(ReplayTest, Tdh2ShareBoundToCiphertext) {
  const auto& pk = deployment_.keys->public_keys().encryption;
  auto ct_a = pk.encrypt(bytes_of("a"), bytes_of("l"), rng_);
  auto ct_b = pk.encrypt(bytes_of("b"), bytes_of("l"), rng_);
  auto shares = deployment_.keys->share(2).decryption.decrypt_shares(pk, ct_a, rng_);
  ASSERT_FALSE(shares.empty());
  EXPECT_TRUE(pk.verify_share(ct_a, shares[0]));
  EXPECT_FALSE(pk.verify_share(ct_b, shares[0]));
}

TEST_F(ReplayTest, SharesAcrossKeySchemesDoNotCrossVerify) {
  // cert_sig and reply_sig are different dealings of different access
  // structures; shares must not cross-verify even on the same statement.
  const auto& cert_pk = deployment_.keys->public_keys().cert_sig;
  const auto& reply_pk = deployment_.keys->public_keys().reply_sig;
  Bytes stmt = bytes_of("same statement");
  auto cert_shares = deployment_.keys->share(0).cert_sig.sign(cert_pk, stmt, rng_);
  EXPECT_FALSE(reply_pk.verify_share(stmt, cert_shares[0]));
}

TEST_F(ReplayTest, ShareFromOtherPartyNotAttributable) {
  // Unit-ownership checks: party 1's share claimed by party 0 is detected
  // because the unit index maps to its true owner.
  const auto& pk = deployment_.keys->public_keys().cert_sig;
  Bytes stmt = bytes_of("ownership");
  auto shares = deployment_.keys->share(1).cert_sig.sign(pk, stmt, rng_);
  EXPECT_EQ(pk.scheme().unit_owner(shares[0].unit), 1);  // not 0
}

// ---- active ABBA attacker with keys -----------------------------------------

/// Byzantine voter: sends pre-votes with garbage certificate shares and
/// fabricated hard justifications for every round it hears about.
class ForgingVoter final : public net::Process {
 public:
  ForgingVoter(net::Simulator& sim, int id, adversary::Deployment deployment,
               std::uint64_t seed)
      : party_(sim, id, std::move(deployment), seed), rng_(seed) {}

  void on_start() override {
    // Round-1 pre-votes with a forged anchor (random BigInt).
    for (int value : {0, 1}) {
      Writer w;
      w.u8(0);  // kPreVote
      w.u32(1);
      w.u8(static_cast<std::uint8_t>(value));
      w.u8(0);  // kJustAnchor
      BigInt::from_bytes(rng_.bytes(32)).encode(w);  // forged anchor signature
      w.u32(0);  // zero shares
      blast(w.take());
    }
    // A forged DECIDE certificate.
    Writer w;
    w.u8(3);  // kDecide
    w.u32(1);
    w.u8(1);
    BigInt::from_bytes(rng_.bytes(32)).encode(w);
    blast(w.take());
  }
  void on_message(const net::Message&) override {}

 private:
  void blast(Bytes payload) {
    for (int to = 0; to < party_.n(); ++to) {
      if (to == party_.id()) continue;
      net::Message m;
      m.from = party_.id();
      m.to = to;
      m.tag = "ba/0";
      m.payload = payload;
      party_.network().submit(std::move(m));
    }
  }

  net::Party party_;
  Rng rng_;
};

struct AbbaState {
  std::unique_ptr<protocols::Abba> abba;
  std::optional<bool> decision;
};

TEST(AbbaAttackTest, ForgedJustificationsRejectedAndAgreementHolds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 5);
    protocols::Cluster<AbbaState> cluster(
        deployment, sched,
        [](net::Party& party, int) {
          auto s = std::make_unique<AbbaState>();
          s->abba = std::make_unique<protocols::Abba>(
              party, "ba/0", [p = s.get()](bool v, int) { p->decision = v; });
          return s;
        },
        0, 0, seed);
    cluster.attach_custom(3, std::make_unique<ForgingVoter>(cluster.simulator(), 3,
                                                            deployment, seed));
    cluster.start();
    // All honest parties propose 1: validity must give 1 despite the
    // attacker's forged 0-votes and forged DECIDE for... 1 (which is
    // invalid anyway and must be rejected on signature grounds).
    cluster.for_each([](int, AbbaState& s) { s.abba->start(true); });
    ASSERT_TRUE(cluster.run_until_all([](AbbaState& s) { return s.decision.has_value(); },
                                      3000000))
        << "seed " << seed;
    cluster.for_each([&](int, AbbaState& s) {
      EXPECT_TRUE(*s.decision) << "validity violated under forging attacker, seed " << seed;
    });
  }
}

/// Replays a victim's recorded pre-vote into a different ABBA instance.
class CrossInstanceReplayer final : public net::Process {
 public:
  explicit CrossInstanceReplayer(net::Simulator& sim, int id) : sim_(sim), id_(id) {}
  void on_message(const net::Message& message) override {
    // Capture traffic for instance A and mirror it into instance B.
    if (message.tag != "ba/A") return;
    net::Message replay = message;
    replay.from = id_;
    replay.tag = "ba/B";
    for (int to = 0; to < sim_.n(); ++to) {
      if (to == id_) continue;
      replay.to = to;
      net::Message copy = replay;
      sim_.submit(std::move(copy));
    }
  }

 private:
  net::Simulator& sim_;
  int id_;
};

struct TwoAbbaState {
  std::unique_ptr<protocols::Abba> a;
  std::unique_ptr<protocols::Abba> b;
  std::optional<bool> decision_a;
  std::optional<bool> decision_b;
};

TEST(AbbaAttackTest, CrossInstanceReplayCannotFlipOutcome) {
  // Instance A decides 1 (all honest input 1); instance B has all honest
  // input 0.  The attacker mirrors A's traffic into B.  Domain separation
  // (the instance tag inside every signed statement and coin name) makes
  // the replayed material worthless: B must still decide 0.
  Rng rng(9);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(9);
  protocols::Cluster<TwoAbbaState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<TwoAbbaState>();
        s->a = std::make_unique<protocols::Abba>(
            party, "ba/A", [p = s.get()](bool v, int) { p->decision_a = v; });
        s->b = std::make_unique<protocols::Abba>(
            party, "ba/B", [p = s.get()](bool v, int) { p->decision_b = v; });
        return s;
      },
      0, 0, 9);
  cluster.attach_custom(3,
                        std::make_unique<CrossInstanceReplayer>(cluster.simulator(), 3));
  cluster.start();
  cluster.for_each([](int, TwoAbbaState& s) {
    s.a->start(true);
    s.b->start(false);
  });
  ASSERT_TRUE(cluster.run_until_all(
      [](TwoAbbaState& s) {
        return s.decision_a.has_value() && s.decision_b.has_value();
      },
      5000000));
  cluster.for_each([](int, TwoAbbaState& s) {
    EXPECT_TRUE(*s.decision_a);
    EXPECT_FALSE(*s.decision_b) << "cross-instance replay flipped the outcome";
  });
}

// ---- well-formed-but-invalid shares vs the optimistic combiner ---------------

/// Holds its dealt certificate key and signs the CORRECT statement, then
/// perturbs the proof response: the share is structurally perfect (right
/// unit, in-range values) and only the deferred batch verification can
/// tell it from an honest one.
class BadCertShareSender final : public net::Process {
 public:
  BadCertShareSender(net::Simulator& sim, int id, adversary::Deployment deployment,
                     Bytes message)
      : sim_(sim), id_(id), deployment_(std::move(deployment)), message_(std::move(message)) {}

  void on_start() override {
    Rng rng(7777);
    const auto& pk = deployment_.keys->public_keys().cert_sig;
    const Bytes stmt = protocols::consistent_statement("cbc/x", message_);
    auto shares = deployment_.keys->share(id_).cert_sig.sign(pk, stmt, rng);
    // Tamper the share VALUE, keeping the honest proof: the combined
    // signature comes out wrong, which is exactly what the optimistic
    // combine-then-verify path must catch.  (Tampering only the proof
    // would be harmless — the value still combines correctly, and the
    // fast path rightly never looks at per-share proofs.)
    for (auto& s : shares) s.value = BigInt::mul_mod(s.value, BigInt(2), pk.modulus());
    Writer w;
    w.u8(1);  // ConsistentBroadcast::kShare
    w.vec(shares, [](Writer& wr, const SigShare& s) { s.encode(wr); });
    net::Message m;
    m.from = id_;
    m.to = 0;  // the designated sender / combiner
    m.tag = "cbc/x";
    m.payload = w.take();
    sim_.submit(std::move(m));
  }
  void on_message(const net::Message&) override {}

 private:
  net::Simulator& sim_;
  int id_;
  adversary::Deployment deployment_;
  Bytes message_;
};

struct CbcState {
  std::unique_ptr<protocols::ConsistentBroadcast> cbc;
  std::optional<Bytes> delivered;
};

TEST(OptimisticCombineAttackTest, CbcFingersInvalidShareAndStillDelivers) {
  // FIFO delivery guarantees the attacker's unsolicited share reaches the
  // sender before any honest share, so the first combine-then-verify
  // attempt provably contains it: the optimistic path must fall back,
  // finger exactly the attacker, and then certify from the honest quorum.
  Rng rng(3);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::FifoScheduler sched;
  const Bytes message = bytes_of("certify me");
  protocols::Cluster<CbcState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<CbcState>();
        s->cbc = std::make_unique<protocols::ConsistentBroadcast>(
            party, "cbc/x", 0,
            [p = s.get()](protocols::CertifiedMessage cm) { p->delivered = cm.message; });
        return s;
      },
      0, 0, 3);
  cluster.attach_custom(3, std::make_unique<BadCertShareSender>(cluster.simulator(), 3,
                                                                deployment, message));
  cluster.start();
  cluster.protocol(0)->cbc->start(message);
  ASSERT_TRUE(cluster.run_until_all(
      [](CbcState& s) { return s.delivered.has_value(); }, 1000000));
  cluster.for_each([&](int, CbcState& s) { EXPECT_EQ(*s.delivered, message); });
  // The combiner fingered exactly the attacker — nobody else.
  EXPECT_EQ(cluster.protocol(0)->cbc->suspected(), crypto::party_bit(3));
}

TEST(OptimisticCombineAttackTest, AbbaCoinFingersInvalidShareAndTerminates) {
  // Sneakiest Byzantine coin strategy: party 3 follows the protocol
  // everywhere EXCEPT that the coin share its peers receive is tampered
  // (real coin key, correct coin name, perturbed DLEQ response).  We model
  // it by running party 3 honestly and pre-injecting the tampered share
  // under its identity; FIFO delivery lands the injected copy first, so
  // the honest copy is deduplicated away at every peer and the bad share
  // provably sits in the round-1 combine set.
  Rng rng(11);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::FifoScheduler sched;
  protocols::Cluster<AbbaState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<AbbaState>();
        s->abba = std::make_unique<protocols::Abba>(
            party, "ba/0", [p = s.get()](bool v, int) { p->decision = v; });
        return s;
      },
      0, 0, 11);
  cluster.start();
  {
    Rng attacker_rng(8888);
    const auto& pk = deployment.keys->public_keys().coin;
    Writer name;  // must match Abba::coin_name(tag="ba/0", round=1)
    name.str("sintra/abba/coin");
    name.str("ba/0");
    name.u32(1);
    auto shares = deployment.keys->share(3).coin.share(pk, name.data(), attacker_rng);
    for (auto& s : shares) s.proof.z = pk.group().scalar_add(s.proof.z, BigInt(1));
    Writer w;
    w.u8(2);  // Abba::kCoinShare
    w.u32(1);
    w.vec(shares, [&](Writer& wr, const CoinShare& s) { s.encode(wr, pk.group()); });
    for (int to = 0; to < 3; ++to) {
      net::Message m;
      m.from = 3;
      m.to = to;
      m.tag = "ba/0";
      m.payload = w.data();
      cluster.simulator().submit(std::move(m));
    }
  }
  // 2-2 input split: round 1 cannot hard-decide, so the coin IS consulted
  // and every party must run the batched combine over a set containing
  // the tampered share.
  std::vector<int> inputs = {1, 0, 1, 0};
  cluster.for_each([&](int id, AbbaState& s) {
    s.abba->start(inputs[static_cast<std::size_t>(id)] == 1);
  });
  ASSERT_TRUE(cluster.run_until_all(
      [](AbbaState& s) { return s.decision.has_value(); }, 3000000));
  std::optional<bool> common;
  crypto::PartySet fingered_union = 0;
  cluster.for_each([&](int id, AbbaState& s) {
    if (!common.has_value()) common = s.decision;
    EXPECT_EQ(*s.decision, *common) << "agreement violated under coin-share attacker";
    // Nobody ever suspects an honest party...
    EXPECT_EQ(s.abba->suspected() & ~crypto::party_bit(3), 0u) << "party " << id;
    fingered_union |= s.abba->suspected();
  });
  // ...and the batched fallback caught the tampered share somewhere.
  EXPECT_EQ(fingered_union, crypto::party_bit(3));
}

// ---- client-facing attacks ---------------------------------------------------

/// Sends the client a reply with ANOTHER party's (stolen? no — replayed)
/// signature shares attached under its own sender id.
class ShareMisattributor final : public net::Process {
 public:
  ShareMisattributor(net::Simulator& sim, int id, adversary::Deployment deployment,
                     std::uint64_t seed)
      : sim_(sim), id_(id), deployment_(std::move(deployment)), rng_(seed) {}

  void on_message(const net::Message& message) override {
    if (message.tag != "svc") return;
    try {
      Reader r(message.payload);
      app::RequestEnvelope envelope = app::RequestEnvelope::decode(r);
      // Craft a denial and sign it with our OWN reply key shares — a real
      // signature on fraudulent content.  The client must outvote it.
      app::CaResponse forged;
      forged.status = app::CaResponse::Status::kDenied;
      Bytes reply = forged.encode();
      const Bytes stmt = app::reply_statement("svc", envelope, reply);
      auto shares = deployment_.keys->share(id_).reply_sig.sign(
          deployment_.keys->public_keys().reply_sig, stmt, rng_);
      Writer w;
      w.u8(app::kReplyOk);
      w.u64(envelope.request_id);
      w.bytes(reply);
      w.vec(shares, [](Writer& wr, const SigShare& s) { s.encode(wr); });
      net::Message out;
      out.from = id_;
      out.to = envelope.client;
      out.tag = "svc/reply";
      out.payload = w.take();
      sim_.submit(std::move(out));
    } catch (const ProtocolError&) {
    }
  }

 private:
  net::Simulator& sim_;
  int id_;
  adversary::Deployment deployment_;
  Rng rng_;
};

struct SvcState {
  std::unique_ptr<app::Replica> replica;
};

TEST(ClientAttackTest, ValidlySignedLieStillOutvoted) {
  // The attacker's reply carries VALID signature shares (it owns the key
  // share) on fraudulent content.  One fault set cannot exceed itself:
  // the client's "beyond one corruptible set" rule keeps waiting for a
  // second voucher for that content, which never comes.
  Rng rng(21);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(21);
  protocols::Cluster<SvcState> cluster(
      deployment, sched,
      [&](net::Party& party, int) {
        auto s = std::make_unique<SvcState>();
        s->replica = std::make_unique<app::Replica>(
            party, "svc", app::Replica::Mode::kAtomic,
            std::make_unique<app::CertificationAuthority>());
        return s;
      },
      0, /*extra_endpoints=*/1, 21);
  cluster.attach_custom(3, std::make_unique<ShareMisattributor>(cluster.simulator(), 3,
                                                                deployment, 33));
  std::map<std::uint64_t, app::ServiceClient::Receipt> replies;
  auto client_owner = std::make_unique<app::ServiceClient>(
      cluster.simulator(), 4, deployment, "svc", app::Replica::Mode::kAtomic, 17,
      [&](std::uint64_t id, app::ServiceClient::Receipt receipt) {
        replies.emplace(id, std::move(receipt));
      });
  app::ServiceClient* client = client_owner.get();
  cluster.attach_client(4, std::move(client_owner));
  cluster.start();

  app::CaRequest issue;
  issue.op = app::CaRequest::Op::kIssue;
  issue.subject = "victim";
  issue.credentials = "credential:victim";
  Bytes body = issue.encode();
  std::uint64_t id = client->request(Bytes(body));
  ASSERT_TRUE(cluster.simulator().run_until([&] { return replies.contains(id); }, 10000000));
  EXPECT_EQ(app::CaResponse::decode(replies.at(id).reply).status,
            app::CaResponse::Status::kOk);
  EXPECT_TRUE(client->verify_receipt(id, body, replies.at(id)));
}

}  // namespace
}  // namespace sintra
