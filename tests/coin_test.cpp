// Threshold coin tests: agreement across disjoint qualified share sets,
// robustness against corrupted shares, unpredictability proxies, and the
// generalized-structure instantiation.
#include <gtest/gtest.h>

#include "adversary/examples.hpp"
#include "crypto/coin.hpp"
#include "crypto/shamir.hpp"

namespace sintra::crypto {
namespace {

class CoinTest : public ::testing::Test {
 protected:
  CoinTest() : rng_(99), deal_(CoinDeal::deal(Group::test_group(),
                                              std::make_shared<ThresholdScheme>(7, 2), rng_)) {}

  std::vector<CoinShare> shares_for(BytesView name, std::initializer_list<int> parties) {
    std::vector<CoinShare> out;
    for (int p : parties) {
      for (auto& s : deal_.secret_keys[static_cast<std::size_t>(p)].share(deal_.public_key,
                                                                          name, rng_)) {
        out.push_back(s);
      }
    }
    return out;
  }

  Rng rng_;
  CoinDeal deal_;
};

TEST_F(CoinTest, SharesVerify) {
  Bytes name = bytes_of("coin-0");
  for (const auto& share : shares_for(name, {0, 1, 2, 3, 4, 5, 6})) {
    EXPECT_TRUE(deal_.public_key.verify_share(name, share));
  }
}

TEST_F(CoinTest, DisjointQualifiedSetsAgree) {
  Bytes name = bytes_of("coin-agree");
  auto a = deal_.public_key.combine(name, shares_for(name, {0, 1, 2}));
  auto b = deal_.public_key.combine(name, shares_for(name, {3, 4, 5}));
  auto c = deal_.public_key.combine(name, shares_for(name, {6, 0, 4}));
  ASSERT_TRUE(a && b && c);
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(*b, *c);
}

TEST_F(CoinTest, UnqualifiedSetFails) {
  Bytes name = bytes_of("coin-few");
  EXPECT_FALSE(deal_.public_key.combine(name, shares_for(name, {0, 1})).has_value());
  EXPECT_FALSE(deal_.public_key.combine(name, {}).has_value());
}

TEST_F(CoinTest, DifferentNamesDifferentCoins) {
  // 32 coins; all equal would mean the oracle is constant — astronomically
  // unlikely for a working implementation.
  std::set<Bytes> values;
  for (int i = 0; i < 32; ++i) {
    Bytes name = bytes_of("coin-" + std::to_string(i));
    auto v = deal_.public_key.combine(name, shares_for(name, {1, 3, 5}));
    ASSERT_TRUE(v.has_value());
    values.insert(*v);
  }
  EXPECT_GT(values.size(), 16u);
}

TEST_F(CoinTest, CoinBitsBalanced) {
  int ones = 0;
  const int total = 200;
  for (int i = 0; i < total; ++i) {
    Bytes name = bytes_of("bit-" + std::to_string(i));
    auto v = deal_.public_key.combine(name, shares_for(name, {0, 2, 4}));
    ASSERT_TRUE(v.has_value());
    if (CoinPublicKey::coin_bit(*v)) ++ones;
  }
  // Fair coin: expect roughly half; allow wide tolerance (5 sigma ~ 35).
  EXPECT_GT(ones, 50);
  EXPECT_LT(ones, 150);
}

TEST_F(CoinTest, CorruptedShareRejected) {
  Bytes name = bytes_of("coin-corrupt");
  auto shares = shares_for(name, {0, 1, 2});
  // Tamper with the value but keep the proof: must fail verification.
  CoinShare bad = shares[0];
  bad.value = deal_.public_key.group().mul(bad.value, deal_.public_key.group().g());
  EXPECT_FALSE(deal_.public_key.verify_share(name, bad));
  // Share for a different coin name replayed here: must fail.
  Bytes other = bytes_of("coin-other");
  auto replay = shares_for(other, {3});
  EXPECT_FALSE(deal_.public_key.verify_share(name, replay[0]));
}

TEST_F(CoinTest, OutOfRangeUnitRejected) {
  Bytes name = bytes_of("coin-unit");
  auto shares = shares_for(name, {0});
  CoinShare bad = shares[0];
  bad.unit = 99;
  EXPECT_FALSE(deal_.public_key.verify_share(name, bad));
}

TEST_F(CoinTest, AdversaryShareViewDoesNotDetermineCoin) {
  // With only t = 2 shares the combine refuses; this is the structural
  // counterpart of unpredictability (the full reduction is DDH).
  Bytes name = bytes_of("coin-secret");
  auto adversary_view = shares_for(name, {5, 6});
  EXPECT_FALSE(deal_.public_key.combine(name, adversary_view).has_value());
}

TEST_F(CoinTest, SerializationRoundTrip) {
  Bytes name = bytes_of("coin-ser");
  auto shares = shares_for(name, {2});
  Writer w;
  shares[0].encode(w, deal_.public_key.group());
  Reader r(w.data());
  CoinShare decoded = CoinShare::decode(r, deal_.public_key.group());
  r.expect_done();
  EXPECT_TRUE(deal_.public_key.verify_share(name, decoded));
}

TEST(CoinGeneralTest, WorksOverExample1Lsss) {
  // Coin over the paper's Example 1 structure: any three servers covering
  // two classes combine; a whole class alone cannot.
  Rng rng(7);
  auto scheme = std::make_shared<adversary::LsssScheme>(adversary::example1_access(), 9);
  CoinDeal deal = CoinDeal::deal(Group::test_group(), scheme, rng);
  Bytes name = bytes_of("general-coin");

  auto collect = [&](std::initializer_list<int> parties) {
    std::vector<CoinShare> out;
    for (int p : parties) {
      for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].share(deal.public_key, name,
                                                                         rng)) {
        EXPECT_TRUE(deal.public_key.verify_share(name, s));
        out.push_back(s);
      }
    }
    return out;
  };

  auto a = deal.public_key.combine(name, collect({0, 4, 8}));   // classes a, b, d
  auto b = deal.public_key.combine(name, collect({5, 6, 7}));   // classes b, c
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, *b);
  // All of class a (four servers, one class): corruptible, must fail.
  EXPECT_FALSE(deal.public_key.combine(name, collect({0, 1, 2, 3})).has_value());
  // Two arbitrary servers: corruptible, must fail.
  EXPECT_FALSE(deal.public_key.combine(name, collect({4, 8})).has_value());
}

}  // namespace
}  // namespace sintra::crypto
