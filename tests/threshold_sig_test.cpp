// Threshold RSA signature tests (Shoup's scheme): share validity,
// combination, robustness, dual thresholds, and the generalized-structure
// instantiation used for protocol certificates.
#include <gtest/gtest.h>

#include "adversary/examples.hpp"
#include "crypto/shamir.hpp"
#include "crypto/threshold_sig.hpp"

namespace sintra::crypto {
namespace {

class ThresholdSigTest : public ::testing::Test {
 protected:
  ThresholdSigTest()
      : rng_(123),
        deal_(ThresholdSigDeal::deal(RsaParams::precomputed(128),
                                     std::make_shared<ThresholdScheme>(5, 1), rng_)) {}

  std::vector<SigShare> shares_for(BytesView message, std::initializer_list<int> parties) {
    std::vector<SigShare> out;
    for (int p : parties) {
      for (auto& s : deal_.secret_keys[static_cast<std::size_t>(p)].sign(deal_.public_key,
                                                                         message, rng_)) {
        out.push_back(s);
      }
    }
    return out;
  }

  Rng rng_;
  ThresholdSigDeal deal_;
};

TEST_F(ThresholdSigTest, PrecomputedParamsAreSafePrimes) {
  Rng rng(1);
  for (int bits : {128, 256, 512}) {
    RsaParams params = RsaParams::precomputed(bits);
    EXPECT_TRUE(params.p.is_probable_prime(rng));
    EXPECT_TRUE(params.q.is_probable_prime(rng));
    EXPECT_TRUE(((params.p - BigInt(1)).shifted_right(1)).is_probable_prime(rng));
    EXPECT_TRUE(((params.q - BigInt(1)).shifted_right(1)).is_probable_prime(rng));
    EXPECT_EQ(params.p.bit_length(), static_cast<std::size_t>(bits));
  }
  EXPECT_THROW(RsaParams::precomputed(100), ProtocolError);
}

TEST_F(ThresholdSigTest, SharesVerify) {
  Bytes message = bytes_of("sign me");
  for (const auto& share : shares_for(message, {0, 1, 2, 3, 4})) {
    EXPECT_TRUE(deal_.public_key.verify_share(message, share));
  }
}

TEST_F(ThresholdSigTest, CombineAndVerify) {
  Bytes message = bytes_of("attack at dawn");
  auto sig = deal_.public_key.combine(message, shares_for(message, {0, 1}));
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(deal_.public_key.verify(message, *sig));
  EXPECT_FALSE(deal_.public_key.verify(bytes_of("attack at dusk"), *sig));
}

TEST_F(ThresholdSigTest, DisjointSubsetsProduceVerifyingSignatures) {
  Bytes message = bytes_of("consistent");
  auto a = deal_.public_key.combine(message, shares_for(message, {0, 1}));
  auto b = deal_.public_key.combine(message, shares_for(message, {2, 3}));
  ASSERT_TRUE(a && b);
  EXPECT_TRUE(deal_.public_key.verify(message, *a));
  EXPECT_TRUE(deal_.public_key.verify(message, *b));
  // RSA signatures are unique: both subsets yield the same signature.
  EXPECT_EQ(*a, *b);
}

TEST_F(ThresholdSigTest, UnqualifiedSetFails) {
  Bytes message = bytes_of("too few");
  EXPECT_FALSE(deal_.public_key.combine(message, shares_for(message, {0})).has_value());
}

TEST_F(ThresholdSigTest, TamperedShareValueRejected) {
  Bytes message = bytes_of("robust");
  auto shares = shares_for(message, {0, 1});
  SigShare bad = shares[0];
  bad.value = BigInt::mul_mod(bad.value, BigInt(2), deal_.public_key.modulus());
  EXPECT_FALSE(deal_.public_key.verify_share(message, bad));
}

TEST_F(ThresholdSigTest, ShareForOtherMessageRejected) {
  Bytes m1 = bytes_of("message one");
  Bytes m2 = bytes_of("message two");
  auto shares = shares_for(m1, {2});
  EXPECT_FALSE(deal_.public_key.verify_share(m2, shares[0]));
}

TEST_F(ThresholdSigTest, OversizedProofFieldsRejected) {
  Bytes message = bytes_of("bounds");
  auto shares = shares_for(message, {0});
  SigShare bad = shares[0];
  bad.a1 = deal_.public_key.modulus() + BigInt(1);  // commitment out of range
  EXPECT_FALSE(deal_.public_key.verify_share(message, bad));
  SigShare bad2 = shares[0];
  bad2.response = BigInt(1).shifted_left(4096);
  EXPECT_FALSE(deal_.public_key.verify_share(message, bad2));
  SigShare bad3 = shares[0];
  bad3.unit = 77;
  EXPECT_FALSE(deal_.public_key.verify_share(message, bad3));
  SigShare bad4 = shares[0];
  bad4.a2 = BigInt(0);
  EXPECT_FALSE(deal_.public_key.verify_share(message, bad4));
}

TEST_F(ThresholdSigTest, ForgedSignatureRejected) {
  Bytes message = bytes_of("forge me");
  EXPECT_FALSE(deal_.public_key.verify(message, BigInt(12345)));
  EXPECT_FALSE(deal_.public_key.verify(message, BigInt(0)));
  EXPECT_FALSE(deal_.public_key.verify(message, deal_.public_key.modulus()));
}

TEST_F(ThresholdSigTest, SerializationRoundTrip) {
  Bytes message = bytes_of("serialize");
  auto shares = shares_for(message, {3});
  Writer w;
  shares[0].encode(w);
  Reader r(w.data());
  SigShare decoded = SigShare::decode(r);
  r.expect_done();
  EXPECT_TRUE(deal_.public_key.verify_share(message, decoded));
}

TEST(ThresholdSigDualTest, HighThresholdScheme) {
  // The certificate key uses the n−t threshold: with n = 7, t = 2 any 5
  // combine and 4 do not — the quorum-certificate semantics of the stack.
  Rng rng(5);
  auto deal = ThresholdSigDeal::deal(RsaParams::precomputed(128),
                                     std::make_shared<ThresholdScheme>(7, 4), rng);
  Bytes message = bytes_of("quorum cert");
  std::vector<SigShare> shares;
  for (int p = 0; p < 5; ++p) {
    for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].sign(deal.public_key, message,
                                                                      rng)) {
      shares.push_back(s);
    }
  }
  std::vector<SigShare> four(shares.begin(), shares.begin() + 4);
  EXPECT_FALSE(deal.public_key.combine(message, four).has_value());
  auto sig = deal.public_key.combine(message, shares);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(deal.public_key.verify(message, *sig));
}

TEST(ThresholdSigGeneralTest, WorksOverExample1QuorumLsss) {
  // Certificate signatures over the generalized quorum structure of
  // Example 1: P ∖ S for S ∈ A* qualifies, a corruptible set does not.
  Rng rng(9);
  auto structure = adversary::example1_access().to_adversary_structure(9);
  auto scheme = std::make_shared<adversary::LsssScheme>(
      adversary::Formula::quorum_formula(structure), 9);
  auto deal = ThresholdSigDeal::deal(RsaParams::precomputed(128), scheme, rng);
  Bytes message = bytes_of("general cert");

  auto sign_set = [&](std::vector<int> parties) {
    std::vector<SigShare> out;
    for (int p : parties) {
      for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].sign(deal.public_key,
                                                                        message, rng)) {
        EXPECT_TRUE(deal.public_key.verify_share(message, s));
        out.push_back(s);
      }
    }
    return out;
  };

  // Complement of the class-a set {0,1,2,3}: a legitimate quorum.
  auto sig = deal.public_key.combine(message, sign_set({4, 5, 6, 7, 8}));
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(deal.public_key.verify(message, *sig));
  // Complement of a pair: also a quorum.
  auto sig2 = deal.public_key.combine(message, sign_set({0, 1, 2, 3, 6, 7, 8}));
  ASSERT_TRUE(sig2.has_value());
  EXPECT_EQ(*sig, *sig2);  // RSA uniqueness across recombination sets
  // The class-a set itself: corruptible, cannot certify.
  EXPECT_FALSE(deal.public_key.combine(message, sign_set({0, 1, 2, 3})).has_value());
}

TEST(ThresholdSigGenerateTest, FreshSafePrimesWork) {
  // End-to-end with generated (small) safe primes instead of precomputed.
  Rng rng(17);
  RsaParams params = RsaParams::generate(rng, 96);
  auto deal =
      ThresholdSigDeal::deal(params, std::make_shared<ThresholdScheme>(4, 1), rng);
  Bytes message = bytes_of("fresh params");
  std::vector<SigShare> shares;
  for (int p = 0; p < 2; ++p) {
    for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].sign(deal.public_key, message,
                                                                      rng)) {
      shares.push_back(s);
    }
  }
  auto sig = deal.public_key.combine(message, shares);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(deal.public_key.verify(message, *sig));
}

}  // namespace
}  // namespace sintra::crypto
