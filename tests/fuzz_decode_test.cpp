// Decoder robustness: every wire-format decoder in the system must reject
// malformed input with ProtocolError — never crash, hang, or silently
// accept — because every decoder is reachable from Byzantine peers.
// Seeded pseudo-random fuzzing plus targeted truncation sweeps.
#include <gtest/gtest.h>

#include "app/ca.hpp"
#include "app/directory.hpp"
#include "app/notary.hpp"
#include "crypto/coin.hpp"
#include "crypto/tdh2.hpp"
#include "crypto/shamir.hpp"
#include "crypto/threshold_sig.hpp"
#include "protocols/consistent.hpp"

namespace sintra {
namespace {

using crypto::Group;

/// Run `decode` over pseudo-random buffers; it must either succeed or
/// throw ProtocolError.  Anything else (crash, other exception) fails.
template <typename Fn>
void fuzz(Fn&& decode, std::uint64_t seed, int iterations = 300) {
  Rng rng(seed);
  for (int i = 0; i < iterations; ++i) {
    Bytes buffer = rng.bytes(rng.below(200));
    try {
      decode(buffer);
    } catch (const ProtocolError&) {
      // expected for garbage
    }
  }
}

/// Run `decode` over every truncation of a VALID encoding; all strict
/// prefixes must throw (no silent partial parse).
template <typename Fn>
void truncation_sweep(const Bytes& valid, Fn&& decode) {
  for (std::size_t len = 0; len < valid.size(); ++len) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(decode(truncated), ProtocolError) << "prefix length " << len;
  }
  EXPECT_NO_THROW(decode(valid));
}

TEST(FuzzTest, BigIntDecode) {
  fuzz([](const Bytes& b) {
    Reader r(b);
    auto v = crypto::BigInt::decode(r);
    r.expect_done();
    (void)v;
  }, 1);
}

TEST(FuzzTest, CoinShareDecode) {
  auto group = Group::test_group();
  fuzz([&](const Bytes& b) {
    Reader r(b);
    auto s = crypto::CoinShare::decode(r, *group);
    r.expect_done();
    (void)s;
  }, 2);
}

TEST(FuzzTest, CoinShareTruncation) {
  Rng rng(3);
  auto deal = crypto::CoinDeal::deal(Group::test_group(),
                                     std::make_shared<crypto::ThresholdScheme>(4, 1), rng);
  auto shares = deal.secret_keys[0].share(deal.public_key, bytes_of("n"), rng);
  Writer w;
  shares[0].encode(w, deal.public_key.group());
  truncation_sweep(w.data(), [&](const Bytes& b) {
    Reader r(b);
    crypto::CoinShare::decode(r, deal.public_key.group());
    r.expect_done();
  });
}

TEST(FuzzTest, SigShareDecode) {
  fuzz([](const Bytes& b) {
    Reader r(b);
    auto s = crypto::SigShare::decode(r);
    r.expect_done();
    (void)s;
  }, 4);
}

TEST(FuzzTest, Tdh2CiphertextDecode) {
  auto group = Group::test_group();
  fuzz([&](const Bytes& b) {
    Reader r(b);
    auto ct = crypto::Tdh2Ciphertext::decode(r, *group);
    r.expect_done();
    (void)ct;
  }, 5);
}

TEST(FuzzTest, Tdh2CiphertextTruncation) {
  Rng rng(6);
  auto deal = crypto::Tdh2Deal::deal(Group::test_group(),
                                     std::make_shared<crypto::ThresholdScheme>(4, 1), rng);
  auto ct = deal.public_key.encrypt(bytes_of("msg"), bytes_of("l"), rng);
  Writer w;
  ct.encode(w, deal.public_key.group());
  truncation_sweep(w.data(), [&](const Bytes& b) {
    Reader r(b);
    crypto::Tdh2Ciphertext::decode(r, deal.public_key.group());
    r.expect_done();
  });
}

TEST(FuzzTest, Tdh2DecShareDecode) {
  auto group = Group::test_group();
  fuzz([&](const Bytes& b) {
    Reader r(b);
    auto s = crypto::Tdh2DecShare::decode(r, *group);
    r.expect_done();
    (void)s;
  }, 7);
}

TEST(FuzzTest, CertifiedMessageDecode) {
  fuzz([](const Bytes& b) {
    Reader r(b);
    auto cm = protocols::CertifiedMessage::decode(r);
    r.expect_done();
    (void)cm;
  }, 8);
}

TEST(FuzzTest, ServiceRequestDecoders) {
  fuzz([](const Bytes& b) { app::CaRequest::decode(b); }, 9);
  fuzz([](const Bytes& b) { app::CaResponse::decode(b); }, 10);
  fuzz([](const Bytes& b) { app::DirRequest::decode(b); }, 11);
  fuzz([](const Bytes& b) { app::DirResponse::decode(b); }, 12);
  fuzz([](const Bytes& b) { app::NotaryRequest::decode(b); }, 13);
  fuzz([](const Bytes& b) { app::NotaryResponse::decode(b); }, 14);
}

TEST(FuzzTest, StateMachinesNeverThrowOnGarbage) {
  // execute() must be total: garbage requests produce error *responses*
  // (the replicas must stay deterministic and alive).
  Rng rng(15);
  app::CertificationAuthority ca;
  app::SecureDirectory dir;
  app::Notary notary;
  for (int i = 0; i < 200; ++i) {
    Bytes garbage = rng.bytes(rng.below(100));
    EXPECT_NO_THROW(ca.execute(garbage));
    EXPECT_NO_THROW(dir.execute(garbage));
    EXPECT_NO_THROW(notary.execute(garbage));
  }
}

TEST(FuzzTest, GroupElementDecodeRejectsRandomBytes) {
  // A random p-sized buffer is almost never in the order-q subgroup; the
  // decoder must reject, not accept-and-corrupt.
  auto group = Group::test_group();
  Rng rng(16);
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    Bytes buffer = rng.bytes(group->element_bytes());
    try {
      Reader r(buffer);
      group->decode_element(r);
      ++accepted;
    } catch (const ProtocolError&) {
    }
  }
  // Subgroup density is q/p ~ 2^-128: zero acceptances expected.
  EXPECT_EQ(accepted, 0);
}

}  // namespace
}  // namespace sintra
