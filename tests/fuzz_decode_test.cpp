// Decoder robustness: every wire-format decoder in the system must reject
// malformed input with ProtocolError — never crash, hang, or silently
// accept — because every decoder is reachable from Byzantine peers.
// Seeded pseudo-random fuzzing plus targeted truncation sweeps.
#include <gtest/gtest.h>

#include "app/ca.hpp"
#include "app/directory.hpp"
#include "app/notary.hpp"
#include "common/work_pool.hpp"
#include "crypto/batch.hpp"
#include "crypto/coin.hpp"
#include "crypto/tdh2.hpp"
#include "crypto/shamir.hpp"
#include "crypto/threshold_sig.hpp"
#include "net/transport/framing.hpp"
#include "net/transport/link.hpp"
#include "net/transport/networked_node.hpp"
#include "protocols/abba.hpp"
#include "protocols/broadcast.hpp"
#include "protocols/consistent.hpp"
#include "protocols/harness.hpp"
#include "protocols/reconfig.hpp"
#include "protocols/vba.hpp"

namespace sintra {
namespace {

using crypto::Group;

/// Run `decode` over pseudo-random buffers; it must either succeed or
/// throw ProtocolError.  Anything else (crash, other exception) fails.
template <typename Fn>
void fuzz(Fn&& decode, std::uint64_t seed, int iterations = 300) {
  Rng rng(seed);
  for (int i = 0; i < iterations; ++i) {
    Bytes buffer = rng.bytes(rng.below(200));
    try {
      decode(buffer);
    } catch (const ProtocolError&) {
      // expected for garbage
    }
  }
}

/// Run `decode` over every truncation of a VALID encoding; all strict
/// prefixes must throw (no silent partial parse).
template <typename Fn>
void truncation_sweep(const Bytes& valid, Fn&& decode) {
  for (std::size_t len = 0; len < valid.size(); ++len) {
    Bytes truncated(valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW(decode(truncated), ProtocolError) << "prefix length " << len;
  }
  EXPECT_NO_THROW(decode(valid));
}

TEST(FuzzTest, BigIntDecode) {
  fuzz([](const Bytes& b) {
    Reader r(b);
    auto v = crypto::BigInt::decode(r);
    r.expect_done();
    (void)v;
  }, 1);
}

TEST(FuzzTest, CoinShareDecode) {
  auto group = Group::test_group();
  fuzz([&](const Bytes& b) {
    Reader r(b);
    auto s = crypto::CoinShare::decode(r, *group);
    r.expect_done();
    (void)s;
  }, 2);
}

TEST(FuzzTest, CoinShareTruncation) {
  Rng rng(3);
  auto deal = crypto::CoinDeal::deal(Group::test_group(),
                                     std::make_shared<crypto::ThresholdScheme>(4, 1), rng);
  auto shares = deal.secret_keys[0].share(deal.public_key, bytes_of("n"), rng);
  Writer w;
  shares[0].encode(w, deal.public_key.group());
  truncation_sweep(w.data(), [&](const Bytes& b) {
    Reader r(b);
    crypto::CoinShare::decode(r, deal.public_key.group());
    r.expect_done();
  });
}

TEST(FuzzTest, SigShareDecode) {
  fuzz([](const Bytes& b) {
    Reader r(b);
    auto s = crypto::SigShare::decode(r);
    r.expect_done();
    (void)s;
  }, 4);
}

TEST(FuzzTest, Tdh2CiphertextDecode) {
  auto group = Group::test_group();
  fuzz([&](const Bytes& b) {
    Reader r(b);
    auto ct = crypto::Tdh2Ciphertext::decode(r, *group);
    r.expect_done();
    (void)ct;
  }, 5);
}

TEST(FuzzTest, Tdh2CiphertextTruncation) {
  Rng rng(6);
  auto deal = crypto::Tdh2Deal::deal(Group::test_group(),
                                     std::make_shared<crypto::ThresholdScheme>(4, 1), rng);
  auto ct = deal.public_key.encrypt(bytes_of("msg"), bytes_of("l"), rng);
  Writer w;
  ct.encode(w, deal.public_key.group());
  truncation_sweep(w.data(), [&](const Bytes& b) {
    Reader r(b);
    crypto::Tdh2Ciphertext::decode(r, deal.public_key.group());
    r.expect_done();
  });
}

TEST(FuzzTest, Tdh2DecShareDecode) {
  auto group = Group::test_group();
  fuzz([&](const Bytes& b) {
    Reader r(b);
    auto s = crypto::Tdh2DecShare::decode(r, *group);
    r.expect_done();
    (void)s;
  }, 7);
}

TEST(FuzzTest, CertifiedMessageDecode) {
  fuzz([](const Bytes& b) {
    Reader r(b);
    auto cm = protocols::CertifiedMessage::decode(r);
    r.expect_done();
    (void)cm;
  }, 8);
}

TEST(FuzzTest, ServiceRequestDecoders) {
  fuzz([](const Bytes& b) { app::CaRequest::decode(b); }, 9);
  fuzz([](const Bytes& b) { app::CaResponse::decode(b); }, 10);
  fuzz([](const Bytes& b) { app::DirRequest::decode(b); }, 11);
  fuzz([](const Bytes& b) { app::DirResponse::decode(b); }, 12);
  fuzz([](const Bytes& b) { app::NotaryRequest::decode(b); }, 13);
  fuzz([](const Bytes& b) { app::NotaryResponse::decode(b); }, 14);
}

TEST(FuzzTest, StateMachinesNeverThrowOnGarbage) {
  // execute() must be total: garbage requests produce error *responses*
  // (the replicas must stay deterministic and alive).
  Rng rng(15);
  app::CertificationAuthority ca;
  app::SecureDirectory dir;
  app::Notary notary;
  for (int i = 0; i < 200; ++i) {
    Bytes garbage = rng.bytes(rng.below(100));
    EXPECT_NO_THROW(ca.execute(garbage));
    EXPECT_NO_THROW(dir.execute(garbage));
    EXPECT_NO_THROW(notary.execute(garbage));
  }
}

// ---- Captured-traffic mutation (issue 2) -------------------------------
//
// Random-buffer fuzzing rarely reaches past the first length prefix.  A
// network adversary replays *real* traffic — duplicated, truncated, and
// re-ordered copies of messages it has seen.  These tests capture a
// genuine protocol run, mutate every captured message, feed the result
// into every party's handlers, and assert that nothing crashes (malformed
// input must surface as ProtocolError, which Party swallows) and that the
// protocol still completes correctly afterwards (no state corruption).

/// Scheduler wrapper recording every message it releases for delivery.
class CapturingScheduler final : public net::Scheduler {
 public:
  CapturingScheduler(net::Scheduler& inner, std::vector<net::Message>& out)
      : inner_(inner), out_(out) {}

  std::optional<std::size_t> pick(const std::vector<net::Message>& pending,
                                  std::uint64_t now) override {
    auto choice = inner_.pick(pending, now);
    if (choice.has_value()) out_.push_back(pending[*choice]);
    return choice;
  }

 private:
  net::Scheduler& inner_;
  std::vector<net::Message>& out_;
};

/// Feed duplicated, truncated, and re-ordered copies of the captured
/// traffic to every honest party of `cluster`.  Everything goes through
/// Party::on_message — exactly the code path network input takes.
template <typename State>
void replay_mutated(protocols::Cluster<State>& cluster,
                    const std::vector<net::Message>& captured) {
  for (int id = 0; id < cluster.n(); ++id) {
    net::Party* party = cluster.party(id);
    if (party == nullptr) continue;
    // Re-ordered: newest first.  Each message delivered twice (duplicate)
    // plus several truncations of its payload.
    for (auto it = captured.rbegin(); it != captured.rend(); ++it) {
      net::Message m = *it;
      m.to = id;
      ASSERT_NO_THROW(party->on_message(m)) << "tag " << m.tag;
      ASSERT_NO_THROW(party->on_message(m)) << "duplicate, tag " << m.tag;
      for (std::size_t len : {std::size_t{0}, m.payload.size() / 2,
                              m.payload.size() == 0 ? std::size_t{0} : m.payload.size() - 1}) {
        net::Message truncated = m;
        truncated.payload.resize(len);
        ASSERT_NO_THROW(party->on_message(truncated))
            << "truncated to " << len << ", tag " << m.tag;
      }
    }
  }
}

TEST(FuzzTest, MutatedCapturedRbcTraffic) {
  Rng rng(42);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  struct Holder {
    std::unique_ptr<protocols::ReliableBroadcast> rbc;
    std::optional<Bytes> delivered;
  };
  auto factory = [](net::Party& party, int) {
    auto holder = std::make_unique<Holder>();
    holder->rbc = std::make_unique<protocols::ReliableBroadcast>(
        party, "rbc/0", 0, [h = holder.get()](Bytes m) { h->delivered = std::move(m); });
    return holder;
  };

  std::vector<net::Message> captured;
  {
    net::RandomScheduler base(7);
    CapturingScheduler sched(base, captured);
    protocols::Cluster<Holder> cluster(deployment, sched, factory);
    cluster.start();
    cluster.protocol(0)->rbc->start(bytes_of("capture"));
    ASSERT_TRUE(cluster.run_until_all(
        [](Holder& h) { return h.delivered.has_value(); }, 100000));
  }
  ASSERT_FALSE(captured.empty());

  net::RandomScheduler sched(8);
  protocols::Cluster<Holder> cluster(deployment, sched, factory);
  cluster.start();
  replay_mutated(cluster, captured);
  // No corruption: the instance still reaches (or already reached, since
  // the replayed traffic is genuinely valid) agreement on the payload.
  cluster.protocol(0)->rbc->start(bytes_of("capture"));
  ASSERT_TRUE(cluster.run_until_all(
      [](Holder& h) { return h.delivered.has_value(); }, 100000));
  cluster.for_each([](int, Holder& h) { EXPECT_EQ(*h.delivered, bytes_of("capture")); });
}

TEST(FuzzTest, MutatedCapturedAbbaAndVbaTraffic) {
  Rng rng(43);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  struct Holder {
    std::unique_ptr<protocols::Abba> abba;
    std::unique_ptr<protocols::Vba> vba;
    std::optional<bool> abba_decision;
    std::optional<Bytes> vba_decision;
  };
  auto factory = [](net::Party& party, int) {
    auto holder = std::make_unique<Holder>();
    holder->abba = std::make_unique<protocols::Abba>(
        party, "ba/0", [h = holder.get()](bool v, int) { h->abba_decision = v; });
    holder->vba = std::make_unique<protocols::Vba>(
        party, "vba/0", [](BytesView) { return true; },
        [h = holder.get()](Bytes v) { h->vba_decision = std::move(v); });
    return holder;
  };
  auto start_all = [](protocols::Cluster<Holder>& cluster) {
    cluster.for_each([](int id, Holder& h) {
      h.abba->start(id % 2 == 0);
      h.vba->propose(bytes_of("v" + std::to_string(id)));
    });
  };
  auto done = [](Holder& h) {
    return h.abba_decision.has_value() && h.vba_decision.has_value();
  };

  std::vector<net::Message> captured;
  {
    net::RandomScheduler base(9);
    CapturingScheduler sched(base, captured);
    protocols::Cluster<Holder> cluster(deployment, sched, factory);
    cluster.start();
    start_all(cluster);
    ASSERT_TRUE(cluster.run_until_all(done, 3000000));
  }
  ASSERT_FALSE(captured.empty());

  // The capture covers ABBA's vote/coin handlers plus VBA's consistent-
  // broadcast, vote, and fetch handlers — replay it mutated into all of
  // them, then check both protocols still complete and agree.
  net::RandomScheduler sched(10);
  protocols::Cluster<Holder> cluster(deployment, sched, factory);
  cluster.start();
  replay_mutated(cluster, captured);
  start_all(cluster);
  ASSERT_TRUE(cluster.run_until_all(done, 3000000));
  std::optional<bool> abba_common;
  std::optional<Bytes> vba_common;
  cluster.for_each([&](int, Holder& h) {
    if (!abba_common.has_value()) abba_common = h.abba_decision;
    if (!vba_common.has_value()) vba_common = h.vba_decision;
    EXPECT_EQ(*h.abba_decision, *abba_common) << "abba agreement corrupted";
    EXPECT_EQ(*h.vba_decision, *vba_common) << "vba agreement corrupted";
  });
}

// ---- batch-verifier inputs (issue 5) -----------------------------------
//
// The batch verifiers sit behind the deferred-verification pipeline, so
// they see whatever share sets the structural admission checks let
// through — including sets a Byzantine peer shaped to be truncated
// (below threshold), duplicated (same unit twice), or numerically
// garbage.  The contract: every such set either produces a result or
// throws ProtocolError; through the pool, nothing may crash or wedge.

/// Malformed input must surface as a result or ProtocolError — never a
/// crash, another exception type, or a hang.
template <typename Fn>
void expect_total(Fn&& fn, const char* what) {
  try {
    fn();
  } catch (const ProtocolError&) {
    // fine: rejected explicitly
  } catch (...) {
    ADD_FAILURE() << what << ": non-ProtocolError exception escaped";
  }
}

TEST(FuzzTest, BatchVerifiersSurviveTruncatedAndDuplicatedShareSets) {
  Rng rng(17);
  auto scheme = std::make_shared<crypto::ThresholdScheme>(4, 1);

  auto coin = crypto::CoinDeal::deal(Group::test_group(), scheme, rng);
  Bytes name = bytes_of("fuzz");
  std::vector<crypto::CoinShare> coin_shares;
  for (int p = 0; p < 3; ++p) {
    for (auto& s : coin.secret_keys[static_cast<std::size_t>(p)].share(coin.public_key, name,
                                                                       rng)) {
      coin_shares.push_back(s);
    }
  }

  auto sig = crypto::ThresholdSigDeal::deal(crypto::RsaParams::precomputed(128), scheme, rng);
  Bytes message = bytes_of("fuzz sign");
  std::vector<crypto::SigShare> sig_shares;
  for (int p = 0; p < 3; ++p) {
    for (auto& s : sig.secret_keys[static_cast<std::size_t>(p)].sign(sig.public_key, message,
                                                                     rng)) {
      sig_shares.push_back(s);
    }
  }

  // Truncated below threshold, duplicated units, empty, and zeroed values:
  // every variant must yield a result or a ProtocolError.
  auto coin_variants = [&](std::vector<crypto::CoinShare> v) {
    expect_total([&] { (void)crypto::batch::verify_coin_shares(coin.public_key, name, v, rng); },
                 "verify_coin_shares");
    expect_total(
        [&] { (void)crypto::batch::find_invalid_coin_shares(coin.public_key, name, v, rng); },
        "find_invalid_coin_shares");
    expect_total(
        [&] { (void)crypto::batch::combine_coin_optimistic(coin.public_key, name, v, rng); },
        "combine_coin_optimistic");
  };
  auto sig_variants = [&](std::vector<crypto::SigShare> v) {
    expect_total(
        [&] { (void)crypto::batch::verify_sig_shares(sig.public_key, message, v, rng); },
        "verify_sig_shares");
    expect_total(
        [&] { (void)crypto::batch::find_invalid_sig_shares(sig.public_key, message, v, rng); },
        "find_invalid_sig_shares");
    expect_total(
        [&] { (void)crypto::batch::combine_sig_optimistic(sig.public_key, message, v, rng); },
        "combine_sig_optimistic");
  };

  coin_variants({});
  sig_variants({});
  coin_variants({coin_shares[0]});                                   // below threshold
  sig_variants({sig_shares[0]});
  coin_variants({coin_shares[0], coin_shares[0], coin_shares[0]});   // duplicated unit
  sig_variants({sig_shares[0], sig_shares[0], sig_shares[0]});
  {
    auto zeroed = coin_shares;
    for (auto& s : zeroed) s.value = coin.public_key.group().identity();
    coin_variants(zeroed);
  }
  {
    auto zeroed = sig_shares;
    for (auto& s : zeroed) s.value = crypto::BigInt(0);
    sig_variants(zeroed);
  }
}

TEST(FuzzTest, MalformedBatchesNeverWedgeTheWorkPool) {
  // The protocol wiring runs combines as pool jobs; a malformed set must
  // come back as a verdict (possibly the empty-Bytes failure verdict),
  // and the pool must keep serving afterwards — in both sequential and
  // threaded mode.
  Rng rng(18);
  auto scheme = std::make_shared<crypto::ThresholdScheme>(4, 1);
  auto sig = crypto::ThresholdSigDeal::deal(crypto::RsaParams::precomputed(128), scheme, rng);
  Bytes message = bytes_of("fuzz sign");
  std::vector<crypto::SigShare> dup;
  for (auto& s : sig.secret_keys[0].sign(sig.public_key, message, rng)) {
    dup.push_back(s);
    dup.push_back(s);  // duplicated unit
  }
  for (std::size_t threads : {std::size_t{0}, std::size_t{2}}) {
    common::WorkPool pool(threads);
    int completions = 0;
    for (int i = 0; i < 8; ++i) {
      pool.submit(
          [&, i]() -> Bytes {
            Rng job_rng(static_cast<std::uint64_t>(i) + 100);
            auto result =
                crypto::batch::combine_sig_optimistic(sig.public_key, message, dup, job_rng);
            Writer w;
            w.u8(result.signature.has_value() ? 1 : 0);
            return w.take();
          },
          [&](Bytes) { ++completions; });
    }
    pool.wait_idle();
    EXPECT_EQ(completions, 8) << "threads=" << threads;
    // Still alive for honest work.
    bool ok = false;
    pool.submit([] { return bytes_of("ok"); }, [&](Bytes b) { ok = (b == bytes_of("ok")); });
    pool.wait_idle();
    EXPECT_TRUE(ok) << "threads=" << threads;
  }
}

// ---- coalesced BATCH super-frames (issue 7) ----------------------------
//
// The BATCH body is the newest decoder a Byzantine peer can reach: it
// carries a count and nested length-prefixed payloads, the classic shape
// for over-read and over-allocation bugs.  Fuzz both the owning and the
// zero-copy decoder, sweep truncations of a valid batch, and drive
// duplicated/reordered super-frames through the authenticated decoder and
// a ReliableLink to confirm the exactly-once contract survives them.

TEST(FuzzTest, BatchBodyDecodersSurviveFuzzAndTruncation) {
  using net::transport::DataBatchBody;
  using net::transport::DataBatchView;
  fuzz([](const Bytes& b) {
    Reader r(b);
    auto batch = DataBatchBody::decode(r);
    (void)batch;
  }, 27);
  fuzz([](const Bytes& b) {
    auto view = DataBatchView::decode(b);
    (void)view;
  }, 28);

  DataBatchBody batch;
  batch.ack = 3;
  batch.base = 1;
  batch.records.push_back({1, 0, bytes_of("alpha")});
  batch.records.push_back({2, 0, Bytes{}});
  batch.records.push_back({3, 0, bytes_of("gamma")});
  const Bytes valid = batch.encode();
  truncation_sweep(valid, [](const Bytes& b) {
    Reader r(b);
    (void)DataBatchBody::decode(r);
  });
  truncation_sweep(valid, [](const Bytes& b) { (void)DataBatchView::decode(b); });
}

TEST(FuzzTest, DuplicatedAndReorderedBatchFramesDeliverExactlyOnce) {
  using net::transport::DataBatchBody;
  using net::transport::DataBatchView;
  using net::transport::FrameDecoder;
  using net::transport::FrameType;
  using net::transport::ReliableLink;
  const Bytes key(32, 0x6b);

  // Two super-frames carrying seqs 0..2 and 3..5.
  auto make_wire = [&](std::uint64_t first, std::uint64_t count) {
    DataBatchBody batch;
    batch.base = 0;
    for (std::uint64_t s = first; s < first + count; ++s) {
      batch.records.push_back({s, 0, bytes_of("payload" + std::to_string(s))});
    }
    const Bytes body = batch.encode();
    return net::transport::encode_frame(FrameType::kDataBatch, body, key);
  };
  const Bytes wire_a = make_wire(0, 3);
  const Bytes wire_b = make_wire(3, 3);

  // A replaying adversary's stream: the second batch first, then each
  // batch twice.  The MAC accepts them all (they are genuine frames); the
  // link must still deliver each payload exactly once, in seq order.
  ReliableLink link;
  FrameDecoder decoder;
  std::vector<Bytes> delivered;
  for (const Bytes* wire : {&wire_b, &wire_a, &wire_a, &wire_b}) {
    decoder.feed(*wire);
    FrameType type{};
    BytesView body;
    ASSERT_EQ(decoder.next_view(key, type, body), FrameDecoder::Status::kFrame);
    ASSERT_EQ(type, FrameType::kDataBatch);
    const DataBatchView view = DataBatchView::decode(body);
    for (const auto& record : view.records) {
      const ReliableLink::FastPath fast = link.accept_inorder(record.seq, view.base);
      if (fast.taken) {
        delivered.emplace_back(record.payload.begin(), record.payload.end());
      } else {
        auto incoming =
            link.on_data(record.seq, view.base, Bytes(record.payload.begin(), record.payload.end()));
        for (auto& delivery : incoming.deliver) delivered.push_back(std::move(delivery.payload));
      }
    }
  }
  ASSERT_EQ(delivered.size(), 6u);
  for (std::uint64_t s = 0; s < 6; ++s) {
    EXPECT_EQ(delivered[s], bytes_of("payload" + std::to_string(s))) << "seq " << s;
  }
  EXPECT_EQ(link.stats().delivered, 6u);
  EXPECT_EQ(link.stats().duplicates, 6u);  // each frame replayed once
  EXPECT_EQ(link.stats().reordered, 3u);   // wire_b parked until wire_a arrived
  EXPECT_EQ(link.recv_cursor(), 6u);
}

// ---- group-stamped BATCH super-frames (wire v4, issue 10) --------------
//
// Wire v4 adds a u32 group id to every batch record (and to DATA bodies)
// so one super-frame can carry many tenants' payloads.  A Byzantine peer
// controls that stamp completely: it can truncate mid-group-field, claim
// groups the host does not run, and mix arbitrary group/epoch combos.
// Every such input must decode-or-reject — never over-read, never crash,
// never leak one tenant's payload into another.

TEST(FuzzTest, GroupStampedBatchRecordsRoundTripAndRejectTruncation) {
  using net::transport::DataBatchBody;
  using net::transport::DataBatchView;

  // Round-trip preserves per-record group ids across the full u32 range.
  DataBatchBody batch;
  batch.ack = 7;
  batch.base = 2;
  batch.epoch = 5;
  batch.records.push_back({2, 0, bytes_of("tenant-zero")});
  batch.records.push_back({3, 1, bytes_of("tenant-one")});
  batch.records.push_back({4, 0xffffffffu, Bytes{}});
  batch.records.push_back({5, 0x7f3a9c01u, bytes_of("high-group")});
  const Bytes valid = batch.encode();

  Reader reader(valid);
  const DataBatchBody owned = DataBatchBody::decode(reader);
  ASSERT_EQ(owned.records.size(), 4u);
  EXPECT_EQ(owned.epoch, 5u);
  EXPECT_EQ(owned.records[1].group, 1u);
  EXPECT_EQ(owned.records[2].group, 0xffffffffu);
  EXPECT_EQ(owned.records[3].group, 0x7f3a9c01u);

  const DataBatchView view = DataBatchView::decode(valid);
  ASSERT_EQ(view.records.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(view.records[i].group, owned.records[i].group);
    EXPECT_TRUE(std::equal(view.records[i].payload.begin(), view.records[i].payload.end(),
                           owned.records[i].payload.begin(), owned.records[i].payload.end()));
  }

  // Every strict prefix — including cuts INSIDE a record's group field —
  // must throw, in both decoders.  The group id widened each record by
  // four bytes; a lazy decoder that read the old layout would mis-slice
  // payload bytes as the next record's header instead of throwing.
  truncation_sweep(valid, [](const Bytes& b) {
    Reader r(b);
    (void)DataBatchBody::decode(r);
  });
  truncation_sweep(valid, [](const Bytes& b) { (void)DataBatchView::decode(b); });
}

TEST(FuzzTest, MutatedGroupStampedBatchesDecodeOrRejectWithoutUB) {
  using net::transport::DataBatchBody;
  using net::transport::DataBatchView;
  Rng rng(31);

  // Start from valid group-stamped batches and mutate: flipped bytes can
  // corrupt counts, group ids, epoch stamps or nested lengths.  Decoders
  // must parse or throw ProtocolError; parsed groups are whatever the
  // bytes say (routing rejects unknowns later — see below).
  for (int round = 0; round < 200; ++round) {
    DataBatchBody batch;
    batch.ack = rng.below(100);
    batch.base = rng.below(100);
    batch.epoch = static_cast<std::uint32_t>(rng.below(16));
    const std::uint64_t count = 1 + rng.below(5);
    for (std::uint64_t s = 0; s < count; ++s) {
      batch.records.push_back({batch.base + s, static_cast<std::uint32_t>(rng.below(1 << 16)),
                               rng.bytes(rng.below(40))});
    }
    Bytes wire = batch.encode();
    const std::size_t flips = 1 + rng.below(6);
    for (std::size_t f = 0; f < flips; ++f) {
      wire[rng.below(wire.size())] ^= static_cast<std::uint8_t>(1 + rng.below(255));
    }
    try {
      Reader r(wire);
      (void)DataBatchBody::decode(r);
    } catch (const ProtocolError&) {
    }
    try {
      (void)DataBatchView::decode(wire);
    } catch (const ProtocolError&) {
    }
  }
}

TEST(FuzzTest, UnknownGroupAndEpochCombosNeverReachAForeignTenant) {
  using net::transport::NetworkedNode;

  // A two-tenant host: arbitrary (group, epoch) combos from a Byzantine
  // peer must be dropped (unknown group), fenced (stale/far epoch),
  // parked (next epoch) or dispatched (current epoch) — and a payload
  // stamped for group 7 must never surface in groups 1 or 2.
  NetworkedNode::Config config;
  config.node_id = 0;
  config.n = 2;
  config.max_future = 64;
  NetworkedNode node(config);
  struct Sink final : public net::Process {
    std::vector<net::Message> messages;
    void on_message(const net::Message& message) override { messages.push_back(message); }
  };
  Sink sink_a;
  Sink sink_b;
  node.add_group(1).attach(sink_a);
  node.add_group(2).attach(sink_b);

  Rng rng(37);
  for (int round = 0; round < 500; ++round) {
    const auto group = static_cast<std::uint32_t>(rng.below(5));  // 0..4; 3,4 unknown
    const auto epoch = static_cast<std::uint32_t>(rng.below(4));  // 0..3
    if (rng.below(4) == 0) {
      // Raw garbage under a valid group stamp: malformed, counted, dropped.
      node.on_transport_receive(1, group, rng.bytes(rng.below(64)));
      continue;
    }
    net::Message m;
    m.from = 1;
    m.to = 0;
    m.tag = "svc";
    m.payload = bytes_of("g" + std::to_string(group));
    node.on_transport_receive(1, group, NetworkedNode::encode_payload(m, epoch));
  }
  node.poll();

  const NetworkedNode::Stats stats = node.stats();
  EXPECT_GT(stats.unknown_group, 0u);  // groups 3 and 4 were sprayed
  for (const auto& message : sink_a.messages) {
    EXPECT_EQ(message.payload, bytes_of("g1")) << "foreign payload crossed into group 1";
  }
  for (const auto& message : sink_b.messages) {
    EXPECT_EQ(message.payload, bytes_of("g2")) << "foreign payload crossed into group 2";
  }
}

TEST(FuzzTest, GroupElementDecodeRejectsRandomBytes) {
  // A random p-sized buffer is almost never in the order-q subgroup; the
  // decoder must reject, not accept-and-corrupt.
  auto group = Group::test_group();
  Rng rng(16);
  int accepted = 0;
  for (int i = 0; i < 100; ++i) {
    Bytes buffer = rng.bytes(group->element_bytes());
    try {
      Reader r(buffer);
      group->decode_element(r);
      ++accepted;
    } catch (const ProtocolError&) {
    }
  }
  // Subgroup density is q/p ~ 2^-128: zero acceptances expected.
  EXPECT_EQ(accepted, 0);
}

// ---- curve-element inputs (issue 6) ------------------------------------
//
// The secp256k1 backend introduces a second wire format for group
// elements (33-byte compressed SEC1).  Every malformed-point class a peer
// can ship — truncated, bad prefix byte, x out of field range, x with no
// curve solution, non-canonical infinity — must be rejected by the
// decoder and, through it, by every protocol-message decoder that embeds
// curve elements.

/// A valid compressed encoding of a random curve element.
Bytes curve_point_bytes(std::uint64_t seed) {
  auto group = Group::curve_group();
  Rng rng(seed);
  Writer w;
  group->encode_element(w, group->exp_g(group->random_scalar(rng)));
  return w.take();
}

/// Malformed 33-byte encodings covering every rejection class.
std::vector<Bytes> malformed_curve_encodings() {
  std::vector<Bytes> bad;
  Bytes valid = curve_point_bytes(19);
  // Bad prefix byte (only 0x02/0x03 introduce a finite point).
  for (std::uint8_t prefix : {0x00, 0x01, 0x04, 0x05, 0xFF}) {
    Bytes b = valid;
    b[0] = prefix;
    if (prefix == 0x00) {
      // prefix 0 is only legal as all-zero infinity; keep x nonzero so
      // this exercises the non-canonical-infinity reject.
      b[1] |= 1;
    }
    bad.push_back(std::move(b));
  }
  // x >= p (field element out of range).
  {
    Bytes b(33, 0xFF);
    b[0] = 0x02;
    bad.push_back(std::move(b));
  }
  // x with no curve solution: x = 0 with the finite-point prefix asks for
  // y^2 = 7, which is a non-residue mod p.
  {
    Bytes b(33, 0x00);
    b[0] = 0x02;
    bad.push_back(std::move(b));
  }
  return bad;
}

TEST(FuzzTest, CurveElementDecodeRejectsMalformed) {
  auto group = Group::curve_group();
  for (const Bytes& b : malformed_curve_encodings()) {
    Reader r(b);
    EXPECT_THROW(group->decode_element(r), ProtocolError)
        << "prefix 0x" << std::hex << int(b[0]);
  }
  // Random 33-byte buffers: ~half of well-prefixed x values have a curve
  // solution, so some acceptances are expected — but never a crash and
  // never an off-curve element.
  Rng rng(20);
  for (int i = 0; i < 300; ++i) {
    Bytes buffer = rng.bytes(group->element_bytes());
    try {
      Reader r(buffer);
      crypto::Element e = group->decode_element(r);
      EXPECT_TRUE(group->is_element(e));
    } catch (const ProtocolError&) {
    }
  }
  // Every strict truncation of a valid encoding throws.
  truncation_sweep(curve_point_bytes(21), [&](const Bytes& b) {
    Reader r(b);
    group->decode_element(r);
    r.expect_done();
  });
}

TEST(FuzzTest, CurveProtocolDecodersRejectMalformedPoints) {
  // Drive the malformed encodings through the protocol-message decoders
  // that embed curve elements: coin shares (value), TDH2 ciphertexts
  // (u, u_bar, w, w_bar) and decryption shares.  Each splice must throw,
  // never crash or accept.
  auto group = Group::curve_group();
  Rng rng(22);
  auto scheme = std::make_shared<crypto::ThresholdScheme>(4, 1);

  auto coin = crypto::CoinDeal::deal(group, scheme, rng);
  Bytes name = bytes_of("curve-fuzz");
  auto coin_shares = coin.secret_keys[0].share(coin.public_key, name, rng);
  Writer cw;
  coin_shares[0].encode(cw, *group);
  const Bytes coin_wire = cw.take();

  auto tdh2 = crypto::Tdh2Deal::deal(group, scheme, rng);
  auto ct = tdh2.public_key.encrypt(bytes_of("msg"), bytes_of("l"), rng);
  Writer tw;
  ct.encode(tw, *group);
  const Bytes ct_wire = tw.take();

  for (const Bytes& bad : malformed_curve_encodings()) {
    // Splice the malformed point over every aligned 33-byte window where a
    // point encoding can sit; windows that land on non-point fields may
    // still decode, which is fine — the point windows must throw.
    for (std::size_t off = 0; off + bad.size() <= coin_wire.size(); ++off) {
      Bytes spliced = coin_wire;
      std::copy(bad.begin(), bad.end(), spliced.begin() + static_cast<std::ptrdiff_t>(off));
      expect_total(
          [&] {
            Reader r(spliced);
            (void)crypto::CoinShare::decode(r, *group);
            r.expect_done();
          },
          "CoinShare::decode(curve)");
    }
    for (std::size_t off = 0; off + bad.size() <= ct_wire.size(); ++off) {
      Bytes spliced = ct_wire;
      std::copy(bad.begin(), bad.end(), spliced.begin() + static_cast<std::ptrdiff_t>(off));
      expect_total(
          [&] {
            Reader r(spliced);
            (void)crypto::Tdh2Ciphertext::decode(r, *group);
            r.expect_done();
          },
          "Tdh2Ciphertext::decode(curve)");
    }
  }

  // Seeded random-buffer fuzz of the same decoders on the curve backend.
  fuzz([&](const Bytes& b) {
    Reader r(b);
    auto s = crypto::CoinShare::decode(r, *group);
    r.expect_done();
    (void)s;
  }, 23);
  fuzz([&](const Bytes& b) {
    Reader r(b);
    auto c = crypto::Tdh2Ciphertext::decode(r, *group);
    r.expect_done();
    (void)c;
  }, 24);
  fuzz([&](const Bytes& b) {
    Reader r(b);
    auto s = crypto::Tdh2DecShare::decode(r, *group);
    r.expect_done();
    (void)s;
  }, 25);
}

TEST(FuzzTest, CurveBatchVerifierRejectsTamperedShares) {
  // Batch verification on the curve backend: tampered and identity-valued
  // shares must be caught, not folded into an accepting batch.
  auto group = Group::curve_group();
  Rng rng(26);
  auto scheme = std::make_shared<crypto::ThresholdScheme>(4, 1);
  auto coin = crypto::CoinDeal::deal(group, scheme, rng);
  Bytes name = bytes_of("curve-batch-fuzz");
  std::vector<crypto::CoinShare> shares;
  for (int p = 0; p < 3; ++p) {
    for (auto& s : coin.secret_keys[static_cast<std::size_t>(p)].share(coin.public_key, name,
                                                                       rng)) {
      shares.push_back(s);
    }
  }
  ASSERT_TRUE(crypto::batch::verify_coin_shares(coin.public_key, name, shares, rng));
  auto tampered = shares;
  tampered[1].value = group->mul(tampered[1].value, group->g());
  EXPECT_FALSE(crypto::batch::verify_coin_shares(coin.public_key, name, tampered, rng));
  auto invalid = crypto::batch::find_invalid_coin_shares(coin.public_key, name, tampered, rng);
  EXPECT_EQ(invalid, std::vector<std::size_t>{1});
  auto identity_valued = shares;
  for (auto& s : identity_valued) s.value = group->identity();
  expect_total(
      [&] {
        (void)crypto::batch::verify_coin_shares(coin.public_key, name, identity_valued, rng);
      },
      "verify_coin_shares(curve identity)");
}

// ---- reconfiguration / state-transfer wire messages ------------------------

TEST(FuzzTest, ReconfigWireDecodersSurviveFuzzAndTruncation) {
  auto group = Group::test_group();

  protocols::ReconfigPlan plan;  // valid: epoch 1, (4,1) -> (4,1), all stay
  plan.new_epoch = 1;
  plan.n_old = 4;
  plan.t_old = 1;
  plan.n_new = 4;
  plan.t_new = 1;
  plan.old_slot = {0, 1, 2, 3};
  {
    Writer w;
    plan.encode(w);
    const auto decode = [](const Bytes& b) {
      Reader r(b);
      (void)protocols::ReconfigPlan::decode(r);
      r.expect_done();
    };
    truncation_sweep(w.data(), decode);
    fuzz(decode, 61);
  }

  protocols::NewConfig config;
  config.plan = plan;
  config.fence.chain_digest = crypto::chain_initial();  // unfenced placeholder
  for (int i = 0; i < 4; ++i) {
    config.coin_verification.push_back(group->exp_g(crypto::BigInt(i + 2)));
    config.tdh2_verification.push_back(group->exp_g(crypto::BigInt(i + 3)));
    config.reply_verification.push_back(crypto::BigInt(1000 + i));
    config.cert_verification.push_back(crypto::BigInt(2000 + i));
  }
  config.reply_scale = crypto::BigInt(1);
  config.cert_scale = crypto::BigInt(1);
  config.reply_share_bits = 512;
  config.cert_share_bits = 512;
  config.signature = crypto::BigInt(7);
  {
    Writer w;
    config.encode(w, *group);
    const auto decode = [&](const Bytes& b) {
      Reader r(b);
      (void)protocols::NewConfig::decode(r, *group);
      r.expect_done();
    };
    truncation_sweep(w.data(), decode);
    fuzz(decode, 62);
  }

  protocols::JoinPackage package;
  package.config = config;
  package.applied = {0, 1};
  for (int d = 0; d < 2; ++d) {
    package.coin_commitments.push_back({group->exp_g(crypto::BigInt(d + 5)), group->g()});
    package.tdh2_commitments.push_back({group->exp_g(crypto::BigInt(d + 6)), group->g()});
    package.reply_commitments.push_back({crypto::BigInt(10 + d), crypto::BigInt(11 + d)});
    package.cert_commitments.push_back({crypto::BigInt(20 + d), crypto::BigInt(21 + d)});
    package.coin_subshares.push_back(crypto::BigInt(30 + d));
    package.tdh2_subshares.push_back(crypto::BigInt(40 + d));
    package.reply_subshares.push_back(crypto::BigInt(50 + d));
    package.cert_subshares.push_back(crypto::BigInt(60 + d));
  }
  {
    Writer w;
    package.encode(w, *group);
    const auto decode = [&](const Bytes& b) {
      Reader r(b);
      (void)protocols::JoinPackage::decode(r, *group);
      r.expect_done();
    };
    truncation_sweep(w.data(), decode);
    fuzz(decode, 63);
  }
}

TEST(FuzzTest, EpochStampedNodePayloadSurvivesFuzzAndTruncation) {
  net::Message message;
  message.from = 1;
  message.to = 0;
  message.tag = "svc";
  message.payload = bytes_of("epoch-stamped");
  const Bytes valid = net::transport::NetworkedNode::encode_payload(message, 5);
  const auto decode = [](const Bytes& b) {
    std::uint32_t epoch = 0;
    (void)net::transport::NetworkedNode::decode_payload(1, 0, b, &epoch);
  };
  truncation_sweep(valid, decode);
  fuzz(decode, 64);
}

}  // namespace
}  // namespace sintra
