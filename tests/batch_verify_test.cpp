// Differential tests for the batch verifier (crypto/batch.hpp): on every
// input, the batched check must agree with running the strict individual
// verifier over the whole set — batch accepts iff all individual proofs
// accept — and bisection must return exactly the corrupted indices.
// Includes adversarial share pairs with compensating errors that a naive
// (fixed-weight) sum-check would accept; the independent random weights
// must reject them.
#include <gtest/gtest.h>

#include "crypto/batch.hpp"
#include "crypto/shamir.hpp"

namespace sintra::crypto {
namespace {

// -- DLEQ ---------------------------------------------------------------------

class BatchDleqTest : public ::testing::Test {
 protected:
  BatchDleqTest()
      : rng_(2024),
        group_(Group::test_group()),
        g2_(group_->hash_to_element("sintra/test/batch-base", bytes_of("second base"))) {}

  batch::DleqItem make_item(int i) {
    const std::string ctx = "dleq-item-" + std::to_string(i);
    BigInt x = group_->random_scalar(rng_);
    Element h1 = group_->exp_g(x);
    Element h2 = group_->exp(g2_, x);
    DleqProof proof = DleqProof::prove(*group_, ctx, group_->g(), h1, g2_, h2, x, rng_);
    return batch::DleqItem{ctx, std::move(h1), std::move(h2), std::move(proof)};
  }

  std::vector<batch::DleqItem> make_items(int k) {
    std::vector<batch::DleqItem> items;
    for (int i = 0; i < k; ++i) items.push_back(make_item(i));
    return items;
  }

  bool all_individual(const std::vector<batch::DleqItem>& items) {
    for (const auto& item : items) {
      if (!item.proof.verify(*group_, item.context, group_->g(), item.h1, g2_, item.h2)) {
        return false;
      }
    }
    return true;
  }

  Rng rng_;
  GroupPtr group_;
  Element g2_;
};

TEST_F(BatchDleqTest, CleanBatchMatchesIndividual) {
  auto items = make_items(16);
  ASSERT_TRUE(all_individual(items));
  EXPECT_TRUE(batch::verify_dleq(*group_, group_->g(), g2_, items, rng_));
  EXPECT_TRUE(batch::find_invalid_dleq(*group_, group_->g(), g2_, items, rng_).empty());
  EXPECT_TRUE(batch::verify_dleq(*group_, group_->g(), g2_, {}, rng_));
}

TEST_F(BatchDleqTest, CorruptedSubsetFingeredExactly) {
  auto items = make_items(13);
  // Corrupt a spread of positions with different kinds of damage.
  items[0].proof.z = group_->scalar_add(items[0].proof.z, BigInt(1));
  items[5].proof.a1 = group_->mul(items[5].proof.a1, group_->g());
  items[12].h2 = group_->mul(items[12].h2, g2_);
  ASSERT_FALSE(all_individual(items));
  EXPECT_FALSE(batch::verify_dleq(*group_, group_->g(), g2_, items, rng_));
  EXPECT_EQ(batch::find_invalid_dleq(*group_, group_->g(), g2_, items, rng_),
            (std::vector<std::size_t>{0, 5, 12}));
}

TEST_F(BatchDleqTest, EverySingleCorruptionDetected) {
  // Differential sweep: one corrupted position at a time, across the whole
  // batch — batch accept must track all-individual accept exactly.
  for (std::size_t bad = 0; bad < 8; ++bad) {
    auto items = make_items(8);
    items[bad].proof.z = group_->scalar_add(items[bad].proof.z, BigInt(7));
    ASSERT_FALSE(all_individual(items));
    EXPECT_FALSE(batch::verify_dleq(*group_, group_->g(), g2_, items, rng_));
    EXPECT_EQ(batch::find_invalid_dleq(*group_, group_->g(), g2_, items, rng_),
              std::vector<std::size_t>{bad});
  }
}

TEST_F(BatchDleqTest, CompensatingResponsePairRejected) {
  // The response z is outside the Fiat–Shamir hash, so adding delta to one
  // proof's response and subtracting it from another multiplies the two
  // equation sides by g^delta and g^-delta: a naive fixed-weight sum-check
  // cancels the errors and accepts.  Independent random weights make the
  // cancellation happen with probability 2^-128.
  auto items = make_items(6);
  const BigInt delta(123456789);
  items[1].proof.z = group_->scalar_add(items[1].proof.z, delta);
  items[4].proof.z = group_->scalar_sub(items[4].proof.z, delta);
  ASSERT_FALSE(all_individual(items));
  EXPECT_FALSE(batch::verify_dleq(*group_, group_->g(), g2_, items, rng_));
  EXPECT_EQ(batch::find_invalid_dleq(*group_, group_->g(), g2_, items, rng_),
            (std::vector<std::size_t>{1, 4}));
}

TEST_F(BatchDleqTest, CrossEquationCompensationRejected) {
  // Within ONE proof: grow the first equation's commitment by d and shrink
  // the second's by d.  A batch that reused one weight for both equations
  // of a DLEQ proof would cancel these; independent weights must not.
  auto items = make_items(4);
  const Element d = group_->exp_g(BigInt(42));
  items[2].proof.a1 = group_->mul(items[2].proof.a1, d);
  items[2].proof.a2 = group_->mul(items[2].proof.a2, group_->inv(d));
  ASSERT_FALSE(all_individual(items));
  EXPECT_FALSE(batch::verify_dleq(*group_, group_->g(), g2_, items, rng_));
  EXPECT_EQ(batch::find_invalid_dleq(*group_, group_->g(), g2_, items, rng_),
            std::vector<std::size_t>{2});
}

// -- Schnorr ------------------------------------------------------------------

class BatchSchnorrTest : public ::testing::Test {
 protected:
  BatchSchnorrTest() : rng_(77), group_(Group::test_group()) {}

  std::vector<batch::SchnorrItem> make_items(int k) {
    std::vector<batch::SchnorrItem> items;
    for (int i = 0; i < k; ++i) {
      const std::string ctx = "schnorr-item-" + std::to_string(i);
      BigInt x = group_->random_scalar(rng_);
      Element h = group_->exp_g(x);
      SchnorrProof proof = SchnorrProof::prove(*group_, ctx, group_->g(), h, x, rng_);
      items.push_back(batch::SchnorrItem{ctx, std::move(h), std::move(proof)});
    }
    return items;
  }

  bool all_individual(const std::vector<batch::SchnorrItem>& items) {
    for (const auto& item : items) {
      if (!item.proof.verify(*group_, item.context, group_->g(), item.h)) return false;
    }
    return true;
  }

  Rng rng_;
  GroupPtr group_;
};

TEST_F(BatchSchnorrTest, CleanBatchMatchesIndividual) {
  auto items = make_items(16);
  ASSERT_TRUE(all_individual(items));
  EXPECT_TRUE(batch::verify_schnorr(*group_, group_->g(), items, rng_));
  EXPECT_TRUE(batch::find_invalid_schnorr(*group_, group_->g(), items, rng_).empty());
}

TEST_F(BatchSchnorrTest, CompensatingPairRejectedAndFingered) {
  auto items = make_items(9);
  const BigInt delta(999);
  items[0].proof.z = group_->scalar_add(items[0].proof.z, delta);
  items[8].proof.z = group_->scalar_sub(items[8].proof.z, delta);
  items[3].proof.a = group_->mul(items[3].proof.a, group_->g());
  ASSERT_FALSE(all_individual(items));
  EXPECT_FALSE(batch::verify_schnorr(*group_, group_->g(), items, rng_));
  EXPECT_EQ(batch::find_invalid_schnorr(*group_, group_->g(), items, rng_),
            (std::vector<std::size_t>{0, 3, 8}));
}

// -- coin shares --------------------------------------------------------------

class BatchCoinTest : public ::testing::Test {
 protected:
  BatchCoinTest()
      : rng_(404), deal_(CoinDeal::deal(Group::test_group(),
                                        std::make_shared<ThresholdScheme>(7, 2), rng_)) {}

  std::vector<CoinShare> shares_for(BytesView name, std::initializer_list<int> parties) {
    std::vector<CoinShare> out;
    for (int p : parties) {
      for (auto& s : deal_.secret_keys[static_cast<std::size_t>(p)].share(deal_.public_key,
                                                                          name, rng_)) {
        out.push_back(s);
      }
    }
    return out;
  }

  bool all_individual(BytesView name, const std::vector<CoinShare>& shares) {
    for (const auto& s : shares) {
      if (!deal_.public_key.verify_share(name, s)) return false;
    }
    return true;
  }

  Rng rng_;
  CoinDeal deal_;
};

TEST_F(BatchCoinTest, CleanQuorumVerifiesAndCombines) {
  Bytes name = bytes_of("batch-coin");
  auto shares = shares_for(name, {0, 1, 2, 3, 4});
  ASSERT_TRUE(all_individual(name, shares));
  EXPECT_TRUE(batch::verify_coin_shares(deal_.public_key, name, shares, rng_));
  auto expected = deal_.public_key.combine(name, shares);
  ASSERT_TRUE(expected.has_value());
  auto result = batch::combine_coin_optimistic(deal_.public_key, name, shares, rng_);
  ASSERT_TRUE(result.value.has_value());
  EXPECT_EQ(*result.value, *expected);
  EXPECT_TRUE(result.bad.empty());
}

TEST_F(BatchCoinTest, CompensatingTamperedPairRejectedExactly) {
  Bytes name = bytes_of("batch-coin-adv");
  auto shares = shares_for(name, {0, 1, 2, 3});
  const auto& group = deal_.public_key.group();
  const BigInt delta(31337);
  shares[0].proof.z = group.scalar_add(shares[0].proof.z, delta);
  shares[3].proof.z = group.scalar_sub(shares[3].proof.z, delta);
  ASSERT_FALSE(all_individual(name, shares));
  EXPECT_FALSE(batch::verify_coin_shares(deal_.public_key, name, shares, rng_));
  EXPECT_EQ(batch::find_invalid_coin_shares(deal_.public_key, name, shares, rng_),
            (std::vector<std::size_t>{0, 3}));
}

TEST_F(BatchCoinTest, OptimisticCombineFingersCulpritAndRecovers) {
  // Four parties' shares, threshold three: after ejecting the one bad
  // share the remainder still qualifies, so the combiner both fingers the
  // culprit and produces the correct coin.
  Bytes name = bytes_of("batch-coin-recover");
  auto shares = shares_for(name, {0, 1, 2, 3});
  auto honest = deal_.public_key.combine(name, shares_for(name, {1, 2, 3}));
  ASSERT_TRUE(honest.has_value());
  shares[0].value = deal_.public_key.group().mul(shares[0].value,
                                                 deal_.public_key.group().g());
  auto result = batch::combine_coin_optimistic(deal_.public_key, name, shares, rng_);
  EXPECT_EQ(result.bad, std::vector<std::size_t>{0});
  ASSERT_TRUE(result.value.has_value());
  EXPECT_EQ(*result.value, *honest);
}

TEST_F(BatchCoinTest, OptimisticCombineBareQuorumFailsClosed) {
  // Exactly-threshold set with one bad share: the culprit is fingered and
  // no value can be produced from the remainder.
  Bytes name = bytes_of("batch-coin-bare");
  auto shares = shares_for(name, {0, 1, 2});
  shares[1].proof.z = deal_.public_key.group().scalar_add(shares[1].proof.z, BigInt(5));
  auto result = batch::combine_coin_optimistic(deal_.public_key, name, shares, rng_);
  EXPECT_FALSE(result.value.has_value());
  EXPECT_EQ(result.bad, std::vector<std::size_t>{1});
}

// -- TDH2 ---------------------------------------------------------------------

class BatchTdh2Test : public ::testing::Test {
 protected:
  BatchTdh2Test()
      : rng_(808), deal_(Tdh2Deal::deal(Group::test_group(),
                                        std::make_shared<ThresholdScheme>(5, 1), rng_)) {}

  Rng rng_;
  Tdh2Deal deal_;
};

TEST_F(BatchTdh2Test, DecSharesDifferential) {
  auto ct = deal_.public_key.encrypt(bytes_of("secret payload"), bytes_of("label"), rng_);
  std::vector<Tdh2DecShare> shares;
  for (int p = 0; p < 4; ++p) {
    for (auto& s : deal_.secret_keys[static_cast<std::size_t>(p)].decrypt_shares(
             deal_.public_key, ct, rng_)) {
      shares.push_back(s);
    }
  }
  for (const auto& s : shares) EXPECT_TRUE(deal_.public_key.verify_share(ct, s));
  EXPECT_TRUE(batch::verify_dec_shares(deal_.public_key, ct, shares, rng_));
  // Compensating tamper across two shares — must be fingered exactly.
  const auto& group = deal_.public_key.group();
  const BigInt delta(271828);
  shares[2].proof.z = group.scalar_add(shares[2].proof.z, delta);
  shares[3].proof.z = group.scalar_sub(shares[3].proof.z, delta);
  EXPECT_FALSE(batch::verify_dec_shares(deal_.public_key, ct, shares, rng_));
  EXPECT_EQ(batch::find_invalid_dec_shares(deal_.public_key, ct, shares, rng_),
            (std::vector<std::size_t>{2, 3}));
}

TEST_F(BatchTdh2Test, CiphertextBatchDifferential) {
  std::vector<Tdh2Ciphertext> cts;
  for (int i = 0; i < 8; ++i) {
    cts.push_back(deal_.public_key.encrypt(bytes_of("payload-" + std::to_string(i)),
                                           bytes_of("label"), rng_));
  }
  for (const auto& ct : cts) EXPECT_TRUE(deal_.public_key.check_ciphertext(ct));
  EXPECT_TRUE(batch::verify_ciphertexts(deal_.public_key, cts, rng_));
  const auto& group = deal_.public_key.group();
  const BigInt delta(314159);
  cts[1].f = group.scalar_add(cts[1].f, delta);
  cts[6].f = group.scalar_sub(cts[6].f, delta);
  EXPECT_FALSE(deal_.public_key.check_ciphertext(cts[1]));
  EXPECT_FALSE(deal_.public_key.check_ciphertext(cts[6]));
  EXPECT_FALSE(batch::verify_ciphertexts(deal_.public_key, cts, rng_));
  EXPECT_EQ(batch::find_invalid_ciphertexts(deal_.public_key, cts, rng_),
            (std::vector<std::size_t>{1, 6}));
}

// -- threshold RSA signature shares -------------------------------------------

class BatchSigTest : public ::testing::Test {
 protected:
  BatchSigTest()
      : rng_(606),
        deal_(ThresholdSigDeal::deal(RsaParams::precomputed(128),
                                     std::make_shared<ThresholdScheme>(5, 1), rng_)) {}

  std::vector<SigShare> shares_for(BytesView message, std::initializer_list<int> parties) {
    std::vector<SigShare> out;
    for (int p : parties) {
      for (auto& s : deal_.secret_keys[static_cast<std::size_t>(p)].sign(deal_.public_key,
                                                                         message, rng_)) {
        out.push_back(s);
      }
    }
    return out;
  }

  bool all_individual(BytesView message, const std::vector<SigShare>& shares) {
    for (const auto& s : shares) {
      if (!deal_.public_key.verify_share(message, s)) return false;
    }
    return true;
  }

  Rng rng_;
  ThresholdSigDeal deal_;
};

TEST_F(BatchSigTest, CleanBatchMatchesIndividual) {
  Bytes message = bytes_of("batch sig");
  auto shares = shares_for(message, {0, 1, 2, 3, 4});
  ASSERT_TRUE(all_individual(message, shares));
  EXPECT_TRUE(batch::verify_sig_shares(deal_.public_key, message, shares, rng_));
  EXPECT_TRUE(
      batch::find_invalid_sig_shares(deal_.public_key, message, shares, rng_).empty());
}

TEST_F(BatchSigTest, CompensatingResponsePairRejectedExactly) {
  // The proof response is outside the challenge hash; add delta to one and
  // subtract it from another so a fixed-weight product check cancels.
  Bytes message = bytes_of("batch sig adv");
  auto shares = shares_for(message, {0, 1, 2, 3});
  const BigInt delta(65537);
  shares[1].response = shares[1].response + delta;
  shares[2].response = shares[2].response - delta;
  ASSERT_FALSE(all_individual(message, shares));
  EXPECT_FALSE(batch::verify_sig_shares(deal_.public_key, message, shares, rng_));
  EXPECT_EQ(batch::find_invalid_sig_shares(deal_.public_key, message, shares, rng_),
            (std::vector<std::size_t>{1, 2}));
}

TEST_F(BatchSigTest, ShareGroupsDifferential) {
  // Several distinct messages verified as one batch — the atomic-broadcast
  // proposal shape.  One corrupted share in one group must fail the whole
  // check; clean groups must pass.
  std::vector<batch::SigShareGroup> groups;
  for (int s = 0; s < 4; ++s) {
    Bytes msg = bytes_of("group message " + std::to_string(s));
    groups.push_back(
        {msg, shares_for(msg, {s, s + 1})});
  }
  EXPECT_TRUE(batch::verify_sig_share_groups(deal_.public_key, groups, rng_));
  groups[2].shares[0].value =
      BigInt::mul_mod(groups[2].shares[0].value, BigInt(3), deal_.public_key.modulus());
  EXPECT_FALSE(batch::verify_sig_share_groups(deal_.public_key, groups, rng_));
}

TEST_F(BatchSigTest, OptimisticCombineCleanAndFallback) {
  Bytes message = bytes_of("optimistic");
  auto shares = shares_for(message, {0, 1, 2});
  auto clean = batch::combine_sig_optimistic(deal_.public_key, message, shares, rng_);
  ASSERT_TRUE(clean.signature.has_value());
  EXPECT_TRUE(clean.bad.empty());
  EXPECT_TRUE(deal_.public_key.verify(message, *clean.signature));

  // One corrupted share among three (threshold two): fallback must finger
  // exactly the culprit and still deliver a valid signature.
  shares[0].value = BigInt::mul_mod(shares[0].value, BigInt(2), deal_.public_key.modulus());
  auto result = batch::combine_sig_optimistic(deal_.public_key, message, shares, rng_);
  EXPECT_EQ(result.bad, std::vector<std::size_t>{0});
  ASSERT_TRUE(result.signature.has_value());
  EXPECT_TRUE(deal_.public_key.verify(message, *result.signature));
}

TEST_F(BatchSigTest, OptimisticCombineUnqualifiedSet) {
  Bytes message = bytes_of("unqualified");
  auto shares = shares_for(message, {0});
  auto result = batch::combine_sig_optimistic(deal_.public_key, message, shares, rng_);
  EXPECT_FALSE(result.signature.has_value());
  EXPECT_TRUE(result.bad.empty());
}

}  // namespace
}  // namespace sintra::crypto
