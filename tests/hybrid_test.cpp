// Hybrid failure structure tests (§6): n > 3t_b + 2t_c quorum rules and a
// full protocol run on six servers tolerating one Byzantine corruption
// plus one crash — a configuration the pure Byzantine model cannot reach
// with fewer than seven servers.
#include <gtest/gtest.h>

#include "adversary/hybrid.hpp"
#include "protocols/atomic.hpp"
#include "protocols/harness.hpp"

namespace sintra::adversary {
namespace {

using crypto::full_set;
using crypto::party_bit;

TEST(HybridQuorumTest, ResilienceBound) {
  EXPECT_NO_THROW(HybridQuorum(6, 1, 1));   // 6 > 3+2
  EXPECT_THROW(HybridQuorum(5, 1, 1), ProtocolError);
  EXPECT_NO_THROW(HybridQuorum(4, 1, 0));   // degenerates to pure Byzantine
  EXPECT_NO_THROW(HybridQuorum(3, 0, 1));   // crash-only: n > 2t_c
  EXPECT_THROW(HybridQuorum(2, 0, 1), ProtocolError);
}

TEST(HybridQuorumTest, RulesAtSixOneOne) {
  HybridQuorum q(6, 1, 1);
  // quorum: n - t_b - t_c = 4.
  EXPECT_TRUE(q.is_quorum(full_set(4)));
  EXPECT_FALSE(q.is_quorum(full_set(3)));
  // fault-set-exceeding: t_b + 1 = 2 (only Byzantine parties lie).
  EXPECT_TRUE(q.exceeds_fault_set(full_set(2)));
  EXPECT_FALSE(q.exceeds_fault_set(full_set(1)));
  // vote quorum: 2*t_b + t_c + 1 = 4.
  EXPECT_TRUE(q.is_vote_quorum(full_set(4)));
  EXPECT_FALSE(q.is_vote_quorum(full_set(3)));
  // corruption (secrecy) bound is Byzantine-only.
  EXPECT_TRUE(q.corruptible(party_bit(3)));
  EXPECT_FALSE(q.corruptible(party_bit(3) | party_bit(5)));
}

TEST(HybridQuorumTest, MatchesPureByzantineWhenNoCrashes) {
  HybridQuorum hybrid(7, 2, 0);
  ThresholdQuorum pure(7, 2);
  for (crypto::PartySet set = 0; set < (crypto::PartySet{1} << 7); ++set) {
    EXPECT_EQ(hybrid.is_quorum(set), pure.is_quorum(set));
    EXPECT_EQ(hybrid.exceeds_fault_set(set), pure.exceeds_fault_set(set));
    EXPECT_EQ(hybrid.is_vote_quorum(set), pure.is_vote_quorum(set));
    EXPECT_EQ(hybrid.corruptible(set), pure.corruptible(set));
  }
}

TEST(HybridQuorumTest, QuorumIntersectionContainsHonestParty) {
  // Safety foundation: any two quorums intersect in a party that is
  // neither Byzantine nor crashed — checked exhaustively for (6,1,1).
  HybridQuorum q(6, 1, 1);
  const int n = 6;
  for (crypto::PartySet a = 0; a < (crypto::PartySet{1} << n); ++a) {
    if (!q.is_quorum(a)) continue;
    for (crypto::PartySet b = 0; b < (crypto::PartySet{1} << n); ++b) {
      if (!q.is_quorum(b)) continue;
      // Intersection larger than any Byzantine set.
      ASSERT_TRUE(q.exceeds_fault_set(a & b));
    }
  }
}

struct AbcState {
  std::unique_ptr<protocols::AtomicBroadcast> abc;
  std::vector<Bytes> log;
};

TEST(HybridDeploymentTest, SixServersOneByzantineOneCrash) {
  // The win over pure Byzantine: 6 servers tolerate t_b=1 + t_c=1, while
  // threshold t=2 would require n=7.  One party crashed, one party
  // replaced by a spammer (Byzantine noise) — the rest keep total order.
  Rng rng(11);
  auto deployment = hybrid_deployment(6, 1, 1, rng);
  net::RandomScheduler sched(11);
  protocols::Cluster<AbcState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<AbcState>();
        s->abc = std::make_unique<protocols::AtomicBroadcast>(
            party, "abc",
            [p = s.get()](int, Bytes payload) { p->log.push_back(std::move(payload)); });
        return s;
      },
      /*corrupted(crash)=*/party_bit(5));
  cluster.attach_custom(
      4, std::make_unique<net::SpamProcess>(cluster.simulator(), 4, 9,
                                            std::vector<std::string>{"abc", "abc/1/vba"}));
  cluster.start();
  cluster.protocol(0)->abc->submit(bytes_of("hybrid-a"));
  cluster.protocol(1)->abc->submit(bytes_of("hybrid-b"));
  ASSERT_TRUE(cluster.run_until_all([](AbcState& s) { return s.log.size() >= 2; }, 20000000));
  const auto& reference = cluster.protocol(0)->log;
  cluster.for_each([&](int, AbcState& s) { EXPECT_EQ(s.log, reference); });
}

TEST(HybridDeploymentTest, PureByzantineCannotReachThisConfig) {
  // threshold t=2 on 6 servers violates n > 3t.
  Rng rng(12);
  EXPECT_THROW(Deployment::threshold(6, 2, rng), ProtocolError);
}

TEST(HybridDeploymentTest, CrashOnlyConfiguration) {
  // t_b = 0, t_c = 2 on five servers: crash-fault-tolerant mode.
  Rng rng(13);
  auto deployment = hybrid_deployment(5, 0, 2, rng);
  net::RandomScheduler sched(13);
  protocols::Cluster<AbcState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<AbcState>();
        s->abc = std::make_unique<protocols::AtomicBroadcast>(
            party, "abc",
            [p = s.get()](int, Bytes payload) { p->log.push_back(std::move(payload)); });
        return s;
      },
      party_bit(1) | party_bit(3));
  cluster.start();
  cluster.protocol(0)->abc->submit(bytes_of("crash-only"));
  ASSERT_TRUE(cluster.run_until_all([](AbcState& s) { return s.log.size() >= 1; }, 20000000));
}

}  // namespace
}  // namespace sintra::adversary
