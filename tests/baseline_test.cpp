// Baseline protocol tests (Figure 1 comparisons): the CL99-style
// deterministic protocol works in benign runs but loses liveness under a
// leader-starving scheduler; the reliable-broadcast-only system delivers
// everything but diverges in order.
#include <gtest/gtest.h>

#include "protocols/baselines/pbft_like.hpp"
#include "protocols/baselines/reliable_only.hpp"
#include "protocols/harness.hpp"

namespace sintra::protocols {
namespace {

struct PbftState {
  std::unique_ptr<PbftLikeBroadcast> pbft;
  std::vector<Bytes> delivered;
};

Cluster<PbftState> make_pbft(adversary::Deployment deployment, net::Scheduler& sched,
                             crypto::PartySet corrupted = 0) {
  return Cluster<PbftState>(
      std::move(deployment), sched,
      [](net::Party& party, int) {
        auto state = std::make_unique<PbftState>();
        state->pbft = std::make_unique<PbftLikeBroadcast>(
            party, "pbft", [s = state.get()](Bytes p) { s->delivered.push_back(std::move(p)); });
        return state;
      },
      corrupted);
}

TEST(PbftBaselineTest, BenignRunDeliversInOrder) {
  Rng rng(1);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(2);
  auto cluster = make_pbft(deployment, sched);
  cluster.start();
  cluster.protocol(1)->pbft->submit(bytes_of("a"));
  cluster.protocol(2)->pbft->submit(bytes_of("b"));
  ASSERT_TRUE(cluster.run_until_all([](PbftState& s) { return s.delivered.size() >= 2; },
                                    100000));
  auto& reference = cluster.protocol(0)->delivered;
  cluster.for_each([&](int, PbftState& s) { EXPECT_EQ(s.delivered, reference); });
}

TEST(PbftBaselineTest, CheaperThanRandomizedStackWhenBenign) {
  // CL99's selling point, reproduced: far fewer messages than the
  // randomized stack for the same workload (measured fully in bench F1).
  Rng rng(3);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(3);
  auto cluster = make_pbft(deployment, sched);
  cluster.start();
  cluster.protocol(0)->pbft->submit(bytes_of("x"));
  ASSERT_TRUE(cluster.run_until_all([](PbftState& s) { return s.delivered.size() >= 1; },
                                    100000));
  EXPECT_LT(cluster.simulator().total_messages(), 60u);
}

TEST(PbftBaselineTest, LeaderStarvationBlocksProgress) {
  // The adversarial scheduler withholds all leader traffic: nothing is
  // delivered even after a long run — the liveness failure the paper
  // predicts for deterministic FD-based protocols.
  Rng rng(4);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::BlockPartyScheduler sched(4, /*victim=*/0);  // leader of view 0
  auto cluster = make_pbft(deployment, sched);
  cluster.start();
  cluster.protocol(1)->pbft->submit(bytes_of("stuck"));
  cluster.protocol(2)->pbft->submit(bytes_of("stuck2"));
  cluster.simulator().run(30000);
  cluster.for_each([](int id, PbftState& s) {
    if (id != 0) EXPECT_TRUE(s.delivered.empty()) << "party " << id;
  });
}

TEST(PbftBaselineTest, ViewChangeRotatesLeaderAndRecovers) {
  // With a *crashed* leader and a working failure detector, the view
  // change recovers liveness (the benign-FD case).
  Rng rng(5);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(5);
  auto cluster = make_pbft(deployment, sched, crypto::party_bit(0));  // leader crashed
  cluster.start();
  cluster.protocol(1)->pbft->submit(bytes_of("needs view change"));
  cluster.simulator().run(5000);
  // Failure detector fires at the honest parties.
  cluster.for_each([](int, PbftState& s) { s.pbft->on_timeout(); });
  ASSERT_TRUE(cluster.run_until_all([](PbftState& s) { return s.delivered.size() >= 1; },
                                    300000));
  cluster.for_each([](int, PbftState& s) { EXPECT_EQ(s.pbft->view(), 1); });
}

TEST(PbftBaselineTest, AdaptiveStarvationDefeatsViewChanges) {
  // The paper's core argument (§2.2): an adversary that starves whichever
  // party is *currently* leader defeats the failure-detector approach —
  // views keep changing, nothing is ever delivered.
  Rng rng(6);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  // The scheduler reads the current victim adaptively from the harness.
  int current_leader = 0;
  net::BlockPartyScheduler sched(6, [&current_leader](std::uint64_t) {
    return current_leader;
  });
  auto cluster = make_pbft(deployment, sched);
  cluster.start();
  cluster.protocol(1)->pbft->submit(bytes_of("never"));
  // The adversary observes the protocol and retargets instantly: after
  // every delivery it blocks whichever view any party has advanced to.
  int timeouts_fired = 0;
  for (std::uint64_t step = 0; step < 60000; ++step) {
    if (!cluster.simulator().step()) {
      // Only blocked traffic remains: the failure detector fires.
      if (++timeouts_fired > 8) break;
      cluster.for_each([](int, PbftState& s) { s.pbft->on_timeout(); });
      continue;
    }
    int max_view = 0;
    cluster.for_each([&](int, PbftState& s) { max_view = std::max(max_view, s.pbft->view()); });
    current_leader = max_view % 4;
  }
  cluster.for_each([](int, PbftState& s) { EXPECT_TRUE(s.delivered.empty()); });
}

TEST(PbftBaselineTest, CrashedLeaderAutoViewChangeViaTimerWheel) {
  // Same recovery as ViewChangeRotatesLeaderAndRecovers, but nobody calls
  // on_timeout() by hand: the failure detector is armed on the Network
  // timer interface, and the simulator fires it when the crashed leader's
  // silence quiesces the network.  Each honest party with an outstanding
  // request suspects independently; the view change still needs a quorum
  // of suspicions, exactly as with a wall-clock timeout in deployment.
  Rng rng(8);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(8);
  auto cluster = make_pbft(deployment, sched, crypto::party_bit(0));  // leader crashed
  cluster.start();
  cluster.for_each([](int, PbftState& s) { s.pbft->enable_failure_detector(50); });
  cluster.for_each([](int id, PbftState& s) {
    s.pbft->submit(bytes_of("r" + std::to_string(id)));
  });
  ASSERT_TRUE(cluster.run_until_all([](PbftState& s) { return s.delivered.size() >= 3; },
                                    500000));
  auto& reference = cluster.protocol(1)->delivered;
  cluster.for_each([&](int, PbftState& s) {
    EXPECT_GE(s.pbft->view(), 1);  // the automatic view change happened
    EXPECT_EQ(s.delivered, reference);
    // Issue-8 regression: delivery resets the CL99 timeout growth
    // immediately.  Before, the exponent stayed inflated until the next
    // (inflated) timer fired, so one historic view change left the
    // detector 2^k times slower at catching the *next* crashed leader.
    EXPECT_EQ(s.pbft->fd_backoff(), 0u)
        << "timeout growth must snap back at the delivery that proves progress";
  });
}

TEST(PbftBaselineTest, FailureDetectorIdlesWithoutPendingRequests) {
  // The armed detector must not keep the network alive (or force view
  // changes) when there is nothing outstanding — otherwise every idle
  // cluster would churn through views forever.
  Rng rng(9);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(9);
  auto cluster = make_pbft(deployment, sched);
  cluster.start();
  cluster.for_each([](int, PbftState& s) { s.pbft->enable_failure_detector(50); });
  cluster.protocol(1)->pbft->submit(bytes_of("served"));
  ASSERT_TRUE(cluster.run_until_all([](PbftState& s) { return s.delivered.size() >= 1; },
                                    100000));
  // Drain: detectors fire once more, find nothing pending, and disarm.
  cluster.simulator().run(30000);
  cluster.for_each([](int, PbftState& s) { EXPECT_EQ(s.pbft->view(), 0); });
}

// ---- reliable-only --------------------------------------------------------

struct RoState {
  std::unique_ptr<ReliableOnlyBroadcast> ro;
  std::vector<std::pair<int, Bytes>> delivered;
};

Cluster<RoState> make_ro(adversary::Deployment deployment, net::Scheduler& sched) {
  return Cluster<RoState>(
      std::move(deployment), sched,
      [](net::Party& party, int) {
        auto state = std::make_unique<RoState>();
        state->ro = std::make_unique<ReliableOnlyBroadcast>(
            party, "ro", [s = state.get()](int origin, Bytes p) {
              s->delivered.emplace_back(origin, std::move(p));
            });
        return state;
      });
}

TEST(ReliableOnlyTest, AllMessagesDeliveredEverywhere) {
  Rng rng(7);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(7);
  auto cluster = make_ro(deployment, sched);
  cluster.start();
  cluster.for_each([](int id, RoState& s) {
    s.ro->submit(bytes_of("m" + std::to_string(id)));
    s.ro->submit(bytes_of("n" + std::to_string(id)));
  });
  ASSERT_TRUE(cluster.run_until_all([](RoState& s) { return s.delivered.size() >= 8; },
                                    1000000));
  // Set agreement: same multiset everywhere.
  auto as_set = [](const std::vector<std::pair<int, Bytes>>& v) {
    std::multiset<Bytes> out;
    for (const auto& [o, p] : v) out.insert(p);
    return out;
  };
  auto reference = as_set(cluster.protocol(0)->delivered);
  cluster.for_each([&](int, RoState& s) { EXPECT_EQ(as_set(s.delivered), reference); });
}

TEST(ReliableOnlyTest, OrderDivergesUnderConcurrency) {
  // The defining deficiency vs. atomic broadcast: under concurrent senders
  // and adversarial reordering, local delivery orders differ between
  // parties for at least one seed — replicated state would fork.
  bool diverged = false;
  for (std::uint64_t seed = 1; seed <= 10 && !diverged; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 31);
    auto cluster = make_ro(deployment, sched);
    cluster.start();
    cluster.for_each([](int id, RoState& s) {
      for (int k = 0; k < 3; ++k) {
        s.ro->submit(bytes_of("p" + std::to_string(id) + "-" + std::to_string(k)));
      }
    });
    if (!cluster.run_until_all([](RoState& s) { return s.delivered.size() >= 12; }, 1000000)) {
      continue;
    }
    auto& reference = cluster.protocol(0)->delivered;
    cluster.for_each([&](int, RoState& s) {
      if (s.delivered != reference) diverged = true;
    });
  }
  EXPECT_TRUE(diverged) << "expected at least one divergent order across seeds";
}

}  // namespace
}  // namespace sintra::protocols
