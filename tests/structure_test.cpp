// Adversary-structure tests (§4): monotonicity, Q³/Q², the threshold
// special case, quorum rules, and the paper's two example structures.
#include <gtest/gtest.h>

#include "adversary/examples.hpp"

namespace sintra::adversary {
namespace {

using crypto::full_set;
using crypto::party_bit;
using crypto::PartySet;
using crypto::set_of;

TEST(StructureTest, SubsumedSetsRemoved) {
  AdversaryStructure s(4, {set_of({0, 1}), set_of({0}), set_of({2})});
  EXPECT_EQ(s.maximal_sets().size(), 2u);
  EXPECT_TRUE(s.corruptible(set_of({0})));
  EXPECT_TRUE(s.corruptible(set_of({0, 1})));
  EXPECT_TRUE(s.corruptible(set_of({2})));
  EXPECT_FALSE(s.corruptible(set_of({3})));
  EXPECT_FALSE(s.corruptible(set_of({0, 2})));
}

TEST(StructureTest, MonotoneByConstruction) {
  AdversaryStructure s(5, {set_of({0, 1, 2})});
  // Every subset of a corruptible set is corruptible.
  for (PartySet sub = 0; sub <= set_of({0, 1, 2}); ++sub) {
    if ((sub & ~set_of({0, 1, 2})) == 0) {
      EXPECT_TRUE(s.corruptible(sub));
    }
  }
}

TEST(StructureTest, EmptySetAlwaysCorruptible) {
  AdversaryStructure s(3, {0});
  EXPECT_TRUE(s.corruptible(0));
  EXPECT_FALSE(s.corruptible(party_bit(0)));
}

TEST(StructureTest, ThresholdSpecialCase) {
  AdversaryStructure s = AdversaryStructure::threshold(7, 2);
  EXPECT_EQ(s.maximal_sets().size(), 21u);  // C(7,2)
  EXPECT_TRUE(s.corruptible(set_of({3, 6})));
  EXPECT_FALSE(s.corruptible(set_of({0, 1, 2})));
  EXPECT_TRUE(s.satisfies_q3());
  EXPECT_EQ(s.max_corruptions(), 2);
}

TEST(StructureTest, ThresholdQ3Boundary) {
  EXPECT_TRUE(AdversaryStructure::threshold(4, 1).satisfies_q3());
  EXPECT_FALSE(AdversaryStructure::threshold(3, 1).satisfies_q3());
  EXPECT_TRUE(AdversaryStructure::threshold(7, 2).satisfies_q3());
  EXPECT_FALSE(AdversaryStructure::threshold(6, 2).satisfies_q3());
  EXPECT_FALSE(AdversaryStructure::threshold(9, 3).satisfies_q3());
  EXPECT_TRUE(AdversaryStructure::threshold(10, 3).satisfies_q3());
}

TEST(StructureTest, Q2Boundary) {
  EXPECT_TRUE(AdversaryStructure::threshold(3, 1).satisfies_q2());
  EXPECT_FALSE(AdversaryStructure::threshold(2, 1).satisfies_q2());
}

TEST(StructureTest, ZeroThreshold) {
  AdversaryStructure s = AdversaryStructure::threshold(3, 0);
  EXPECT_TRUE(s.corruptible(0));
  EXPECT_FALSE(s.corruptible(party_bit(1)));
  EXPECT_TRUE(s.satisfies_q3());
}

TEST(StructureTest, Example1MatchesPaper) {
  // "A1* consists of {1,...,4} and of all pairs of servers that are not
  // both of class a": 1 + (C(9,2) - C(4,2)) = 31 maximal sets.
  auto s = example1_access().to_adversary_structure(9);
  EXPECT_EQ(s.maximal_sets().size(), 31u);
  EXPECT_TRUE(s.satisfies_q3());
  EXPECT_EQ(s.max_corruptions(), 4);

  // The whole of class a (servers 0..3) is corruptible.
  EXPECT_TRUE(s.corruptible(set_of({0, 1, 2, 3})));
  // Any pair not both class a.
  EXPECT_TRUE(s.corruptible(set_of({4, 8})));
  EXPECT_TRUE(s.corruptible(set_of({0, 7})));
  // A pair inside class a is corruptible (subset of class a).
  EXPECT_TRUE(s.corruptible(set_of({0, 1})));
  // Three servers across two classes are NOT corruptible.
  EXPECT_FALSE(s.corruptible(set_of({0, 4, 8})));
  // Class a plus one more is not corruptible.
  EXPECT_FALSE(s.corruptible(set_of({0, 1, 2, 3, 4})));
}

TEST(StructureTest, Example1BestThresholdIsTwo) {
  // "tolerates the corruption of at most two arbitrary servers": a pure
  // threshold scheme on 9 servers tolerating Q3 allows t = 2, and A1
  // strictly contains that threshold structure.
  auto s = example1_access().to_adversary_structure(9);
  EXPECT_EQ(s.best_q3_threshold(), 2);
}

TEST(StructureTest, Example2IntendedStructure) {
  AdversaryStructure s = example2_structure();
  EXPECT_EQ(s.maximal_sets().size(), 16u);
  EXPECT_TRUE(s.satisfies_q3());
  EXPECT_EQ(s.max_corruptions(), 7);  // 4 + 4 - 1 (shared cell)

  // One location + one OS simultaneously: corruptible.
  PartySet bad = 0;
  for (int k = 0; k < 4; ++k) {
    bad |= party_bit(example2_party(1, k));
    bad |= party_bit(example2_party(k, 2));
  }
  EXPECT_TRUE(s.corruptible(bad));
  // Two full locations: NOT corruptible (8 servers, no single OS covers).
  PartySet two_locations = 0;
  for (int k = 0; k < 4; ++k) {
    two_locations |= party_bit(example2_party(0, k));
    two_locations |= party_bit(example2_party(1, k));
  }
  EXPECT_FALSE(s.corruptible(two_locations));
}

TEST(StructureTest, Example2BeatsAnyThreshold) {
  // "all solutions based on thresholds can tolerate at most five
  // corruptions among the 16 servers" (Q3 forces t <= 5), while the
  // generalized structure tolerates specific sets of 7.
  AdversaryStructure s = example2_structure();
  EXPECT_EQ(s.max_corruptions(), 7);
  EXPECT_FALSE(AdversaryStructure::threshold(16, 6).satisfies_q3());
  EXPECT_TRUE(AdversaryStructure::threshold(16, 5).satisfies_q3());
}

TEST(StructureTest, Example2FormulaDerivedStructureViolatesQ3) {
  // Documented subtlety (DESIGN.md): deriving A from the Example 2 sharing
  // formula (maximal unqualified sets) yields a strictly larger family
  // that VIOLATES Q3 — e.g. one full location plus one scattered server
  // per other location is unqualified but fits in no location ∪ OS set.
  auto derived = example2_access().to_adversary_structure(16);
  EXPECT_FALSE(derived.satisfies_q3());
  EXPECT_GT(derived.maximal_sets().size(), 16u);
}

TEST(StructureTest, DescribeIsReadable) {
  AdversaryStructure s(3, {set_of({0, 1})});
  EXPECT_NE(s.describe().find("{0,1}"), std::string::npos);
}

TEST(FormulaTest, ThresholdGateEvaluation) {
  auto f = Formula::threshold(2, {Formula::leaf(0), Formula::leaf(1), Formula::leaf(2)});
  EXPECT_FALSE(f.eval(0));
  EXPECT_FALSE(f.eval(set_of({1})));
  EXPECT_TRUE(f.eval(set_of({0, 2})));
  EXPECT_TRUE(f.eval(set_of({0, 1, 2})));
}

TEST(FormulaTest, AndOrGates) {
  auto land = Formula::land({Formula::leaf(0), Formula::leaf(1)});
  EXPECT_TRUE(land.eval(set_of({0, 1})));
  EXPECT_FALSE(land.eval(set_of({0})));
  auto lor = Formula::lor({Formula::leaf(0), Formula::leaf(1)});
  EXPECT_TRUE(lor.eval(set_of({1})));
  EXPECT_FALSE(lor.eval(set_of({2})));
}

TEST(FormulaTest, NestedCounts) {
  auto f = Formula::land({Formula::lor({Formula::leaf(0), Formula::leaf(1)}),
                          Formula::leaf(0)});
  EXPECT_EQ(f.num_leaves(), 3);
  EXPECT_EQ(f.max_party(), 2);
}

TEST(FormulaTest, InvalidGatesRejected) {
  EXPECT_THROW(Formula::threshold(0, {Formula::leaf(0)}), ProtocolError);
  EXPECT_THROW(Formula::threshold(2, {Formula::leaf(0)}), ProtocolError);
  EXPECT_THROW(Formula::threshold(1, {}), ProtocolError);
  EXPECT_THROW(Formula::leaf(-1), ProtocolError);
}

TEST(FormulaTest, ThresholdFormulaStructureMatches) {
  // Θ_{t+1}^n access formula derives exactly the threshold structure.
  std::vector<Formula> leaves;
  for (int i = 0; i < 5; ++i) leaves.push_back(Formula::leaf(i));
  auto access = Formula::threshold(2, std::move(leaves));  // t = 1
  auto derived = access.to_adversary_structure(5);
  auto expected = AdversaryStructure::threshold(5, 1);
  EXPECT_EQ(derived.maximal_sets().size(), expected.maximal_sets().size());
  for (PartySet set : expected.maximal_sets()) EXPECT_TRUE(derived.corruptible(set));
}

TEST(FormulaTest, QuorumFormula) {
  auto structure = AdversaryStructure::threshold(4, 1);
  auto quorum = Formula::quorum_formula(structure);
  // Satisfied exactly by sets containing some 3-complement.
  EXPECT_TRUE(quorum.eval(set_of({0, 1, 2})));
  EXPECT_TRUE(quorum.eval(set_of({1, 2, 3})));
  EXPECT_TRUE(quorum.eval(full_set(4)));
  EXPECT_FALSE(quorum.eval(set_of({0, 1})));
}

TEST(QuorumTest, ThresholdRules) {
  ThresholdQuorum q(7, 2);
  EXPECT_TRUE(q.is_quorum(full_set(5)));
  EXPECT_FALSE(q.is_quorum(full_set(4)));
  EXPECT_TRUE(q.exceeds_fault_set(full_set(3)));
  EXPECT_FALSE(q.exceeds_fault_set(full_set(2)));
  EXPECT_TRUE(q.is_vote_quorum(full_set(5)));
  EXPECT_FALSE(q.is_vote_quorum(full_set(4)));
  EXPECT_TRUE(q.corruptible(set_of({1, 5})));
  EXPECT_FALSE(q.corruptible(set_of({1, 5, 6})));
  EXPECT_THROW(ThresholdQuorum(6, 2), ProtocolError);
}

TEST(QuorumTest, GeneralRulesMatchThresholdOnThresholdStructure) {
  // The generalized predicates instantiated with a threshold structure
  // must coincide with the popcount rules — on every subset.
  ThresholdQuorum threshold(7, 2);
  GeneralQuorum general(AdversaryStructure::threshold(7, 2));
  for (PartySet set = 0; set < (PartySet{1} << 7); ++set) {
    EXPECT_EQ(general.corruptible(set), threshold.corruptible(set)) << set;
    EXPECT_EQ(general.is_quorum(set), threshold.is_quorum(set)) << set;
    EXPECT_EQ(general.exceeds_fault_set(set), threshold.exceeds_fault_set(set)) << set;
    EXPECT_EQ(general.is_vote_quorum(set), threshold.is_vote_quorum(set)) << set;
  }
}

TEST(QuorumTest, GeneralQuorumOnExample1) {
  GeneralQuorum q(example1_access().to_adversary_structure(9));
  // Complement of class a is a quorum.
  EXPECT_TRUE(q.is_quorum(set_of({4, 5, 6, 7, 8})));
  // Complement of a pair is a quorum.
  EXPECT_TRUE(q.is_quorum(full_set(9) & ~set_of({4, 8})));
  // Class a alone is not (its complement — class a — IS corruptible, but
  // the heard set must contain a full complement of some corruptible set;
  // {0,1,2,3}'s complement is {4..8}, and P∖{0,1,2,3} ∉ heard).
  EXPECT_FALSE(q.is_quorum(set_of({0, 1, 2, 3})));
  // Vote quorum: removing any corruptible set must leave a non-corruptible
  // remainder.
  EXPECT_TRUE(q.is_vote_quorum(full_set(9)));
  EXPECT_FALSE(q.is_vote_quorum(set_of({0, 1, 2, 3, 4})));
}

TEST(QuorumTest, GeneralQuorumRejectsNonQ3) {
  EXPECT_THROW(GeneralQuorum(AdversaryStructure::threshold(6, 2)), ProtocolError);
}

TEST(DeploymentTest, ThresholdRequiresQ3) {
  Rng rng(1);
  EXPECT_THROW(adversary::Deployment::threshold(6, 2, rng), ProtocolError);
}

TEST(DeploymentTest, GeneralRejectsIncompatibleStructure) {
  // An explicit structure containing a set that the sharing formula would
  // qualify must be rejected.
  Rng rng(2);
  std::vector<Formula> leaves;
  for (int i = 0; i < 4; ++i) leaves.push_back(Formula::leaf(i));
  Formula access = Formula::threshold(2, std::move(leaves));  // any 2 reconstruct
  AdversaryStructure structure(4, {set_of({0, 1})});          // but {0,1} "corruptible"
  EXPECT_THROW(Deployment::general_with_structure(access, structure, rng), ProtocolError);
}

}  // namespace
}  // namespace sintra::adversary
