// Consistent broadcast tests: delivery with certificate, transferability,
// and the uniqueness property against an equivocating sender.
#include <gtest/gtest.h>

#include "protocols/consistent.hpp"
#include "protocols/harness.hpp"

namespace sintra::protocols {
namespace {

struct CbcState {
  std::unique_ptr<ConsistentBroadcast> cbc;
  std::optional<CertifiedMessage> delivered;
};

Cluster<CbcState> make_cluster(adversary::Deployment deployment, net::Scheduler& sched,
                               int sender, crypto::PartySet corrupted = 0) {
  return Cluster<CbcState>(
      std::move(deployment), sched,
      [sender](net::Party& party, int) {
        auto state = std::make_unique<CbcState>();
        state->cbc = std::make_unique<ConsistentBroadcast>(
            party, "cbc/0", sender,
            [s = state.get()](CertifiedMessage cm) { s->delivered = std::move(cm); });
        return state;
      },
      corrupted);
}

TEST(CbcTest, HonestSenderAllDeliverWithValidCertificate) {
  Rng rng(1);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(2);
  auto cluster = make_cluster(deployment, sched, 0);
  cluster.start();
  cluster.protocol(0)->cbc->start(bytes_of("certified payload"));
  ASSERT_TRUE(cluster.run_until_all([](CbcState& s) { return s.delivered.has_value(); },
                                    100000));
  const auto& pk = deployment.keys->public_keys().cert_sig;
  cluster.for_each([&](int, CbcState& s) {
    EXPECT_EQ(s.delivered->message, bytes_of("certified payload"));
    EXPECT_TRUE(verify_certificate(pk, "cbc/0", *s.delivered));
  });
}

TEST(CbcTest, CertificateIsTransferable) {
  // A third party holding only the public key verifies the certificate —
  // and it does not verify for a different instance tag or message.
  Rng rng(3);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(4);
  auto cluster = make_cluster(deployment, sched, 2);
  cluster.start();
  cluster.protocol(2)->cbc->start(bytes_of("m"));
  ASSERT_TRUE(cluster.run_until_all([](CbcState& s) { return s.delivered.has_value(); },
                                    100000));
  const auto& pk = deployment.keys->public_keys().cert_sig;
  CertifiedMessage cm = *cluster.protocol(0)->delivered;
  EXPECT_TRUE(verify_certificate(pk, "cbc/0", cm));
  EXPECT_FALSE(verify_certificate(pk, "cbc/1", cm));
  CertifiedMessage tampered = cm;
  tampered.message = bytes_of("other");
  EXPECT_FALSE(verify_certificate(pk, "cbc/0", tampered));
}

TEST(CbcTest, ToleratesCrashFault) {
  Rng rng(5);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(6);
  auto cluster = make_cluster(deployment, sched, 0, crypto::party_bit(2));
  cluster.start();
  cluster.protocol(0)->cbc->start(bytes_of("with crash"));
  EXPECT_TRUE(cluster.run_until_all([](CbcState& s) { return s.delivered.has_value(); },
                                    100000));
}

TEST(CbcTest, SerializationRoundTrip) {
  CertifiedMessage cm{bytes_of("msg"), crypto::BigInt(123456789)};
  Writer w;
  cm.encode(w);
  Reader r(w.data());
  CertifiedMessage decoded = CertifiedMessage::decode(r);
  r.expect_done();
  EXPECT_EQ(decoded.message, cm.message);
  EXPECT_EQ(decoded.certificate, cm.certificate);
}

/// Equivocating sender driving the real protocol twice: collects shares
/// for two different messages by sending SEND("A") to some parties and
/// SEND("B") to others.  Uniqueness: at most one certificate can form.
class EquivocatingCbcSender final : public net::Process {
 public:
  EquivocatingCbcSender(net::Simulator& sim, int id) : sim_(sim), id_(id) {}
  void on_start() override {
    for (int to = 0; to < sim_.n(); ++to) {
      if (to == id_) continue;
      Writer w;
      w.u8(0);  // kSend
      w.bytes(bytes_of(to < 2 ? "AAAA" : "BBBB"));
      net::Message m;
      m.from = id_;
      m.to = to;
      m.tag = "cbc/0";
      m.payload = w.take();
      sim_.submit(std::move(m));
    }
  }
  void on_message(const net::Message&) override {
    // The attacker receives signature shares but can never gather a quorum
    // for either message: it only relays nothing.  (Even an attacker that
    // combined what it has cannot reach a quorum for both values, since
    // every honest party signs only once.)
  }

 private:
  net::Simulator& sim_;
  int id_;
};

TEST(CbcTest, EquivocatingSenderCannotCertifyTwoMessages) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 13);
    auto cluster = make_cluster(deployment, sched, 3);
    cluster.attach_custom(3,
                          std::make_unique<EquivocatingCbcSender>(cluster.simulator(), 3));
    cluster.start();
    cluster.simulator().run(500000);
    // 2 parties signed "AAAA", 1 signed "BBBB" (quorum = 3): no FINAL can
    // have been produced, so nothing was delivered; and in no case may two
    // different certified messages exist.
    std::optional<Bytes> seen;
    cluster.for_each([&](int, CbcState& s) {
      if (!s.delivered.has_value()) return;
      if (!seen.has_value()) seen = s.delivered->message;
      EXPECT_EQ(s.delivered->message, *seen) << "uniqueness violated";
    });
  }
}

}  // namespace
}  // namespace sintra::protocols
