// Multi-valued validated Byzantine agreement tests: agreement, external
// validity ("no value nobody proposed"), termination, fetch path.
#include <gtest/gtest.h>

#include "protocols/harness.hpp"
#include "protocols/vba.hpp"

namespace sintra::protocols {
namespace {

using crypto::party_bit;

struct VbaState {
  std::unique_ptr<Vba> vba;
  std::optional<Bytes> decision;
};

/// Predicate: value must start with the prefix "ok:".
bool ok_prefix(BytesView value) {
  return value.size() >= 3 && value[0] == 'o' && value[1] == 'k' && value[2] == ':';
}

Cluster<VbaState> make_cluster(adversary::Deployment deployment, net::Scheduler& sched,
                               crypto::PartySet corrupted = 0, std::uint64_t seed = 1) {
  return Cluster<VbaState>(
      std::move(deployment), sched,
      [](net::Party& party, int) {
        auto state = std::make_unique<VbaState>();
        state->vba = std::make_unique<Vba>(
            party, "vba/0", ok_prefix,
            [s = state.get()](Bytes value) { s->decision = std::move(value); });
        return state;
      },
      corrupted, 0, seed);
}

TEST(VbaTest, AgreementOnSomeProposal) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 11);
    auto cluster = make_cluster(deployment, sched, 0, seed);
    cluster.start();
    std::set<Bytes> proposals;
    cluster.for_each([&](int id, VbaState& s) {
      Bytes value = bytes_of("ok:proposal-" + std::to_string(id));
      proposals.insert(value);
      s.vba->propose(std::move(value));
    });
    ASSERT_TRUE(cluster.run_until_all([](VbaState& s) { return s.decision.has_value(); },
                                      3000000))
        << "seed " << seed;
    std::optional<Bytes> common;
    cluster.for_each([&](int, VbaState& s) {
      if (!common.has_value()) common = s.decision;
      EXPECT_EQ(*s.decision, *common) << "agreement violated";
    });
    // External validity + "someone proposed it".
    EXPECT_TRUE(proposals.contains(*common));
    EXPECT_TRUE(ok_prefix(*common));
  }
}

TEST(VbaTest, ProposalViolatingPredicateRejectedLocally) {
  Rng rng(1);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(1);
  auto cluster = make_cluster(deployment, sched);
  cluster.start();
  EXPECT_THROW(cluster.protocol(0)->vba->propose(bytes_of("bad-prefix")), ProtocolError);
}

TEST(VbaTest, ToleratesCrashedParties) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(7, 2, rng);
    net::RandomScheduler sched(seed * 13);
    auto cluster = make_cluster(deployment, sched, party_bit(1) | party_bit(4), seed);
    cluster.start();
    cluster.for_each([](int id, VbaState& s) {
      s.vba->propose(bytes_of("ok:" + std::to_string(id)));
    });
    EXPECT_TRUE(cluster.run_until_all([](VbaState& s) { return s.decision.has_value(); },
                                      5000000))
        << "seed " << seed;
  }
}

TEST(VbaTest, IdenticalProposalsDecideThatValue) {
  Rng rng(9);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(9);
  auto cluster = make_cluster(deployment, sched);
  cluster.start();
  cluster.for_each([](int, VbaState& s) { s.vba->propose(bytes_of("ok:same")); });
  ASSERT_TRUE(cluster.run_until_all([](VbaState& s) { return s.decision.has_value(); },
                                    3000000));
  cluster.for_each([](int, VbaState& s) { EXPECT_EQ(*s.decision, bytes_of("ok:same")); });
}

TEST(VbaTest, AdversarialSchedulerTerminates) {
  Rng rng(21);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::LifoScheduler sched(5);
  auto cluster = make_cluster(deployment, sched, 0, 21);
  cluster.start();
  cluster.for_each([](int id, VbaState& s) {
    s.vba->propose(bytes_of("ok:v" + std::to_string(id)));
  });
  EXPECT_TRUE(cluster.run_until_all([](VbaState& s) { return s.decision.has_value(); },
                                    5000000));
}

TEST(VbaTest, CandidateCountSmall) {
  // Expected-constant candidate loop: across seeds the loop should hit an
  // early candidate (statistically; the bound here is generous).
  int max_tried = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 23);
    auto cluster = make_cluster(deployment, sched, 0, seed);
    cluster.start();
    cluster.for_each([](int id, VbaState& s) {
      s.vba->propose(bytes_of("ok:" + std::to_string(id)));
    });
    ASSERT_TRUE(cluster.run_until_all([](VbaState& s) { return s.decision.has_value(); },
                                      3000000));
    cluster.for_each([&](int, VbaState& s) {
      max_tried = std::max(max_tried, s.vba->candidates_tried());
    });
  }
  EXPECT_LE(max_tried, 8);
}

TEST(VbaTest, LargerSystem) {
  Rng rng(31);
  auto deployment = adversary::Deployment::threshold(10, 3, rng);
  net::RandomScheduler sched(31);
  auto cluster = make_cluster(deployment, sched, party_bit(0) | party_bit(5) | party_bit(9),
                              31);
  cluster.start();
  cluster.for_each([](int id, VbaState& s) {
    s.vba->propose(bytes_of("ok:" + std::to_string(id)));
  });
  EXPECT_TRUE(cluster.run_until_all([](VbaState& s) { return s.decision.has_value(); },
                                    20000000));
}

}  // namespace
}  // namespace sintra::protocols
