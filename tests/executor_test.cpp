// Multi-core protocol executors (issue 7 tentpole).
//
// Unit layer: the ExecutorPool's routing and ordering contract — stable
// tag-root assignment, per-tree FIFO under concurrent producers, drain-on-
// stop, inline sequential mode.
//
// Cluster layer: four NetworkedNode+LoopbackHub parties each hosting G
// independent atomic broadcast groups, run with 0 and with 4 executors.
// True concurrent runs cannot be instruction-identical to sequential ones
// across groups, so the assertions target what the design guarantees:
//   (a) within one run, every node agrees on each group's delivery order
//       (atomic broadcast safety is untouched by executor routing);
//   (b) the delivered payload sets are identical between E=0 and E=4;
//   (c) a node's WAL snapshot taken after the *concurrent* run restores
//       into a fresh sequential party and reproduces that node's per-group
//       delivery sequences exactly — the determinism half of the contract
//       (WAL appends stay in pump arrival order, replay is inline).
// Run under TSan via the `transport` CI label: the same test doubles as
// the data-race probe for the whole Party/ExecutorPool/outbox path.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "adversary/quorum.hpp"
#include "common/executor.hpp"
#include "common/rng.hpp"
#include "net/transport/loopback.hpp"
#include "net/transport/networked_node.hpp"
#include "protocols/atomic.hpp"
#include "protocols/harness.hpp"

namespace sintra {
namespace {

using common::ExecutorPool;
using net::transport::LoopbackHub;
using net::transport::NetworkedNode;
using protocols::AtomicBroadcast;
using protocols::HostedParty;

// ---- unit: pool mechanics ---------------------------------------------------

TEST(ExecutorPoolTest, TagRootTakesPrefixBeforeSlash) {
  EXPECT_EQ(ExecutorPool::tag_root("abc0/rbc/5/echo"), "abc0");
  EXPECT_EQ(ExecutorPool::tag_root("abc0"), "abc0");
  EXPECT_EQ(ExecutorPool::tag_root(""), "");
  EXPECT_EQ(ExecutorPool::tag_root("/x"), "");
}

TEST(ExecutorPoolTest, AssignmentIsStableAndTreeWide) {
  ExecutorPool pool(4);
  // Every tag in one instance tree routes to the same executor; the
  // assignment is a pure function of the root segment.
  const std::size_t lane = pool.executor_for("abc2");
  EXPECT_EQ(pool.executor_for("abc2/rbc/0"), lane);
  EXPECT_EQ(pool.executor_for("abc2/vba/7/echo"), lane);
  EXPECT_EQ(pool.executor_for("abc2"), lane);
  EXPECT_EQ(ExecutorPool::tag_hash(ExecutorPool::tag_root("abc2/rbc/0")),
            ExecutorPool::tag_hash("abc2"));
  EXPECT_NE(ExecutorPool::tag_hash("abc1"), ExecutorPool::tag_hash("abc2"));
  pool.stop();
}

TEST(ExecutorPoolTest, PerTreeFifoUnderConcurrentProducers) {
  constexpr int kTags = 8;
  constexpr int kPerTag = 500;
  ExecutorPool pool(4);
  // One result vector per tag: all tasks of a tag run on one lane in post
  // order, so appends to its vector are serialized by construction — TSan
  // verifies exactly that claim.
  std::vector<std::vector<int>> seen(kTags);
  std::vector<std::thread> producers;
  producers.reserve(kTags);
  for (int tag = 0; tag < kTags; ++tag) {
    producers.emplace_back([&pool, &seen, tag] {
      const std::string name = "tree" + std::to_string(tag);
      const std::size_t lane = pool.executor_for(name);
      for (int i = 0; i < kPerTag; ++i) {
        pool.post(lane, [&seen, tag, i] { seen[static_cast<std::size_t>(tag)].push_back(i); });
      }
    });
  }
  for (auto& producer : producers) producer.join();
  pool.wait_idle();
  pool.stop();
  const ExecutorPool::Stats stats = pool.stats();
  EXPECT_EQ(stats.posted, static_cast<std::uint64_t>(kTags) * kPerTag);
  for (int tag = 0; tag < kTags; ++tag) {
    const auto& order = seen[static_cast<std::size_t>(tag)];
    ASSERT_EQ(order.size(), static_cast<std::size_t>(kPerTag));
    for (int i = 0; i < kPerTag; ++i) {
      ASSERT_EQ(order[static_cast<std::size_t>(i)], i) << "tag " << tag << ": FIFO violated";
    }
  }
}

TEST(ExecutorPoolTest, StopDrainsEverythingThenRunsInline) {
  std::atomic<int> ran{0};
  ExecutorPool pool(2);
  for (int i = 0; i < 1000; ++i) {
    pool.post(static_cast<std::size_t>(i) % 2, [&ran] { ran.fetch_add(1); });
  }
  pool.stop();
  EXPECT_EQ(ran.load(), 1000) << "stop() must drain, not discard";
  pool.post(0, [&ran] { ran.fetch_add(1); });  // post-after-stop runs inline
  EXPECT_EQ(ran.load(), 1001);
  pool.stop();  // idempotent
}

TEST(ExecutorPoolTest, SequentialModeRunsInline) {
  ExecutorPool pool(0);
  EXPECT_TRUE(pool.sequential());
  EXPECT_EQ(pool.executors(), 0u);
  int ran = 0;
  pool.post(pool.executor_for("any"), [&ran] { ++ran; });
  EXPECT_EQ(ran, 1) << "sequential post must run before returning";
  pool.wait_idle();  // trivially idle
}

// ---- cluster: multi-group atomic broadcast, E=0 vs E=4 ----------------------

constexpr int kN = 4;
constexpr int kGroups = 3;
constexpr int kPerGroup = 2;
constexpr std::uint64_t kSeed = 11;

std::string group_tag(int g) { return "abc" + std::to_string(g); }

struct MultiState {
  std::vector<std::unique_ptr<AtomicBroadcast>> groups;
  /// delivered[g] is only ever written by group g's instance tree — one
  /// executor lane — so it needs no lock; `total` is what the (racing)
  /// pump-side done() predicate reads.
  std::vector<std::vector<Bytes>> delivered;
  std::atomic<std::size_t> total{0};
};

std::unique_ptr<MultiState> make_multi_state(net::Party& party) {
  auto state = std::make_unique<MultiState>();
  state->delivered.resize(kGroups);
  for (int g = 0; g < kGroups; ++g) {
    // Construct each group inside with_instance so construction-time
    // handler registrations and timers belong to that group's tree.
    party.with_instance(group_tag(g), [&party, &state, g] {
      state->groups.push_back(std::make_unique<AtomicBroadcast>(
          party, group_tag(g), [s = state.get(), g](int, Bytes payload) {
            s->delivered[static_cast<std::size_t>(g)].push_back(std::move(payload));
            s->total.fetch_add(1, std::memory_order_release);
          }));
    });
  }
  return state;
}

struct ExecCluster {
  LoopbackHub hub;
  std::vector<std::unique_ptr<NetworkedNode>> nodes;
  std::vector<std::unique_ptr<HostedParty<MultiState>>> hosts;
  std::vector<std::unique_ptr<ExecutorPool>> execs;

  ExecCluster(const adversary::Deployment& deployment, std::size_t executors) : hub(kN, kSeed) {
    for (int id = 0; id < kN; ++id) {
      NetworkedNode::Config config;
      config.node_id = id;
      config.n = kN;
      auto node = std::make_unique<NetworkedNode>(config);
      auto pool = std::make_unique<ExecutorPool>(executors);
      auto host = std::make_unique<HostedParty<MultiState>>(
          *node, id, deployment, kSeed * 7919 + static_cast<std::uint64_t>(id),
          [&pool](net::Party& party) {
            party.enable_wal();
            party.set_executors(pool.get());
            return make_multi_state(party);
          });
      node->set_executors(pool.get());
      node->attach(*host);
      node->bind_transport_batched([this, id](int peer, std::vector<net::transport::GroupPayload> payloads) {
        hub.send_many(id, peer, std::move(payloads));
      });
      hub.set_receiver(id, [raw = node.get()](int from, BytesView payload) {
        raw->on_transport_receive(from, payload);
      });
      nodes.push_back(std::move(node));
      hosts.push_back(std::move(host));
      execs.push_back(std::move(pool));
    }
  }

  ~ExecCluster() { stop(); }

  /// Join the executor threads; after this, reading delivered[] from the
  /// test thread is synchronized (stop() joins, join happens-before).
  void stop() {
    for (auto& pool : execs) pool->stop();
  }

  MultiState& state(int id) { return hosts[static_cast<std::size_t>(id)]->protocol(); }

  bool run_until_total(std::size_t total, std::size_t max_iters = 5'000'000) {
    auto done = [&] {
      for (auto& host : hosts) {
        if (host->protocol().total.load(std::memory_order_acquire) < total) return false;
      }
      return true;
    };
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
      if (done()) return true;
      bool progressed = false;
      for (auto& node : nodes) progressed = (node->poll() > 0) || progressed;
      progressed = hub.step() || progressed;
      if (!progressed) {
        // Quiescent wire: let the executors finish what they hold, flush
        // whatever they buffered, then run a retransmit/ack pass.
        for (auto& pool : execs) pool->wait_idle();
        for (auto& node : nodes) node->poll();
        hub.tick();
        std::this_thread::yield();
      }
    }
    return done();
  }
};

Bytes payload_for(int g, int i) {
  return bytes_of("g" + std::to_string(g) + "/p" + std::to_string(i));
}

void submit_all(ExecCluster& cluster) {
  for (int g = 0; g < kGroups; ++g) {
    for (int i = 0; i < kPerGroup; ++i) {
      auto& host = *cluster.hosts[static_cast<std::size_t>((g + i) % kN)];
      // External submits are out-of-band touches of the group's tree:
      // scope them so concurrent mode attributes the self-send correctly.
      host.party().with_instance(group_tag(g), [&host, g, i] {
        host.protocol().groups[static_cast<std::size_t>(g)]->submit(payload_for(g, i));
      });
    }
  }
}

/// Every payload a node delivered, across groups, as an unordered multiset.
std::multiset<Bytes> delivered_set(const MultiState& state) {
  std::multiset<Bytes> set;
  for (const auto& group : state.delivered) {
    for (const Bytes& payload : group) set.insert(payload);
  }
  return set;
}

TEST(ExecutorClusterTest, ConcurrentRunAgreesMatchesSequentialAndReplays) {
  Rng rng(41);
  const auto deployment = adversary::Deployment::threshold(kN, 1, rng);
  constexpr auto kTotal = static_cast<std::size_t>(kGroups) * kPerGroup;

  auto run = [&deployment](std::size_t executors) {
    auto cluster = std::make_unique<ExecCluster>(deployment, executors);
    submit_all(*cluster);
    EXPECT_TRUE(cluster->run_until_total(kTotal)) << "executors=" << executors;
    cluster->stop();
    return cluster;
  };
  const auto sequential = run(0);
  const auto concurrent = run(4);

  // (a) agreement: within each run, all nodes deliver each group's
  // payloads in the same order — safety is independent of executor count.
  for (auto* cluster : {sequential.get(), concurrent.get()}) {
    const MultiState& reference = cluster->state(0);
    for (int id = 1; id < kN; ++id) {
      for (int g = 0; g < kGroups; ++g) {
        EXPECT_EQ(cluster->state(id).delivered[static_cast<std::size_t>(g)],
                  reference.delivered[static_cast<std::size_t>(g)])
            << "node " << id << " group " << g << " disagrees on delivery order";
      }
    }
  }

  // (b) executor count changes scheduling, never the delivered contents.
  EXPECT_EQ(delivered_set(sequential->state(0)), delivered_set(concurrent->state(0)));

  // (c) replay determinism: snapshot node 0 of the concurrent run, restore
  // into a fresh party with no executors.  The WAL was appended on the
  // pump thread in arrival order and replay runs inline, so the rebuilt
  // node must reproduce the concurrent node's per-group sequences exactly.
  const Bytes snapshot = concurrent->hosts[0]->snapshot();
  NetworkedNode::Config config;
  config.node_id = 0;
  config.n = kN;
  NetworkedNode replay_node(config);
  HostedParty<MultiState> replay_host(replay_node, 0, deployment, kSeed * 7919,
                                      [](net::Party& party) {
                                        party.enable_wal();
                                        return make_multi_state(party);
                                      });
  replay_host.restore(snapshot);
  const MultiState& original = concurrent->state(0);
  const MultiState& replayed = replay_host.protocol();
  for (int g = 0; g < kGroups; ++g) {
    EXPECT_EQ(replayed.delivered[static_cast<std::size_t>(g)],
              original.delivered[static_cast<std::size_t>(g)])
        << "group " << g << ": sequential replay diverged from the concurrent run";
  }

  // Wire-level coalescing on the same traffic: payloads rode BATCH
  // super-frames (one HMAC each), never one frame per payload.
  const LoopbackHub::Stats wire = concurrent->hub.stats();
  EXPECT_GT(wire.batches_sent, 0u);
  EXPECT_GE(wire.coalesced_payloads, wire.batches_sent);
  EXPECT_EQ(wire.auth_failures, 0u);
}

}  // namespace
}  // namespace sintra
