// Unit and property tests for the arbitrary-precision integer library —
// the numeric substrate under every threshold primitive.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/bigint.hpp"

namespace sintra::crypto {
namespace {

TEST(BigIntTest, ZeroProperties) {
  BigInt zero;
  EXPECT_TRUE(zero.is_zero());
  EXPECT_FALSE(zero.is_negative());
  EXPECT_FALSE(zero.is_odd());
  EXPECT_EQ(zero.bit_length(), 0u);
  EXPECT_EQ(zero.to_string(), "0");
  EXPECT_TRUE(zero.to_bytes().empty());
}

TEST(BigIntTest, SmallConstruction) {
  EXPECT_EQ(BigInt(42).to_string(), "42");
  EXPECT_EQ(BigInt(-42).to_string(), "-42");
  EXPECT_EQ(BigInt(1).low_u64(), 1u);
  EXPECT_TRUE(BigInt(1).is_one());
  EXPECT_FALSE(BigInt(-1).is_one());
}

TEST(BigIntTest, Int64MinSafe) {
  BigInt v(std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(v.to_string(), "-9223372036854775808");
}

TEST(BigIntTest, ParseDecimalAndHex) {
  EXPECT_EQ(BigInt::from_string("123456789012345678901234567890").to_string(),
            "123456789012345678901234567890");
  EXPECT_EQ(BigInt::from_string("-987").to_string(), "-987");
  EXPECT_EQ(BigInt::from_string("0xff").to_string(), "255");
  EXPECT_EQ(BigInt::from_string("0xdeadbeef").to_hex(), "deadbeef");
  EXPECT_THROW(BigInt::from_string("12a"), ProtocolError);
  EXPECT_THROW(BigInt::from_string(""), ProtocolError);
}

TEST(BigIntTest, BytesRoundTrip) {
  BigInt v = BigInt::from_string("0x0102030405060708090a0b0c0d0e0f");
  Bytes raw = v.to_bytes();
  EXPECT_EQ(BigInt::from_bytes(raw), v);
  Bytes padded = v.to_bytes_padded(32);
  EXPECT_EQ(padded.size(), 32u);
  EXPECT_EQ(BigInt::from_bytes(padded), v);
}

TEST(BigIntTest, PaddingTooNarrowThrows) {
  BigInt v = BigInt::from_string("0x010203");
  EXPECT_THROW(v.to_bytes_padded(2), ProtocolError);
}

TEST(BigIntTest, Comparisons) {
  BigInt a(5);
  BigInt b(7);
  BigInt c(-5);
  EXPECT_LT(a, b);
  EXPECT_GT(b, a);
  EXPECT_LT(c, a);
  EXPECT_LT(c, BigInt(0));
  EXPECT_EQ(a, BigInt(5));
  EXPECT_LE(a, a);
  EXPECT_GE(a, c);
  EXPECT_LT(BigInt(-7), BigInt(-5));
}

TEST(BigIntTest, AdditionSignCases) {
  EXPECT_EQ((BigInt(5) + BigInt(7)).to_string(), "12");
  EXPECT_EQ((BigInt(5) + BigInt(-7)).to_string(), "-2");
  EXPECT_EQ((BigInt(-5) + BigInt(7)).to_string(), "2");
  EXPECT_EQ((BigInt(-5) + BigInt(-7)).to_string(), "-12");
  EXPECT_TRUE((BigInt(5) + BigInt(-5)).is_zero());
}

TEST(BigIntTest, SubtractionSignCases) {
  EXPECT_EQ((BigInt(5) - BigInt(7)).to_string(), "-2");
  EXPECT_EQ((BigInt(7) - BigInt(5)).to_string(), "2");
  EXPECT_EQ((BigInt(-5) - BigInt(-7)).to_string(), "2");
  EXPECT_TRUE((BigInt(7) - BigInt(7)).is_zero());
}

TEST(BigIntTest, CarryPropagation) {
  BigInt max64 = BigInt::from_string("0xffffffffffffffff");
  EXPECT_EQ((max64 + BigInt(1)).to_hex(), "10000000000000000");
  EXPECT_EQ((max64 * max64).to_hex(), "fffffffffffffffe0000000000000001");
}

TEST(BigIntTest, MultiplicationKnownAnswer) {
  BigInt a = BigInt::from_string("123456789012345678901234567890");
  BigInt b = BigInt::from_string("987654321098765432109876543210");
  EXPECT_EQ((a * b).to_string(),
            "121932631137021795226185032733622923332237463801111263526900");
  EXPECT_EQ((a * BigInt(0)).to_string(), "0");
  EXPECT_EQ((a * BigInt(-1)).to_string(), "-123456789012345678901234567890");
}

TEST(BigIntTest, DivisionKnownAnswers) {
  EXPECT_EQ((BigInt(100) / BigInt(7)).to_string(), "14");
  EXPECT_EQ((BigInt(100) % BigInt(7)).to_string(), "2");
  // C semantics: truncation toward zero; remainder has dividend's sign.
  EXPECT_EQ((BigInt(-100) / BigInt(7)).to_string(), "-14");
  EXPECT_EQ((BigInt(-100) % BigInt(7)).to_string(), "-2");
  EXPECT_EQ((BigInt(100) / BigInt(-7)).to_string(), "-14");
  EXPECT_EQ((BigInt(100) % BigInt(-7)).to_string(), "2");
}

TEST(BigIntTest, DivisionByZeroThrows) {
  EXPECT_THROW(BigInt(5) / BigInt(0), ProtocolError);
}

TEST(BigIntTest, DivisionPropertyRandom) {
  Rng rng(101);
  for (int i = 0; i < 300; ++i) {
    const std::size_t abits = 1 + rng.below(512);
    const std::size_t bbits = 1 + rng.below(256);
    BigInt a = BigInt::random_bits(rng, abits);
    BigInt b = BigInt::random_bits(rng, bbits);
    BigInt q;
    BigInt r;
    BigInt::divmod(a, b, q, r);
    EXPECT_EQ(q * b + r, a) << "iteration " << i;
    EXPECT_LT(r, b);
    EXPECT_FALSE(r.is_negative());
  }
}

TEST(BigIntTest, DivisionAddBackCase) {
  // Exercises the rare "add back" branch of Knuth D with crafted values.
  BigInt a = BigInt::from_string("0x80000000000000000000000000000000"
                                 "00000000000000000000000000000000");
  BigInt b = BigInt::from_string("0x80000000000000000000000000000001");
  BigInt q;
  BigInt r;
  BigInt::divmod(a, b, q, r);
  EXPECT_EQ(q * b + r, a);
  EXPECT_LT(r, b);
}

TEST(BigIntTest, Shifts) {
  BigInt v = BigInt::from_string("0x1234");
  EXPECT_EQ(v.shifted_left(4).to_hex(), "12340");
  EXPECT_EQ(v.shifted_left(64).to_hex(), "12340000000000000000");
  EXPECT_EQ(v.shifted_right(4).to_hex(), "123");
  EXPECT_EQ(v.shifted_right(16).to_hex(), "0");
  EXPECT_EQ(v.shifted_left(67).shifted_right(67), v);
}

TEST(BigIntTest, BitAccess) {
  BigInt v(5);  // binary 101
  EXPECT_TRUE(v.bit(0));
  EXPECT_FALSE(v.bit(1));
  EXPECT_TRUE(v.bit(2));
  EXPECT_FALSE(v.bit(64));
  EXPECT_EQ(v.bit_length(), 3u);
}

TEST(BigIntTest, MathematicalMod) {
  BigInt m(7);
  EXPECT_EQ(BigInt(-1).mod(m).to_string(), "6");
  EXPECT_EQ(BigInt(-8).mod(m).to_string(), "6");
  EXPECT_EQ(BigInt(13).mod(m).to_string(), "6");
  EXPECT_THROW(BigInt(5).mod(BigInt(-7)), ProtocolError);
}

TEST(BigIntTest, PowModKnownAnswers) {
  EXPECT_EQ(BigInt::pow_mod(BigInt(2), BigInt(10), BigInt(1000)).to_string(), "24");
  EXPECT_EQ(BigInt::pow_mod(BigInt(5), BigInt(0), BigInt(7)).to_string(), "1");
  EXPECT_EQ(BigInt::pow_mod(BigInt(5), BigInt(3), BigInt(1)).to_string(), "0");
  // Fermat: a^(p-1) = 1 mod p.
  BigInt p = BigInt::from_string("1000000007");
  EXPECT_TRUE(BigInt::pow_mod(BigInt(123456), p - BigInt(1), p).is_one());
}

TEST(BigIntTest, PowModLargeWindowedMatchesSquareMultiply) {
  Rng rng(55);
  BigInt m = BigInt::random_bits(rng, 256);
  if (!m.is_odd()) m += BigInt(1);
  for (int i = 0; i < 10; ++i) {
    BigInt base = BigInt::random_below(rng, m);
    BigInt small_exp = BigInt::from_u64(rng.below(65536));
    // Reference: repeated multiplication.
    BigInt expected(1);
    for (std::uint64_t k = 0; k < small_exp.low_u64(); ++k) {
      expected = BigInt::mul_mod(expected, base, m);
    }
    EXPECT_EQ(BigInt::pow_mod(base, small_exp, m), expected);
  }
}

TEST(BigIntTest, PowModNegativeExponentThrows) {
  EXPECT_THROW(BigInt::pow_mod(BigInt(2), BigInt(-1), BigInt(7)), ProtocolError);
}

TEST(BigIntTest, InverseMod) {
  BigInt p = BigInt::from_string("1000000007");
  Rng rng(77);
  for (int i = 0; i < 50; ++i) {
    BigInt a = BigInt(1) + BigInt::random_below(rng, p - BigInt(1));
    BigInt inv = BigInt::inverse_mod(a, p);
    EXPECT_TRUE(BigInt::mul_mod(a, inv, p).is_one());
  }
  EXPECT_THROW(BigInt::inverse_mod(BigInt(6), BigInt(9)), ProtocolError);
}

TEST(BigIntTest, GcdAndExtendedGcd) {
  EXPECT_EQ(BigInt::gcd(BigInt(48), BigInt(18)).to_string(), "6");
  EXPECT_EQ(BigInt::gcd(BigInt(0), BigInt(5)).to_string(), "5");
  EXPECT_EQ(BigInt::gcd(BigInt(-48), BigInt(18)).to_string(), "6");
  BigInt x;
  BigInt y;
  BigInt g = BigInt::extended_gcd(BigInt(240), BigInt(46), x, y);
  EXPECT_EQ(g.to_string(), "2");
  EXPECT_EQ(BigInt(240) * x + BigInt(46) * y, g);
}

TEST(BigIntTest, Factorial) {
  EXPECT_EQ(BigInt::factorial(0).to_string(), "1");
  EXPECT_EQ(BigInt::factorial(5).to_string(), "120");
  EXPECT_EQ(BigInt::factorial(20).to_string(), "2432902008176640000");
  EXPECT_EQ(BigInt::factorial(30).to_string(), "265252859812191058636308480000000");
}

TEST(BigIntTest, RandomBelowInRange) {
  Rng rng(31);
  BigInt bound = BigInt::from_string("1000000000000000000000");
  for (int i = 0; i < 100; ++i) {
    BigInt v = BigInt::random_below(rng, bound);
    EXPECT_LT(v, bound);
    EXPECT_FALSE(v.is_negative());
  }
}

TEST(BigIntTest, RandomBitsExactLength) {
  Rng rng(33);
  for (std::size_t bits : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 255u}) {
    EXPECT_EQ(BigInt::random_bits(rng, bits).bit_length(), bits);
  }
}

TEST(BigIntTest, PrimalityKnownPrimes) {
  Rng rng(41);
  for (std::int64_t p : {2, 3, 5, 7, 97, 65537, 1000003}) {
    EXPECT_TRUE(BigInt(p).is_probable_prime(rng)) << p;
  }
  // A large known prime (2^127 - 1, Mersenne).
  BigInt m127 = BigInt(1).shifted_left(127) - BigInt(1);
  EXPECT_TRUE(m127.is_probable_prime(rng));
}

TEST(BigIntTest, PrimalityKnownComposites) {
  Rng rng(43);
  for (std::int64_t c : {0, 1, 4, 9, 15, 91, 561 /* Carmichael */, 65536, 1000001}) {
    EXPECT_FALSE(BigInt(c).is_probable_prime(rng)) << c;
  }
  // Product of two primes.
  BigInt composite = BigInt::from_string("1000003") * BigInt::from_string("1000033");
  EXPECT_FALSE(composite.is_probable_prime(rng));
}

TEST(BigIntTest, RandomPrimeGeneration) {
  Rng rng(47);
  BigInt p = BigInt::random_prime(rng, 64);
  EXPECT_EQ(p.bit_length(), 64u);
  EXPECT_TRUE(p.is_probable_prime(rng));
}

TEST(BigIntTest, SafePrimeGeneration) {
  Rng rng(49);
  BigInt p = BigInt::random_safe_prime(rng, 48);
  EXPECT_EQ(p.bit_length(), 48u);
  EXPECT_TRUE(p.is_probable_prime(rng));
  BigInt q = (p - BigInt(1)).shifted_right(1);
  EXPECT_TRUE(q.is_probable_prime(rng));
}

TEST(BigIntTest, SerializationRoundTrip) {
  Rng rng(51);
  for (int i = 0; i < 50; ++i) {
    BigInt v = BigInt::random_bits(rng, 1 + rng.below(300));
    if (rng.below(2) == 0) v = -v;
    Writer w;
    v.encode(w);
    Reader r(w.data());
    EXPECT_EQ(BigInt::decode(r), v);
    r.expect_done();
  }
}

TEST(BigIntTest, NegativeZeroRejected) {
  Writer w;
  w.boolean(true);   // negative flag
  w.bytes(Bytes{});  // zero magnitude
  Reader r(w.data());
  EXPECT_THROW(BigInt::decode(r), ProtocolError);
}

TEST(BigIntTest, ArithmeticPropertyRandom) {
  Rng rng(61);
  for (int i = 0; i < 200; ++i) {
    BigInt a = BigInt::random_bits(rng, 1 + rng.below(200));
    BigInt b = BigInt::random_bits(rng, 1 + rng.below(200));
    BigInt c = BigInt::random_bits(rng, 1 + rng.below(100));
    if (rng.below(2)) a = -a;
    if (rng.below(2)) b = -b;
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a + b) * c, a * c + b * c);
    EXPECT_EQ(a - b, -(b - a));
    EXPECT_EQ((a + b) - b, a);
  }
}

TEST(BigIntTest, ModArithmeticConsistency) {
  Rng rng(63);
  BigInt m = BigInt::random_bits(rng, 128);
  for (int i = 0; i < 100; ++i) {
    BigInt a = BigInt::random_bits(rng, 200);
    BigInt b = BigInt::random_bits(rng, 200);
    EXPECT_EQ(BigInt::add_mod(a, b, m), (a + b).mod(m));
    EXPECT_EQ(BigInt::sub_mod(a, b, m), (a - b).mod(m));
    EXPECT_EQ(BigInt::mul_mod(a, b, m), (a * b).mod(m));
  }
}

}  // namespace
}  // namespace sintra::crypto
