// Unit tests for the common substrate: bytes, serialization, RNG, trace log.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/serialize.hpp"

namespace sintra {
namespace {

TEST(BytesTest, HexRoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(BytesTest, HexEmpty) {
  EXPECT_EQ(to_hex(Bytes{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(BytesTest, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(BytesTest, HexRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(BytesTest, BytesOf) {
  Bytes b = bytes_of("hi");
  ASSERT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 'h');
  EXPECT_EQ(b[1], 'i');
}

TEST(BytesTest, PrintableMasksControlBytes) {
  Bytes data = {0x41, 0x00, 0x42, 0x7f};
  EXPECT_EQ(printable(data), "A.B.");
}

TEST(BytesTest, ConstantTimeEqual) {
  EXPECT_TRUE(constant_time_equal(bytes_of("abc"), bytes_of("abc")));
  EXPECT_FALSE(constant_time_equal(bytes_of("abc"), bytes_of("abd")));
  EXPECT_FALSE(constant_time_equal(bytes_of("abc"), bytes_of("abcd")));
  EXPECT_TRUE(constant_time_equal(Bytes{}, Bytes{}));
}

TEST(BytesTest, Append) {
  Bytes dst = bytes_of("ab");
  append(dst, bytes_of("cd"));
  EXPECT_EQ(dst, bytes_of("abcd"));
}

TEST(SerializeTest, IntegerRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.boolean(true);
  w.boolean(false);
  Reader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.done());
}

TEST(SerializeTest, BytesAndStrings) {
  Writer w;
  w.bytes(bytes_of("payload"));
  w.str("label");
  w.raw(bytes_of("xy"));
  Reader r(w.data());
  EXPECT_EQ(r.bytes(), bytes_of("payload"));
  EXPECT_EQ(r.str(), "label");
  EXPECT_EQ(r.raw(2), bytes_of("xy"));
  r.expect_done();
}

TEST(SerializeTest, VectorRoundTrip) {
  Writer w;
  std::vector<std::uint32_t> values = {1, 2, 3, 42};
  w.vec(values, [](Writer& wr, std::uint32_t v) { wr.u32(v); });
  Reader r(w.data());
  auto out = r.vec<std::uint32_t>([](Reader& rd) { return rd.u32(); });
  EXPECT_EQ(out, values);
}

TEST(SerializeTest, TruncatedInputThrows) {
  Writer w;
  w.u32(7);
  Bytes data = w.take();
  data.pop_back();
  Reader r(data);
  EXPECT_THROW(r.u32(), ProtocolError);
}

TEST(SerializeTest, TrailingBytesDetected) {
  Writer w;
  w.u8(1);
  w.u8(2);
  Reader r(w.data());
  r.u8();
  EXPECT_THROW(r.expect_done(), ProtocolError);
}

TEST(SerializeTest, InvalidBooleanThrows) {
  Bytes data = {2};
  Reader r(data);
  EXPECT_THROW(r.boolean(), ProtocolError);
}

TEST(SerializeTest, ImplausibleVectorCountThrows) {
  Writer w;
  w.u32(0xffffffffu);  // count far beyond remaining bytes
  Reader r(w.data());
  EXPECT_THROW(r.vec<std::uint8_t>([](Reader& rd) { return rd.u8(); }), ProtocolError);
}

TEST(SerializeTest, TruncatedStringThrows) {
  Writer w;
  w.u32(100);  // claims 100 bytes follow
  w.u8('x');
  Reader r(w.data());
  EXPECT_THROW(r.str(), ProtocolError);
}

TEST(RngTest, Deterministic) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.next() != b.next()) ++differing;
  }
  EXPECT_GE(differing, 15);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(RngTest, BelowCoversRange) {
  Rng rng(9);
  std::array<int, 4> histogram{};
  for (int i = 0; i < 4000; ++i) histogram[rng.below(4)]++;
  for (int count : histogram) EXPECT_GT(count, 800);  // roughly uniform
}

TEST(RngTest, BytesLength) {
  Rng rng(3);
  for (std::size_t len : {0u, 1u, 7u, 8u, 9u, 31u, 64u}) {
    EXPECT_EQ(rng.bytes(len).size(), len);
  }
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(5);
  Rng child = parent.fork();
  // The child stream must not replay the parent stream.
  Rng parent2(5);
  parent2.next();  // same position as parent after fork
  EXPECT_NE(child.next(), parent2.next());
}

TEST(TraceLogTest, DisabledByDefault) {
  TraceLog log;
  log.emit(TraceLevel::kInfo, 0, "x", "y");
  EXPECT_TRUE(log.events().empty());
}

TEST(TraceLogTest, RecordsWhenEnabled) {
  TraceLog log;
  log.set_enabled(true);
  log.set_time_source([] { return std::uint64_t{99}; });
  log.emit(TraceLevel::kWarn, 3, "abba", "decided");
  ASSERT_EQ(log.events().size(), 1u);
  EXPECT_EQ(log.events()[0].time, 99u);
  EXPECT_EQ(log.events()[0].party, 3);
  EXPECT_EQ(log.events()[0].component, "abba");
}

TEST(TraceLogTest, FilterByComponent) {
  TraceLog log;
  log.set_enabled(true);
  log.emit(TraceLevel::kInfo, 0, "a", "1");
  log.emit(TraceLevel::kInfo, 0, "b", "2");
  log.emit(TraceLevel::kInfo, 0, "a", "3");
  EXPECT_EQ(log.by_component("a").size(), 2u);
  EXPECT_EQ(log.by_component("b").size(), 1u);
  EXPECT_EQ(log.by_component("c").size(), 0u);
}

}  // namespace
}  // namespace sintra
