// Full-stack tests under the paper's generalized adversary structures
// (§4.3): the complete protocol stack and services running over the
// Example 1 and Example 2 deployments, with corruption patterns beyond
// what any threshold configuration could tolerate.
#include <gtest/gtest.h>

#include "adversary/examples.hpp"
#include "app/ca.hpp"
#include "app/client.hpp"
#include "app/directory.hpp"
#include "protocols/atomic.hpp"
#include "protocols/causal.hpp"
#include "protocols/harness.hpp"

namespace sintra {
namespace {

using adversary::example1_deployment;
using adversary::example2_deployment;
using adversary::example2_party;
using crypto::party_bit;
using crypto::PartySet;

PartySet example2_row_and_column(int location, int os) {
  PartySet set = 0;
  for (int k = 0; k < 4; ++k) {
    set |= party_bit(example2_party(location, k));
    set |= party_bit(example2_party(k, os));
  }
  return set;
}

struct AbcState {
  std::unique_ptr<protocols::AtomicBroadcast> abc;
  std::vector<std::pair<int, Bytes>> delivered;
};

protocols::Cluster<AbcState> make_abc_cluster(adversary::Deployment deployment,
                                              net::Scheduler& sched, PartySet corrupted,
                                              std::uint64_t seed) {
  return protocols::Cluster<AbcState>(
      std::move(deployment), sched,
      [](net::Party& party, int) {
        auto state = std::make_unique<AbcState>();
        state->abc = std::make_unique<protocols::AtomicBroadcast>(
            party, "abc", [s = state.get()](int origin, Bytes payload) {
              s->delivered.emplace_back(origin, std::move(payload));
            });
        return state;
      },
      corrupted, 0, seed);
}

TEST(GeneralAdversaryTest, Example2SurvivesSevenCorruptions) {
  // Location 0 AND OS 0 simultaneously corrupted: 7 of 16 servers — more
  // than the t = 5 any Q³ threshold scheme could tolerate.  The remaining
  // 3x3 grid keeps liveness and safety.
  Rng rng(1);
  auto deployment = example2_deployment(rng);
  net::RandomScheduler sched(1);
  PartySet corrupted = example2_row_and_column(0, 0);
  ASSERT_EQ(crypto::popcount(corrupted), 7);
  auto cluster = make_abc_cluster(deployment, sched, corrupted, 1);
  cluster.start();
  cluster.protocol(example2_party(1, 1))->abc->submit(bytes_of("tokyo-nt"));
  cluster.protocol(example2_party(3, 2))->abc->submit(bytes_of("haifa-linux"));
  ASSERT_TRUE(cluster.run_until_all([](AbcState& s) { return s.delivered.size() >= 2; },
                                    50000000));
  const auto& reference = cluster.protocol(example2_party(1, 1))->delivered;
  cluster.for_each([&](int, AbcState& s) { EXPECT_EQ(s.delivered, reference); });
}

TEST(GeneralAdversaryTest, Example2SiteOutageViaBlockingScheduler) {
  // The paper's motivating scenario: "a distributed system running at
  // multiple sites continues operating even if all hosts at one site are
  // unavailable".  Here the site is not crashed but *unreachable* (its
  // traffic withheld by the network adversary) — same outcome.
  Rng rng(2);
  auto deployment = example2_deployment(rng);
  PartySet site = 0;
  for (int k = 0; k < 4; ++k) site |= party_bit(example2_party(2, k));  // Zurich offline
  net::BlockSetScheduler sched(2, site, deployment.n());
  auto cluster = make_abc_cluster(deployment, sched, 0, 2);
  cluster.start();
  cluster.protocol(example2_party(0, 0))->abc->submit(bytes_of("still alive"));
  // Parties off-site must deliver; the blocked site cannot (its messages
  // never move), which is fine — it is "unavailable".
  bool done = cluster.simulator().run_until(
      [&] {
        for (int loc = 0; loc < 4; ++loc) {
          if (loc == 2) continue;
          for (int os = 0; os < 4; ++os) {
            if (cluster.protocol(example2_party(loc, os))->delivered.empty()) return false;
          }
        }
        return true;
      },
      50000000);
  EXPECT_TRUE(done);
}

TEST(GeneralAdversaryTest, Example1WholeClassPlusNothingElse) {
  // All of class a (4 of 9) crashed: beyond the t = 2 threshold bound for
  // n = 9, tolerated by the generalized structure.
  Rng rng(3);
  auto deployment = example1_deployment(rng);
  net::RandomScheduler sched(3);
  PartySet class_a = party_bit(0) | party_bit(1) | party_bit(2) | party_bit(3);
  auto cluster = make_abc_cluster(deployment, sched, class_a, 3);
  cluster.start();
  cluster.protocol(4)->abc->submit(bytes_of("b1"));
  cluster.protocol(6)->abc->submit(bytes_of("c1"));
  cluster.protocol(8)->abc->submit(bytes_of("d1"));
  ASSERT_TRUE(cluster.run_until_all([](AbcState& s) { return s.delivered.size() >= 3; },
                                    50000000));
  const auto& reference = cluster.protocol(4)->delivered;
  cluster.for_each([&](int, AbcState& s) { EXPECT_EQ(s.delivered, reference); });
}

TEST(GeneralAdversaryTest, Example1TwoArbitraryServers) {
  Rng rng(4);
  auto deployment = example1_deployment(rng);
  net::RandomScheduler sched(4);
  auto cluster = make_abc_cluster(deployment, sched, party_bit(4) | party_bit(8), 4);
  cluster.start();
  cluster.protocol(0)->abc->submit(bytes_of("x"));
  EXPECT_TRUE(cluster.run_until_all([](AbcState& s) { return s.delivered.size() >= 1; },
                                    50000000));
}

TEST(GeneralAdversaryTest, SecretsSafeFromCorruptibleCoalitions) {
  // Safety side: the union of the adversary's key material from a maximal
  // corruptible set cannot decrypt a client request or forge the service
  // signature.  Checked directly against the dealt keys.
  Rng rng(5);
  auto deployment = example2_deployment(rng);
  const auto& pk = deployment.keys->public_keys();
  Rng crng(6);
  auto ct = pk.encryption.encrypt(bytes_of("confidential"), bytes_of("svc"), crng);

  std::vector<crypto::Tdh2DecShare> stolen_dec;
  std::vector<crypto::SigShare> stolen_sig;
  Bytes target = bytes_of("forged statement");
  for (int p : crypto::set_members(example2_row_and_column(1, 2))) {
    for (auto& s : deployment.keys->share(p).decryption.decrypt_shares(pk.encryption, ct,
                                                                       crng)) {
      stolen_dec.push_back(s);
    }
    for (auto& s : deployment.keys->share(p).reply_sig.sign(pk.reply_sig, target, crng)) {
      stolen_sig.push_back(s);
    }
  }
  EXPECT_FALSE(pk.encryption.combine(ct, stolen_dec).has_value());
  EXPECT_FALSE(pk.reply_sig.combine(target, stolen_sig).has_value());
}

struct SvcState {
  std::unique_ptr<app::Replica> replica;
};

TEST(GeneralAdversaryTest, CaServiceOverExample1WithClassCrash) {
  // End-to-end trusted service over the generalized deployment: the CA
  // answers with a verifiable receipt even with all of class a down.
  Rng rng(7);
  auto deployment = example1_deployment(rng);
  net::RandomScheduler sched(7);
  PartySet class_a = party_bit(0) | party_bit(1) | party_bit(2) | party_bit(3);
  protocols::Cluster<SvcState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto state = std::make_unique<SvcState>();
        state->replica = std::make_unique<app::Replica>(
            party, "svc", app::Replica::Mode::kAtomic,
            std::make_unique<app::CertificationAuthority>());
        return state;
      },
      class_a, /*extra_endpoints=*/1, 7);
  std::map<std::uint64_t, app::ServiceClient::Receipt> replies;
  auto client_ptr = std::make_unique<app::ServiceClient>(
      cluster.simulator(), 9, deployment, "svc", app::Replica::Mode::kAtomic, 77,
      [&](std::uint64_t id, app::ServiceClient::Receipt receipt) {
        replies.emplace(id, std::move(receipt));
      });
  app::ServiceClient* client = client_ptr.get();
  cluster.attach_client(9, std::move(client_ptr));
  cluster.start();

  app::CaRequest issue;
  issue.op = app::CaRequest::Op::kIssue;
  issue.subject = "zurich-ops";
  issue.credentials = "credential:zurich-ops";
  Bytes body = issue.encode();
  std::uint64_t id = client->request(Bytes(body));
  ASSERT_TRUE(cluster.simulator().run_until([&] { return replies.contains(id); }, 50000000));
  EXPECT_EQ(app::CaResponse::decode(replies.at(id).reply).status,
            app::CaResponse::Status::kOk);
  EXPECT_TRUE(client->verify_receipt(id, body, replies.at(id)));
}

TEST(GeneralAdversaryTest, DirectoryClientOverExample2RowColumnCorruption) {
  // Regression test: the client must wait for a SCHEME-QUALIFIED set of
  // matching replies before combining.  Under Example 2 some incorruptible
  // reply sets are still unqualified for reconstruction (the formula
  // under-approximates the complement of A); accepting on the weaker
  // "exceeds one fault set" rule used to crash the combine.
  Rng rng(19);
  auto deployment = example2_deployment(rng);
  net::RandomScheduler sched(19);
  PartySet corrupted = example2_row_and_column(0, 0);  // 7 of 16 servers
  protocols::Cluster<SvcState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto state = std::make_unique<SvcState>();
        state->replica = std::make_unique<app::Replica>(
            party, "dir", app::Replica::Mode::kAtomic,
            std::make_unique<app::SecureDirectory>());
        return state;
      },
      corrupted, /*extra_endpoints=*/1, 19);
  std::map<std::uint64_t, app::ServiceClient::Receipt> replies;
  auto client_owner = std::make_unique<app::ServiceClient>(
      cluster.simulator(), 16, deployment, "dir", app::Replica::Mode::kAtomic, 23,
      [&](std::uint64_t id, app::ServiceClient::Receipt receipt) {
        replies.emplace(id, std::move(receipt));
      });
  app::ServiceClient* client = client_owner.get();
  cluster.attach_client(16, std::move(client_owner));
  cluster.start();

  app::DirRequest bind;
  bind.op = app::DirRequest::Op::kBind;
  bind.key = "k";
  bind.value = bytes_of("v");
  Bytes body = bind.encode();
  std::uint64_t id = client->request(Bytes(body));
  ASSERT_TRUE(cluster.simulator().run_until([&] { return replies.contains(id); }, 100000000));
  EXPECT_EQ(app::DirResponse::decode(replies.at(id).reply).status,
            app::DirResponse::Status::kOk);
  EXPECT_TRUE(client->verify_receipt(id, body, replies.at(id)));
}

}  // namespace
}  // namespace sintra
