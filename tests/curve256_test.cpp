// Unit tests for the secp256k1 substrate: fe256 field laws against the
// square-and-multiply oracle, curve group laws, known-answer vectors for
// the standard generator multiples, the wNAF/comb/Strauss/Pippenger
// multiplication paths against naive double-and-add, batch normalization,
// and the strict point codec.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/curve256.hpp"
#include "crypto/fe256.hpp"

namespace sintra::crypto {
namespace {

using curve256::Point;
using curve256::Scalar;
using fe256::Fe;

// ---- helpers -----------------------------------------------------------

/// Uniform field element via rejection sampling on the strict decoder.
Fe random_fe(Rng& rng) {
  for (;;) {
    Bytes raw = rng.bytes(32);
    Fe out;
    if (fe256::from_bytes(raw.data(), out)) return out;
  }
}

/// Uniform nonzero scalar < n (rejection against the order limbs).
Scalar random_scalar(Rng& rng) {
  for (;;) {
    Bytes raw = rng.bytes(32);
    Scalar k;
    for (int limb = 0; limb < 4; ++limb) {
      std::uint64_t word = 0;
      for (int byte = 0; byte < 8; ++byte) {
        word = (word << 8) | raw[static_cast<std::size_t>(limb * 8 + byte)];
      }
      k.v[limb] = word;
    }
    bool below = false, zero = true;
    for (int limb = 3; limb >= 0; --limb) {
      if (k.v[limb] != 0) zero = false;
      if (!below && k.v[limb] != curve256::kOrder[limb]) {
        below = k.v[limb] < curve256::kOrder[limb];
        break;
      }
    }
    if (below && !zero) return k;
  }
}

/// Reference scalar multiplication: plain MSB-first double-and-add using
/// only the complete add/dbl primitives.
Point naive_mul(const Point& p, const Scalar& k) {
  Point acc = curve256::infinity();
  for (int bit = 255; bit >= 0; --bit) {
    acc = curve256::dbl(acc);
    if ((k.v[bit / 64] >> (bit % 64)) & 1) acc = curve256::add(acc, p);
  }
  return acc;
}

Fe fe_from_hex(const char* hex) {
  std::uint8_t raw[32] = {0};
  for (int i = 0; i < 64; ++i) {
    char c = hex[i];
    int nibble = c <= '9' ? c - '0' : (c & 0xDF) - 'A' + 10;
    raw[i / 2] = static_cast<std::uint8_t>(raw[i / 2] << 4 | nibble);
  }
  Fe out;
  EXPECT_TRUE(fe256::from_bytes(raw, out));
  return out;
}

Point affine(const char* x_hex, const char* y_hex) {
  Point p{fe_from_hex(x_hex), fe_from_hex(y_hex), fe256::one()};
  EXPECT_TRUE(curve256::on_curve(p));
  return p;
}

// ---- fe256 -------------------------------------------------------------

TEST(Fe256Test, FieldLaws) {
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    Fe a = random_fe(rng), b = random_fe(rng), c = random_fe(rng);
    // Commutativity and associativity.
    EXPECT_TRUE(fe256::eq(fe256::add(a, b), fe256::add(b, a)));
    EXPECT_TRUE(fe256::eq(fe256::mul(a, b), fe256::mul(b, a)));
    EXPECT_TRUE(fe256::eq(fe256::add(fe256::add(a, b), c), fe256::add(a, fe256::add(b, c))));
    EXPECT_TRUE(fe256::eq(fe256::mul(fe256::mul(a, b), c), fe256::mul(a, fe256::mul(b, c))));
    // Distributivity.
    EXPECT_TRUE(fe256::eq(fe256::mul(a, fe256::add(b, c)),
                          fe256::add(fe256::mul(a, b), fe256::mul(a, c))));
    // Additive inverse, subtraction.
    EXPECT_TRUE(fe256::is_zero(fe256::add(a, fe256::neg(a))));
    EXPECT_TRUE(fe256::eq(fe256::sub(a, b), fe256::add(a, fe256::neg(b))));
    // Square matches self-multiplication.
    EXPECT_TRUE(fe256::eq(fe256::sqr(a), fe256::mul(a, a)));
  }
}

TEST(Fe256Test, InverseMatchesPowOracle) {
  // p - 2, little-endian limbs.
  const std::uint64_t p_minus_2[4] = {0xFFFFFFFEFFFFFC2DULL, 0xFFFFFFFFFFFFFFFFULL,
                                      0xFFFFFFFFFFFFFFFFULL, 0xFFFFFFFFFFFFFFFFULL};
  Rng rng(2);
  for (int i = 0; i < 10; ++i) {
    Fe a = random_fe(rng);
    if (fe256::is_zero(a)) continue;
    Fe inv = fe256::inv(a);
    EXPECT_TRUE(fe256::eq(inv, fe256::pow(a, p_minus_2)));
    EXPECT_TRUE(fe256::eq(fe256::mul(a, inv), fe256::one()));
  }
  EXPECT_TRUE(fe256::is_zero(fe256::inv(fe256::zero())));
}

TEST(Fe256Test, SqrtRoundTripAndNonResidue) {
  Rng rng(3);
  int residues = 0, non_residues = 0;
  for (int i = 0; i < 40; ++i) {
    Fe a = random_fe(rng);
    Fe square = fe256::sqr(a);
    Fe root;
    ASSERT_TRUE(fe256::sqrt(square, root));
    // Either root or its negation.
    EXPECT_TRUE(fe256::eq(root, a) || fe256::eq(root, fe256::neg(a)));
    Fe maybe;
    fe256::sqrt(a, maybe) ? ++residues : ++non_residues;
  }
  // Residues have density 1/2; both classes must appear in 40 draws.
  EXPECT_GT(residues, 0);
  EXPECT_GT(non_residues, 0);
}

TEST(Fe256Test, BytesRoundTripAndCanonicalReject) {
  Rng rng(4);
  for (int i = 0; i < 10; ++i) {
    Fe a = random_fe(rng);
    std::uint8_t raw[32];
    fe256::to_bytes(a, raw);
    Fe back;
    ASSERT_TRUE(fe256::from_bytes(raw, back));
    EXPECT_TRUE(fe256::eq(a, back));
  }
  // p itself and anything above must be rejected.
  std::uint8_t p_bytes[32];
  Fe big;
  fe256::to_bytes(fe256::neg(fe256::one()), p_bytes);  // p - 1: accepted
  ASSERT_TRUE(fe256::from_bytes(p_bytes, big));
  std::uint8_t all_ff[32];
  for (auto& b : all_ff) b = 0xFF;
  EXPECT_FALSE(fe256::from_bytes(all_ff, big));
}

// ---- curve256 group laws ------------------------------------------------

TEST(Curve256Test, GeneratorKnownAnswer) {
  // SEC2 test vectors: G, 2G, 3G in affine coordinates.
  const Point g = affine("79BE667EF9DCBBAC55A06295CE870B07029BFCDB2DCE28D959F2815B16F81798",
                         "483ADA7726A3C4655DA4FBFC0E1108A8FD17B448A68554199C47D08FFB10D4B8");
  const Point g2 = affine("C6047F9441ED7D6D3045406E95C07CD85C778E4B8CEF3CA7ABAC09B95C709EE5",
                          "1AE168FEA63DC339A3C58419466CEAEEF7F632653266D0E1236431A950CFE52A");
  const Point g3 = affine("F9308A019258C31049344F85F89D5229B531C845836F99B08601F113BCE036F9",
                          "388F7B0F632DE8140FE337E62A37F3566500A99934C2231B6CB9FD7584B8E672");
  EXPECT_TRUE(curve256::eq(curve256::generator(), g));
  EXPECT_TRUE(curve256::eq(curve256::dbl(g), g2));
  EXPECT_TRUE(curve256::eq(curve256::add(g2, g), g3));
  Scalar three;
  three.v[0] = 3;
  EXPECT_TRUE(curve256::eq(curve256::mul(g, three), g3));
}

TEST(Curve256Test, OrderAnnihilatesGenerator) {
  // nG = infinity and (n-1)G = -G.
  Scalar n_minus_1;
  for (int i = 0; i < 4; ++i) n_minus_1.v[i] = curve256::kOrder[i];
  n_minus_1.v[0] -= 1;
  Point p = curve256::mul(curve256::generator(), n_minus_1);
  EXPECT_TRUE(curve256::eq(p, curve256::neg(curve256::generator())));
  EXPECT_TRUE(curve256::is_infinity(curve256::add(p, curve256::generator())));
}

TEST(Curve256Test, CompleteFormulaEdgeCases) {
  const Point& g = curve256::generator();
  const Point inf = curve256::infinity();
  // P + (-P) = 0, P + 0 = P, 0 + 0 = 0, P + P = dbl(P).
  EXPECT_TRUE(curve256::is_infinity(curve256::add(g, curve256::neg(g))));
  EXPECT_TRUE(curve256::eq(curve256::add(g, inf), g));
  EXPECT_TRUE(curve256::eq(curve256::add(inf, g), g));
  EXPECT_TRUE(curve256::is_infinity(curve256::add(inf, inf)));
  EXPECT_TRUE(curve256::eq(curve256::add(g, g), curve256::dbl(g)));
  EXPECT_TRUE(curve256::is_infinity(curve256::dbl(inf)));
  // Mixed addition agrees with full addition on affine operands.
  EXPECT_TRUE(curve256::eq(curve256::add_mixed(curve256::dbl(g), g), curve256::add(curve256::dbl(g), g)));
}

TEST(Curve256Test, WnafMulMatchesNaive) {
  Rng rng(5);
  Point base = curve256::mul(curve256::generator(), random_scalar(rng));
  curve256::normalize(base);
  for (int i = 0; i < 10; ++i) {
    Scalar k = random_scalar(rng);
    EXPECT_TRUE(curve256::eq(curve256::mul(base, k), naive_mul(base, k)));
  }
  // Degenerate scalars.
  Scalar zero;
  EXPECT_TRUE(curve256::is_infinity(curve256::mul(base, zero)));
  Scalar one;
  one.v[0] = 1;
  EXPECT_TRUE(curve256::eq(curve256::mul(base, one), base));
}

TEST(Curve256Test, FixedBaseCombMatchesNaive) {
  Rng rng(6);
  Point base = curve256::mul(curve256::generator(), random_scalar(rng));
  curve256::normalize(base);
  curve256::FixedBaseTable table = curve256::build_fixed_base(base);
  for (int i = 0; i < 10; ++i) {
    Scalar k = random_scalar(rng);
    EXPECT_TRUE(curve256::eq(curve256::mul_fixed(table, k), naive_mul(base, k)));
  }
  Scalar zero;
  EXPECT_TRUE(curve256::is_infinity(curve256::mul_fixed(table, zero)));
}

TEST(Curve256Test, Mul2MatchesSeparate) {
  Rng rng(7);
  for (int i = 0; i < 5; ++i) {
    Point p = curve256::mul(curve256::generator(), random_scalar(rng));
    Point q = curve256::mul(curve256::generator(), random_scalar(rng));
    curve256::normalize(p);
    curve256::normalize(q);
    Scalar k1 = random_scalar(rng), k2 = random_scalar(rng);
    Point expected = curve256::add(curve256::mul(p, k1), curve256::mul(q, k2));
    EXPECT_TRUE(curve256::eq(curve256::mul2(p, k1, q, k2), expected));
  }
}

TEST(Curve256Test, MultiMulMatchesSum) {
  // Cover both the Strauss path (< 512 terms) and Pippenger (>= 512).
  Rng rng(8);
  for (std::size_t count : {std::size_t{1}, std::size_t{7}, std::size_t{40}, std::size_t{520}}) {
    std::vector<std::pair<Point, Scalar>> terms;
    Point expected = curve256::infinity();
    for (std::size_t i = 0; i < count; ++i) {
      Point p = curve256::mul(curve256::generator(), random_scalar(rng));
      curve256::normalize(p);
      Scalar k = random_scalar(rng);
      expected = curve256::add(expected, curve256::mul(p, k));
      terms.emplace_back(p, k);
    }
    EXPECT_TRUE(curve256::eq(curve256::multi_mul(terms), expected)) << count << " terms";
  }
  EXPECT_TRUE(curve256::is_infinity(curve256::multi_mul({})));
}

TEST(Curve256Test, BatchNormalizeMatchesNormalize) {
  Rng rng(9);
  std::vector<Point> pts;
  std::vector<Point> singly;
  for (int i = 0; i < 9; ++i) {
    // Unnormalized projective points straight out of the adder.
    Point p = curve256::add(curve256::mul(curve256::generator(), random_scalar(rng)),
                            curve256::generator());
    if (i == 4) p = curve256::infinity();  // mixed infinity survives
    pts.push_back(p);
    singly.push_back(p);
    curve256::normalize(singly.back());
  }
  curve256::batch_normalize(pts.data(), pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) {
    EXPECT_TRUE(curve256::eq(pts[i], singly[i])) << i;
    EXPECT_TRUE(curve256::on_curve(pts[i])) << i;
  }
}

TEST(Curve256Test, CodecRoundTripAndStrictReject) {
  Rng rng(10);
  for (int i = 0; i < 10; ++i) {
    Point p = curve256::mul(curve256::generator(), random_scalar(rng));
    curve256::normalize(p);
    std::uint8_t enc[curve256::kEncodedBytes];
    curve256::encode(p, enc);
    EXPECT_TRUE(enc[0] == 0x02 || enc[0] == 0x03);
    Point back;
    ASSERT_TRUE(curve256::decode(enc, back));
    EXPECT_TRUE(curve256::eq(p, back));
  }
  // Infinity: 33 zero bytes, round-trips; any nonzero tail rejects.
  std::uint8_t inf_enc[curve256::kEncodedBytes];
  curve256::encode(curve256::infinity(), inf_enc);
  for (std::size_t i = 0; i < curve256::kEncodedBytes; ++i) EXPECT_EQ(inf_enc[i], 0);
  Point back;
  ASSERT_TRUE(curve256::decode(inf_enc, back));
  EXPECT_TRUE(curve256::is_infinity(back));
  inf_enc[17] = 1;
  EXPECT_FALSE(curve256::decode(inf_enc, back));
  // Bad prefix, x >= p, off-curve x.
  std::uint8_t enc[curve256::kEncodedBytes];
  curve256::encode(curve256::generator(), enc);
  enc[0] = 0x04;
  EXPECT_FALSE(curve256::decode(enc, back));
  std::uint8_t big[curve256::kEncodedBytes];
  for (auto& b : big) b = 0xFF;
  big[0] = 0x02;
  EXPECT_FALSE(curve256::decode(big, back));
  std::uint8_t off[curve256::kEncodedBytes] = {0};  // x = 0: y^2 = 7 non-residue
  off[0] = 0x02;
  EXPECT_FALSE(curve256::decode(off, back));
}

TEST(Curve256Test, GlvEndomorphismDerivation) {
  const Fe beta = curve256::endo_beta();
  // beta is a nontrivial cube root of unity in GF(p)...
  EXPECT_FALSE(fe256::eq(beta, fe256::one()));
  EXPECT_TRUE(fe256::eq(fe256::mul(fe256::sqr(beta), beta), fe256::one()));
  // ...and specifically the standard secp256k1 beta or its square (the two
  // primitive roots are interchangeable as long as lambda matches, which
  // the phi(P) == lambda*P checks below pin down).
  const Fe known =
      fe_from_hex("7AE96A2B657C07106E64479EAC3434E99CF0497512F58995C1396C28719501EE");
  EXPECT_TRUE(fe256::eq(beta, known) || fe256::eq(beta, fe256::sqr(known)));

  Rng rng(7);
  for (int i = 0; i < 4; ++i) {
    Point p = curve256::mul(curve256::generator(), random_scalar(rng));
    curve256::normalize(p);
    // phi(x, y) = (beta*x, y) stays on the curve and acts as *lambda.
    Point phi = p;
    phi.x = fe256::mul(phi.x, beta);
    EXPECT_TRUE(curve256::on_curve(phi));
    EXPECT_TRUE(curve256::eq(phi, naive_mul(p, curve256::endo_lambda())));
    // phi has order 3.
    Point phi3 = phi;
    phi3.x = fe256::mul(phi3.x, beta);
    phi3.x = fe256::mul(phi3.x, beta);
    EXPECT_TRUE(curve256::eq(phi3, p));
  }
}

TEST(Curve256Test, GlvMulEdgeScalars) {
  // The GLV split path must agree with the naive ladder on boundary scalars
  // (tiny values and n-1, whose halves exercise the negative branches).
  Scalar one;
  one.v[0] = 1;
  EXPECT_TRUE(curve256::eq(curve256::mul(curve256::generator(), one), curve256::generator()));
  Scalar n_minus_1;
  for (int i = 0; i < 4; ++i) n_minus_1.v[i] = curve256::kOrder[i];
  n_minus_1.v[0] -= 1;
  EXPECT_TRUE(curve256::eq(curve256::mul(curve256::generator(), n_minus_1),
                           curve256::neg(curve256::generator())));
  for (std::uint64_t small : {2ULL, 3ULL, 7ULL, 0xFFFFFFFFFFFFFFFFULL}) {
    Scalar k;
    k.v[0] = small;
    EXPECT_TRUE(curve256::eq(curve256::mul(curve256::generator(), k),
                             naive_mul(curve256::generator(), k)));
  }
}

TEST(Curve256Test, HashToCurveLandsOnCurveDeterministically) {
  for (int i = 0; i < 5; ++i) {
    Bytes seed = bytes_of("seed" + std::to_string(i));
    Point p = curve256::hash_to_curve("domain", seed);
    EXPECT_TRUE(curve256::on_curve(p));
    EXPECT_FALSE(curve256::is_infinity(p));
    EXPECT_TRUE(curve256::eq(p, curve256::hash_to_curve("domain", seed)));
  }
  EXPECT_FALSE(curve256::eq(curve256::hash_to_curve("domain", bytes_of("a")),
                            curve256::hash_to_curve("domain", bytes_of("b"))));
}

}  // namespace
}  // namespace sintra::crypto
