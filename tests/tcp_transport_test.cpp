// TCP transport integration tests over real localhost sockets: framing +
// MAC on live connections, bidirectional exactly-once in-order delivery,
// peer restart with reconnect + retransmission, and rejection of
// unauthenticated streams.  Timing-tolerant: asserts wait on predicates
// with generous deadlines rather than sleeping fixed amounts.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <memory>
#include <mutex>
#include <thread>

#include "crypto/sha256.hpp"
#include "net/transport/tcp_transport.hpp"

namespace sintra::net::transport {
namespace {

bool wait_for(const std::function<bool()>& pred, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

Bytes pair_key(std::uint64_t seed, int a, int b) {
  Writer w;
  w.u64(seed);
  w.u32(static_cast<std::uint32_t>(std::min(a, b)));
  w.u32(static_cast<std::uint32_t>(std::max(a, b)));
  return crypto::hash_expand("test/tcp/link-key", w.data(), 32);
}

TcpTransport::Config make_config(int node_id, int n, std::uint64_t seed) {
  TcpTransport::Config config;
  config.node_id = node_id;
  config.endpoints.resize(static_cast<std::size_t>(n));
  config.link_keys.resize(static_cast<std::size_t>(n));
  for (int peer = 0; peer < n; ++peer) {
    if (peer != node_id) config.link_keys[static_cast<std::size_t>(peer)] =
        pair_key(seed, node_id, peer);
  }
  config.seed = seed + static_cast<std::uint64_t>(node_id);
  config.heartbeat_interval_ms = 50;
  config.heartbeat_timeout_ms = 600;
  config.reconnect_min_ms = 10;
  config.reconnect_max_ms = 100;
  config.ack_flush_ms = 5;
  return config;
}

/// Thread-safe per-peer payload collector.
struct Collector {
  std::mutex mutex;
  std::map<int, std::vector<Bytes>> received;

  TcpTransport::ReceiveFn fn() {
    return [this](int from, std::uint32_t /*group*/, BytesView payload) {
      std::lock_guard<std::mutex> lock(mutex);
      received[from].emplace_back(payload.begin(), payload.end());
    };
  }
  std::vector<Bytes> from(int peer) {
    std::lock_guard<std::mutex> lock(mutex);
    return received[peer];
  }
  std::size_t count(int peer) {
    std::lock_guard<std::mutex> lock(mutex);
    return received[peer].size();
  }
};

Bytes numbered(int node, int i) { return bytes_of("n" + std::to_string(node) + "/" + std::to_string(i)); }

TEST(TcpTransportTest, BidirectionalExactlyOnceInOrder) {
  const std::uint64_t seed = 11;
  Collector ca, cb;
  auto config_a = make_config(0, 2, seed);
  TcpTransport a(config_a, ca.fn());
  a.start();
  auto config_b = make_config(1, 2, seed);
  config_b.endpoints[0].port = a.listen_port();
  TcpTransport b(config_b, cb.fn());
  b.start();

  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    a.send(1, numbered(0, i));
    b.send(0, numbered(1, i));
  }
  ASSERT_TRUE(wait_for([&] { return ca.count(1) >= kCount && cb.count(0) >= kCount; }, 5000));
  const auto at_b = cb.from(0);
  const auto at_a = ca.from(1);
  ASSERT_EQ(at_b.size(), static_cast<std::size_t>(kCount));
  ASSERT_EQ(at_a.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(at_b[static_cast<std::size_t>(i)], numbered(0, i));
    EXPECT_EQ(at_a[static_cast<std::size_t>(i)], numbered(1, i));
  }
  EXPECT_GE(a.stats().connects, 1u);
  EXPECT_EQ(a.stats().auth_failures, 0u);
  b.stop();
  a.stop();
}

TEST(TcpTransportTest, ThreeNodesAllPairs) {
  const std::uint64_t seed = 23;
  constexpr int kN = 3;
  constexpr int kCount = 50;
  std::vector<std::unique_ptr<Collector>> collectors;
  std::vector<std::unique_ptr<TcpTransport>> nodes;
  std::vector<std::uint16_t> ports(kN, 0);
  for (int id = 0; id < kN; ++id) {
    auto config = make_config(id, kN, seed);
    for (int low = 0; low < id; ++low) config.endpoints[static_cast<std::size_t>(low)].port =
        ports[static_cast<std::size_t>(low)];
    collectors.push_back(std::make_unique<Collector>());
    nodes.push_back(std::make_unique<TcpTransport>(config, collectors.back()->fn()));
    nodes.back()->start();
    ports[static_cast<std::size_t>(id)] = nodes.back()->listen_port();
  }
  for (int from = 0; from < kN; ++from) {
    for (int to = 0; to < kN; ++to) {
      if (from == to) continue;
      for (int i = 0; i < kCount; ++i) nodes[static_cast<std::size_t>(from)]->send(to, numbered(from, i));
    }
  }
  ASSERT_TRUE(wait_for(
      [&] {
        for (int to = 0; to < kN; ++to) {
          for (int from = 0; from < kN; ++from) {
            if (from != to && collectors[static_cast<std::size_t>(to)]->count(from) < kCount) return false;
          }
        }
        return true;
      },
      10000));
  for (int to = 0; to < kN; ++to) {
    for (int from = 0; from < kN; ++from) {
      if (from == to) continue;
      const auto got = collectors[static_cast<std::size_t>(to)]->from(from);
      ASSERT_EQ(got.size(), static_cast<std::size_t>(kCount)) << from << "->" << to;
      for (int i = 0; i < kCount; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], numbered(from, i));
    }
  }
  for (auto& node : nodes) node->stop();
}

TEST(TcpTransportTest, PeerRestartTriggersReconnectAndRetransmission) {
  const std::uint64_t seed = 37;
  Collector ca;
  auto config_a = make_config(0, 2, seed);
  TcpTransport a(config_a, ca.fn());
  a.start();

  auto config_b = make_config(1, 2, seed);
  config_b.endpoints[0].port = a.listen_port();

  constexpr int kBatch = 30;
  std::vector<Bytes> full_stream;
  for (int i = 0; i < 2 * kBatch; ++i) full_stream.push_back(numbered(0, i));

  Collector cb1;
  auto b1 = std::make_unique<TcpTransport>(config_b, cb1.fn());
  b1->start();
  for (int i = 0; i < kBatch; ++i) a.send(1, full_stream[static_cast<std::size_t>(i)]);
  ASSERT_TRUE(wait_for([&] { return cb1.count(0) >= kBatch; }, 5000));
  b1->stop();  // crash: the incarnation's link state dies with it

  // Traffic sent while the peer is down is retained for retransmission.
  for (int i = kBatch; i < 2 * kBatch; ++i) a.send(1, full_stream[static_cast<std::size_t>(i)]);

  Collector cb2;
  auto b2 = std::make_unique<TcpTransport>(config_b, cb2.fn());
  b2->start();  // redials; the HELLO cursor exchange drives retransmission
  ASSERT_TRUE(wait_for([&] {
    const auto got = cb2.from(0);
    return !got.empty() && got.back() == full_stream.back();
  }, 10000));

  // The fresh incarnation must see a contiguous, duplicate-free suffix of
  // the stream covering at least everything sent while it was down
  // (acked frames from the first incarnation are pruned; unacked ones
  // may legitimately be re-delivered — at-least-once across crashes).
  const auto got = cb2.from(0);
  ASSERT_FALSE(got.empty());
  auto start = std::find(full_stream.begin(), full_stream.end(), got.front());
  ASSERT_NE(start, full_stream.end());
  ASSERT_LE(start - full_stream.begin(), kBatch) << "batch-2 prefix lost";
  ASSERT_EQ(got.size(), static_cast<std::size_t>(full_stream.end() - start));
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], *(start + static_cast<std::ptrdiff_t>(i)));
  }
  EXPECT_GE(a.stats().disconnects, 1u);
  EXPECT_GE(a.stats().connects, 2u);
  b2->stop();
  a.stop();
}

TEST(TcpTransportTest, GarbageStreamRejectedWithoutDisruption) {
  const std::uint64_t seed = 51;
  Collector ca, cb;
  auto config_a = make_config(0, 2, seed);
  TcpTransport a(config_a, ca.fn());
  a.start();
  auto config_b = make_config(1, 2, seed);
  config_b.endpoints[0].port = a.listen_port();
  TcpTransport b(config_b, cb.fn());
  b.start();
  ASSERT_TRUE(wait_for([&] { return a.stats().connects >= 1; }, 5000));

  // An attacker connects and spews bytes that cannot authenticate.
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(a.listen_port());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  Bytes garbage(512, 0xEE);
  ASSERT_GT(::write(fd, garbage.data(), garbage.size()), 0);

  // The real peers keep working, before and after the attack.
  b.send(0, bytes_of("legit"));
  ASSERT_TRUE(wait_for([&] { return ca.count(1) >= 1; }, 5000));
  EXPECT_EQ(ca.from(1)[0], bytes_of("legit"));
  ::close(fd);
  b.stop();
  a.stop();
}

TEST(TcpTransportTest, WrongLinkKeyNeverEstablishes) {
  Collector ca, cb;
  auto config_a = make_config(0, 2, /*seed=*/61);
  TcpTransport a(config_a, ca.fn());
  a.start();
  auto config_b = make_config(1, 2, /*seed=*/62);  // different dealer: wrong keys
  config_b.endpoints[0].port = a.listen_port();
  TcpTransport b(config_b, cb.fn());
  b.start();
  b.send(0, bytes_of("should never arrive"));
  // The MAC check rejects the impostor's HELLO; give it time to try.
  EXPECT_TRUE(wait_for([&] { return a.stats().auth_failures >= 1; }, 5000));
  EXPECT_EQ(ca.count(1), 0u);
  EXPECT_EQ(a.stats().connects, 0u);
  b.stop();
  a.stop();
}

TEST(TcpTransportTest, SendManyCoalescesIntoOneBatchFrame) {
  const std::uint64_t seed = 71;
  Collector ca, cb;
  auto config_a = make_config(0, 2, seed);
  TcpTransport a(config_a, ca.fn());
  a.start();
  auto config_b = make_config(1, 2, seed);
  config_b.endpoints[0].port = a.listen_port();
  TcpTransport b(config_b, cb.fn());
  b.start();
  ASSERT_TRUE(wait_for([&] { return a.stats().connects >= 1; }, 5000));

  constexpr int kCount = 50;
  std::vector<Bytes> payloads;
  for (int i = 0; i < kCount; ++i) payloads.push_back(numbered(0, i));
  a.send_many(1, payloads);
  ASSERT_TRUE(wait_for([&] { return cb.count(0) >= kCount; }, 5000));
  const auto got = cb.from(0);
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(got[static_cast<std::size_t>(i)], numbered(0, i));

  // The coalescing proof: all 50 payloads rode BATCH super-frames, and the
  // whole flush cost one frame and one HMAC (a retransmit on a slow runner
  // may add a batch — what may never happen is one frame per payload).
  const TcpTransport::Stats stats = a.stats();
  EXPECT_GE(stats.frames_coalesced, static_cast<std::uint64_t>(kCount));
  EXPECT_GE(stats.batches_sent, 1u);
  EXPECT_LE(stats.batches_sent, 5u) << "flush split into near-per-payload frames";
  // HMACs: one per batch plus handshake/heartbeat traffic — nowhere near
  // one per payload.
  EXPECT_LT(stats.hmacs_computed, static_cast<std::uint64_t>(kCount));
  EXPECT_GT(stats.writev_calls, 0u);
  b.stop();
  a.stop();
}

TEST(TcpTransportTest, KillingPeerMidSendDoesNotRaiseSigpipe) {
  // Regression: outbound writes used raw ::write, so a peer dying between
  // poll() and write() delivered SIGPIPE and killed the process.  With
  // sendmsg(MSG_NOSIGNAL) the dead socket surfaces as EPIPE and becomes an
  // orderly disconnect.
  const std::uint64_t seed = 83;
  Collector ca, cb;
  auto config_a = make_config(0, 2, seed);
  TcpTransport a(config_a, ca.fn());
  a.start();
  auto config_b = make_config(1, 2, seed);
  config_b.endpoints[0].port = a.listen_port();
  auto b = std::make_unique<TcpTransport>(config_b, cb.fn());
  b->start();
  ASSERT_TRUE(wait_for([&] { return a.stats().connects >= 1; }, 5000));

  // Kill the peer, then keep writing into the dead connection.  The RST
  // arrives asynchronously, so some of these writes hit a socket the
  // kernel already knows is gone — the SIGPIPE window.
  b.reset();
  for (int i = 0; i < 500; ++i) {
    a.send(1, numbered(0, i));
    if (i % 100 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  // Alive to observe the orderly disconnect — with SIGPIPE undisposed the
  // process would have died inside the reactor instead.
  EXPECT_TRUE(wait_for([&] { return a.stats().disconnects >= 1; }, 5000));
  a.stop();
}

TEST(TcpTransportTest, SignalStormDoesNotDisruptDelivery) {
  // EINTR regression: a signal landing in accept/connect/read/sendmsg used
  // to be treated as a connection error.  Install a no-op handler WITHOUT
  // SA_RESTART (so every blocking syscall genuinely returns EINTR) and
  // hammer the process with signals while traffic flows: delivery must
  // stay exactly-once in-order with zero disconnects.
  struct sigaction storm_action {};
  storm_action.sa_handler = [](int) {};
  storm_action.sa_flags = 0;  // deliberately no SA_RESTART
  sigemptyset(&storm_action.sa_mask);
  struct sigaction previous {};
  ASSERT_EQ(sigaction(SIGUSR1, &storm_action, &previous), 0);

  const std::uint64_t seed = 97;
  Collector ca, cb;
  auto config_a = make_config(0, 2, seed);
  TcpTransport a(config_a, ca.fn());
  a.start();
  auto config_b = make_config(1, 2, seed);
  config_b.endpoints[0].port = a.listen_port();
  TcpTransport b(config_b, cb.fn());
  b.start();

  std::atomic<bool> storming{true};
  std::thread storm([&storming] {
    while (storming.load()) {
      ::kill(::getpid(), SIGUSR1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  constexpr int kCount = 200;
  for (int i = 0; i < kCount; ++i) {
    a.send(1, numbered(0, i));
    b.send(0, numbered(1, i));
    if (i % 20 == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const bool all_arrived =
      wait_for([&] { return ca.count(1) >= kCount && cb.count(0) >= kCount; }, 10000);
  storming.store(false);
  storm.join();
  ASSERT_TRUE(all_arrived);

  const auto at_b = cb.from(0);
  const auto at_a = ca.from(1);
  ASSERT_EQ(at_b.size(), static_cast<std::size_t>(kCount));
  ASSERT_EQ(at_a.size(), static_cast<std::size_t>(kCount));
  for (int i = 0; i < kCount; ++i) {
    EXPECT_EQ(at_b[static_cast<std::size_t>(i)], numbered(0, i));
    EXPECT_EQ(at_a[static_cast<std::size_t>(i)], numbered(1, i));
  }
  // EINTR handled everywhere means the storm never looked like a failure.
  EXPECT_EQ(a.stats().disconnects, 0u);
  EXPECT_EQ(b.stats().disconnects, 0u);
  EXPECT_EQ(a.stats().auth_failures, 0u);
  b.stop();
  a.stop();
  ASSERT_EQ(sigaction(SIGUSR1, &previous, nullptr), 0);
}

}  // namespace
}  // namespace sintra::net::transport
