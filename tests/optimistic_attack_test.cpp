// Byzantine-sequencer attacks on the optimistic protocol: equivocating
// assignments, skipped sequence numbers, selective commit delivery, forged
// certificates.  Safety must survive all of them; liveness is recovered by
// the switch.
#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "protocols/harness.hpp"
#include "protocols/optimistic.hpp"

namespace sintra::protocols {
namespace {

using crypto::BigInt;
using crypto::SigShare;

struct OptState {
  std::unique_ptr<OptimisticBroadcast> opt;
  std::vector<Bytes> log;
};

Cluster<OptState> make_cluster(adversary::Deployment deployment, net::Scheduler& sched,
                               std::uint64_t seed = 1) {
  return Cluster<OptState>(
      std::move(deployment), sched,
      [](net::Party& party, int) {
        auto state = std::make_unique<OptState>();
        state->opt = std::make_unique<OptimisticBroadcast>(
            party, "opt", /*sequencer=*/0,
            [s = state.get()](Bytes payload) { s->log.push_back(std::move(payload)); });
        return state;
      },
      0, 0, seed);
}

/// Byzantine sequencer that assigns DIFFERENT payloads to the same slot for
/// different parties (equivocation) and signs nothing itself.
class EquivocatingSequencer final : public net::Process {
 public:
  EquivocatingSequencer(net::Simulator& sim, int id) : sim_(sim), id_(id) {}
  void on_start() override {
    for (int to = 1; to < sim_.n(); ++to) {
      Writer w;
      w.u8(0);  // kAssign
      w.u64(0);
      w.bytes(bytes_of(to % 2 == 1 ? "AAAA" : "BBBB"));
      net::Message m;
      m.from = id_;
      m.to = to;
      m.tag = "opt";
      m.payload = w.take();
      sim_.submit(std::move(m));
    }
  }
  void on_message(const net::Message&) override {}  // never combines/commits

 private:
  net::Simulator& sim_;
  int id_;
};

TEST(OptimisticAttackTest, EquivocatingAssignsCannotSplitDeliveries) {
  // The honest parties sign conflicting chains for slot 0 (2 sign "AAAA",
  // 1 signs "BBBB"); neither reaches a full quorum, so no certificate and
  // no delivery can form — and after the switch both sides agree on the
  // empty fast prefix.
  Rng rng(1);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(1);
  auto cluster = make_cluster(deployment, sched);
  cluster.attach_custom(0, std::make_unique<EquivocatingSequencer>(cluster.simulator(), 0));
  cluster.start();
  cluster.simulator().run(100000);
  cluster.for_each([](int, OptState& s) { EXPECT_TRUE(s.log.empty()); });

  // Recovery: switch and deliver pessimistically.
  cluster.protocol(1)->opt->submit(bytes_of("recovered"));
  cluster.protocol(1)->opt->switch_to_pessimistic();
  ASSERT_TRUE(cluster.run_until_all([](OptState& s) { return s.log.size() >= 1; },
                                    20000000));
  cluster.for_each([](int, OptState& s) { EXPECT_EQ(s.log[0], bytes_of("recovered")); });
}

/// Sequencer that assigns slot 5 first (skips 0..4): honest parties sign
/// sequentially, so nothing can ever be certified.
class SkippingSequencer final : public net::Process {
 public:
  SkippingSequencer(net::Simulator& sim, int id) : sim_(sim), id_(id) {}
  void on_start() override {
    for (int to = 1; to < sim_.n(); ++to) {
      Writer w;
      w.u8(0);  // kAssign
      w.u64(5);
      w.bytes(bytes_of("orphan"));
      net::Message m;
      m.from = id_;
      m.to = to;
      m.tag = "opt";
      m.payload = w.take();
      sim_.submit(std::move(m));
    }
  }
  void on_message(const net::Message&) override {}

 private:
  net::Simulator& sim_;
  int id_;
};

TEST(OptimisticAttackTest, SkippedSlotsStallButStaySafe) {
  Rng rng(2);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(2);
  auto cluster = make_cluster(deployment, sched);
  cluster.attach_custom(0, std::make_unique<SkippingSequencer>(cluster.simulator(), 0));
  cluster.start();
  cluster.simulator().run(100000);
  cluster.for_each([](int, OptState& s) { EXPECT_TRUE(s.log.empty()); });
}

/// Sequencer that runs the protocol honestly but sends the COMMIT only to
/// one party — testing that the ACK-stability rule prevents a delivery
/// that the rest of the system could not recover.
class SelectiveCommitSequencer final : public net::Process {
 public:
  SelectiveCommitSequencer(net::Simulator& sim, int id, adversary::Deployment deployment,
                           std::uint64_t seed)
      : party_(sim, id, std::move(deployment), seed) {
    // Reuse the honest protocol object, but intercept its outgoing COMMIT
    // broadcasts at the network layer is not possible here; instead we
    // drive the slot manually below.
  }
  void on_start() override {
    // ASSIGN slot 0 honestly to everyone.
    Writer w;
    w.u8(0);
    w.u64(0);
    w.bytes(bytes_of("selective"));
    for (int to = 1; to < party_.n(); ++to) {
      net::Message m;
      m.from = party_.id();
      m.to = to;
      m.tag = "opt";
      m.payload = w.data();
      party_.network().submit(std::move(m));
    }
  }
  void on_message(const net::Message& message) override {
    if (message.tag != "opt") return;
    try {
      Reader r(message.payload);
      if (r.u8() != 1) return;  // kShare
      const std::uint64_t seq = r.u64();
      auto shares = r.vec<SigShare>([](Reader& rd) { return SigShare::decode(rd); });
      for (auto& share : shares) shares_.push_back(share);
      senders_ |= crypto::party_bit(message.from);
      if (committed_ || !party_.quorum().is_quorum(senders_)) return;
      // Combine the real certificate but send COMMIT to party 1 ONLY.
      auto genesis = crypto::hash_domain("sintra/opt/genesis", bytes_of(std::string("opt")));
      Writer chain_w;
      chain_w.raw(BytesView(genesis.data(), genesis.size()));
      chain_w.u64(0);
      chain_w.bytes(bytes_of("selective"));
      auto chain = crypto::hash_domain("sintra/opt/chain", chain_w.data());
      Writer stmt;
      stmt.str("sintra/opt/slot");
      stmt.str("opt");
      stmt.u64(seq);
      stmt.raw(BytesView(chain.data(), chain.size()));
      auto cert = party_.public_keys().cert_sig.combine(stmt.data(), shares_);
      if (!cert.has_value()) return;
      committed_ = true;
      Writer w;
      w.u8(2);  // kCommit
      w.u64(seq);
      w.bytes(bytes_of("selective"));
      cert->encode(w);
      net::Message m;
      m.from = party_.id();
      m.to = 1;
      m.tag = "opt";
      m.payload = w.take();
      party_.network().submit(std::move(m));
    } catch (const ProtocolError&) {
    }
  }

 private:
  net::Party party_;
  std::vector<SigShare> shares_;
  crypto::PartySet senders_ = 0;
  bool committed_ = false;
};

TEST(OptimisticAttackTest, SelectiveCommitCannotCauseUnrecoverableDelivery) {
  // Party 1 alone receives the (real!) certificate; the ACK rule requires
  // a vote quorum, so party 1 must NOT deliver — and after the switch, the
  // claim set recovers the certified payload for everyone (party 1's claim
  // carries the certificate), so nothing splits.
  Rng rng(3);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(3);
  auto cluster = make_cluster(deployment, sched);
  cluster.attach_custom(0, std::make_unique<SelectiveCommitSequencer>(
                               cluster.simulator(), 0, deployment, 55));
  cluster.start();
  cluster.simulator().run(200000);
  // The stability rule held: nobody delivered on a certificate known to
  // one party only.
  for (int id = 1; id < 4; ++id) {
    EXPECT_TRUE(cluster.protocol(id)->log.empty()) << "party " << id;
  }
  // Switch: party 1's claim carries the certificate; the agreed prefix
  // includes the payload at every party (or is empty at every party,
  // depending on whether the claim set includes party 1 — both are safe;
  // what must NOT happen is divergence).
  cluster.protocol(2)->opt->switch_to_pessimistic();
  ASSERT_TRUE(cluster.run_until_all([](OptState& s) { return s.opt->pessimistic(); },
                                    20000000));
  cluster.simulator().run(1000000);
  const auto& reference = cluster.protocol(1)->log;
  for (int id = 2; id < 4; ++id) EXPECT_EQ(cluster.protocol(id)->log, reference);
}

/// A forged COMMIT with a random "certificate".
TEST(OptimisticAttackTest, ForgedCommitRejected) {
  Rng rng(4);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(4);
  auto cluster = make_cluster(deployment, sched);
  Rng forger(5);
  cluster.attach_custom(
      0, std::make_unique<net::HookProcess>(
             [&cluster, &forger](const net::Message&) {
               Writer w;
               w.u8(2);  // kCommit
               w.u64(0);
               w.bytes(bytes_of("forged payload"));
               BigInt::from_bytes(forger.bytes(32)).encode(w);
               for (int to = 1; to < 4; ++to) {
                 net::Message m;
                 m.from = 0;
                 m.to = to;
                 m.tag = "opt";
                 m.payload = w.data();
                 cluster.simulator().submit(std::move(m));
               }
             },
             nullptr));
  cluster.start();
  cluster.simulator().run(100000);
  cluster.for_each([](int, OptState& s) { EXPECT_TRUE(s.log.empty()); });
}

}  // namespace
}  // namespace sintra::protocols
