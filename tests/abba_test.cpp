// ABBA tests: the three Byzantine-agreement properties (validity,
// agreement, termination) across system sizes, corruption patterns,
// schedulers and seeds, plus round-count behaviour (expected constant).
#include <gtest/gtest.h>

#include "adversary/examples.hpp"
#include "protocols/abba.hpp"
#include "protocols/harness.hpp"

namespace sintra::protocols {
namespace {

using crypto::PartySet;
using crypto::party_bit;

struct AbbaState {
  std::unique_ptr<Abba> abba;
  std::optional<bool> decision;
  int round = 0;
};

Cluster<AbbaState> make_cluster(adversary::Deployment deployment, net::Scheduler& sched,
                                PartySet corrupted = 0, std::uint64_t seed = 1) {
  return Cluster<AbbaState>(
      std::move(deployment), sched,
      [](net::Party& party, int) {
        auto state = std::make_unique<AbbaState>();
        state->abba = std::make_unique<Abba>(party, "ba/0",
                                             [s = state.get()](bool v, int r) {
                                               s->decision = v;
                                               s->round = r;
                                             });
        return state;
      },
      corrupted, 0, seed);
}

/// Runs one agreement to completion; returns the common decision.
/// Fails the test on disagreement or non-termination.
std::optional<bool> run_agreement(Cluster<AbbaState>& cluster, const std::vector<int>& inputs,
                                  std::uint64_t max_steps = 3000000) {
  cluster.start();
  cluster.for_each([&](int id, AbbaState& s) {
    s.abba->start(inputs[static_cast<std::size_t>(id)] == 1);
  });
  if (!cluster.run_until_all([](AbbaState& s) { return s.decision.has_value(); }, max_steps)) {
    ADD_FAILURE() << "agreement did not terminate";
    return std::nullopt;
  }
  std::optional<bool> common;
  cluster.for_each([&](int, AbbaState& s) {
    if (!common.has_value()) common = s.decision;
    EXPECT_EQ(*s.decision, *common) << "agreement violated";
  });
  return common;
}

TEST(AbbaTest, ValidityUnanimousInputs) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    for (int value : {0, 1}) {
      Rng rng(seed);
      auto deployment = adversary::Deployment::threshold(4, 1, rng);
      net::RandomScheduler sched(seed * 3 + static_cast<std::uint64_t>(value));
      auto cluster = make_cluster(deployment, sched, 0, seed);
      auto decision = run_agreement(cluster, std::vector<int>(4, value));
      ASSERT_TRUE(decision.has_value());
      EXPECT_EQ(*decision, value == 1) << "validity violated at seed " << seed;
    }
  }
}

TEST(AbbaTest, ValidityWithCrashedParties) {
  // All *honest* parties propose 1 while t parties crash: must decide 1.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(7, 2, rng);
    net::RandomScheduler sched(seed);
    auto cluster = make_cluster(deployment, sched, party_bit(0) | party_bit(6), seed);
    auto decision = run_agreement(cluster, std::vector<int>(7, 1));
    ASSERT_TRUE(decision.has_value());
    EXPECT_TRUE(*decision);
  }
}

TEST(AbbaTest, MixedInputsTerminateAndAgree) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 17);
    auto cluster = make_cluster(deployment, sched, 0, seed);
    auto decision = run_agreement(cluster, {0, 1, 1, 0});
    EXPECT_TRUE(decision.has_value());
  }
}

class AbbaSizeTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AbbaSizeTest, MixedInputsWithMaxCrashes) {
  auto [n, t] = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(n, t, rng);
    net::RandomScheduler sched(seed * 29);
    PartySet corrupted = 0;
    for (int i = 0; i < t; ++i) corrupted |= party_bit(i * 2);  // spread out
    auto cluster = make_cluster(deployment, sched, corrupted, seed);
    std::vector<int> inputs(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) inputs[static_cast<std::size_t>(i)] = i % 2;
    EXPECT_TRUE(run_agreement(cluster, inputs).has_value()) << "n=" << n << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, AbbaSizeTest,
                         ::testing::Values(std::make_pair(4, 1), std::make_pair(7, 2),
                                           std::make_pair(10, 3), std::make_pair(13, 4)));

TEST(AbbaTest, AdversarialSchedulers) {
  for (int which = 0; which < 3; ++which) {
    Rng rng(100 + static_cast<std::uint64_t>(which));
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    std::unique_ptr<net::Scheduler> sched;
    switch (which) {
      case 0: sched = std::make_unique<net::LifoScheduler>(7); break;
      case 1: sched = std::make_unique<net::StarvePartyScheduler>(7, 1); break;
      default: sched = std::make_unique<net::StarveSetScheduler>(7, 0b0011, 4); break;
    }
    auto cluster = make_cluster(deployment, *sched, 0, 50);
    EXPECT_TRUE(run_agreement(cluster, {1, 0, 0, 1}).has_value()) << "scheduler " << which;
  }
}

TEST(AbbaTest, RoundsStaySmall) {
  // Expected-constant-rounds: across seeds, the max decision round must be
  // small (the benchmark E2 measures the full distribution).
  int max_round = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 7);
    auto cluster = make_cluster(deployment, sched, 0, seed);
    auto decision = run_agreement(cluster, {0, 1, 0, 1});
    ASSERT_TRUE(decision.has_value());
    cluster.for_each([&](int, AbbaState& s) { max_round = std::max(max_round, s.round); });
  }
  EXPECT_LE(max_round, 6);
}

TEST(AbbaTest, CannotStartTwice) {
  Rng rng(1);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(1);
  auto cluster = make_cluster(deployment, sched);
  cluster.start();
  cluster.protocol(0)->abba->start(true);
  EXPECT_THROW(cluster.protocol(0)->abba->start(false), ProtocolError);
}

/// Byzantine attacker with full key material: votes both values in round 1
/// (equivocation) and spams conflicting inputs.
class EquivocatingVoter final : public net::Process {
 public:
  EquivocatingVoter(net::Simulator& sim, int id, adversary::Deployment deployment,
                    std::uint64_t seed)
      : party_(sim, id, std::move(deployment), seed) {
    // An inner honest ABBA instance would constrain us; instead craft raw
    // messages.  We reuse the honest party only for keys/sending.
  }
  void on_start() override {
    // INPUT both 0 and 1 (each properly signed).
    for (int value : {0, 1}) {
      Writer w;
      w.u8(4);  // kInput
      w.u8(static_cast<std::uint8_t>(value));
      Writer stmt;
      stmt.str("sintra/abba");
      stmt.str("ba/0");
      stmt.str("input");
      stmt.u32(0);
      stmt.u8(static_cast<std::uint8_t>(value));
      auto shares = party_.keys().reply_sig.sign(party_.public_keys().reply_sig, stmt.data(),
                                                 party_.rng());
      w.vec(shares, [](Writer& wr, const crypto::SigShare& s) { s.encode(wr); });
      for (int to = 0; to < party_.n(); ++to) {
        if (to == party_.id()) continue;
        net::Message m;
        m.from = party_.id();
        m.to = to;
        m.tag = "ba/0";
        m.payload = w.data();
        party_.network().submit(std::move(m));
      }
    }
  }
  void on_message(const net::Message&) override {}

 private:
  net::Party party_;
};

TEST(AbbaTest, EquivocatingInputsDoNotBreakAgreement) {
  // The corrupted party double-votes its INPUT; honest parties still agree
  // and terminate.  (Double inputs can anchor both values — allowed.)
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 31);
    auto cluster = make_cluster(deployment, sched, 0, seed);
    cluster.attach_custom(3, std::make_unique<EquivocatingVoter>(cluster.simulator(), 3,
                                                                 deployment, seed));
    cluster.start();
    cluster.for_each([&](int id, AbbaState& s) { s.abba->start(id % 2 == 0); });
    ASSERT_TRUE(cluster.run_until_all([](AbbaState& s) { return s.decision.has_value(); },
                                      3000000))
        << "seed " << seed;
    std::optional<bool> common;
    cluster.for_each([&](int, AbbaState& s) {
      if (!common.has_value()) common = s.decision;
      EXPECT_EQ(*s.decision, *common);
    });
  }
}

TEST(AbbaTest, GeneralAdversaryStructureExample1) {
  // Full ABBA over the paper's Example 1 structure with the whole of
  // class a (four servers!) crashed — more than any threshold could take.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::example1_deployment(rng);
    net::RandomScheduler sched(seed * 41);
    PartySet class_a = party_bit(0) | party_bit(1) | party_bit(2) | party_bit(3);
    auto cluster = make_cluster(deployment, sched, class_a, seed);
    std::vector<int> inputs = {0, 0, 0, 0, 1, 1, 1, 1, 1};  // honest all 1
    auto decision = run_agreement(cluster, inputs);
    ASSERT_TRUE(decision.has_value());
    EXPECT_TRUE(*decision);  // validity among honest parties
  }
}

}  // namespace
}  // namespace sintra::protocols
