// Scheduler fairness properties (issue 2):
//  * every fair scheduler (Random, Fifo, Lifo, StarveParty, StarveSet) is
//    fair-in-the-limit — everything submitted is eventually delivered,
//    even when new traffic keeps arriving while the backlog drains;
//  * the Block* schedulers are correctly *unfair* — withheld traffic
//    never moves, however long the run;
//  * victim masks naming parties outside 0..n-1 are rejected (such bits
//    silently never match, making the adversary weaker than configured).
#include <gtest/gtest.h>

#include <memory>

#include "crypto/sharing.hpp"
#include "net/scheduler.hpp"
#include "net/simulator.hpp"

namespace sintra::net {
namespace {

/// Counts deliveries and, on each delivery, echoes a bounded number of
/// follow-up messages — sustained load while the scheduler works.
class EchoLoad final : public Process {
 public:
  EchoLoad(Simulator& sim, int id, int echo_budget)
      : sim_(sim), id_(id), echo_budget_(echo_budget) {}

  void on_message(const Message&) override {
    ++received;
    if (echo_budget_ <= 0) return;
    --echo_budget_;
    Message m;
    m.from = id_;
    m.to = (id_ + 1) % sim_.n();
    m.tag = "load/echo";
    sim_.submit(std::move(m));
  }

  int received = 0;

 private:
  Simulator& sim_;
  int id_;
  int echo_budget_;
};

struct LoadedSim {
  std::unique_ptr<Simulator> sim;
  std::vector<EchoLoad*> recs;
  std::uint64_t submitted = 0;
};

/// n parties, each seeded with `initial` messages to every other party and
/// echoing `echo_budget` more on delivery (load that eventually drains —
/// the precondition for fairness-in-the-limit).
LoadedSim make_loaded(Scheduler& sched, int n, int initial, int echo_budget) {
  LoadedSim loaded;
  loaded.sim = std::make_unique<Simulator>(n, sched);
  for (int id = 0; id < n; ++id) {
    auto process = std::make_unique<EchoLoad>(*loaded.sim, id, echo_budget);
    loaded.recs.push_back(process.get());
    loaded.sim->attach(id, std::move(process));
  }
  loaded.sim->start();
  for (int from = 0; from < n; ++from) {
    for (int to = 0; to < n; ++to) {
      if (to == from) continue;
      for (int k = 0; k < initial; ++k) {
        Message m;
        m.from = from;
        m.to = to;
        m.tag = "load/seed";
        loaded.sim->submit(std::move(m));
      }
    }
  }
  loaded.submitted = loaded.sim->total_messages();
  return loaded;
}

void expect_everything_delivered(LoadedSim& loaded) {
  loaded.sim->run(1000000);
  EXPECT_EQ(loaded.sim->pending_count(), 0u) << "messages stuck in flight";
  std::uint64_t delivered = 0;
  for (EchoLoad* rec : loaded.recs) delivered += static_cast<std::uint64_t>(rec->received);
  // total_messages() counts echoes submitted during the run too.
  EXPECT_EQ(delivered, loaded.sim->total_messages());
  EXPECT_GE(delivered, loaded.submitted);
}

TEST(SchedulerFairnessTest, FairSchedulersDeliverEverything) {
  const int n = 4;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<std::unique_ptr<Scheduler>> fair;
    fair.push_back(std::make_unique<RandomScheduler>(seed));
    fair.push_back(std::make_unique<FifoScheduler>());
    fair.push_back(std::make_unique<LifoScheduler>(seed));
    fair.push_back(std::make_unique<StarvePartyScheduler>(seed, /*victim=*/1));
    fair.push_back(std::make_unique<StarveSetScheduler>(seed, /*victims=*/0b101, n));
    for (std::size_t which = 0; which < fair.size(); ++which) {
      SCOPED_TRACE("scheduler " + std::to_string(which) + " seed " + std::to_string(seed));
      auto loaded = make_loaded(*fair[which], n, /*initial=*/5, /*echo_budget=*/20);
      expect_everything_delivered(loaded);
    }
  }
}

TEST(SchedulerFairnessTest, BlockSchedulersNeverReleaseVictimTraffic) {
  const int n = 4;
  const int victim = 2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<std::unique_ptr<Scheduler>> unfair;
    unfair.push_back(std::make_unique<BlockPartyScheduler>(seed, victim));
    unfair.push_back(std::make_unique<BlockSetScheduler>(seed, crypto::party_bit(victim), n));
    for (std::size_t which = 0; which < unfair.size(); ++which) {
      SCOPED_TRACE("scheduler " + std::to_string(which) + " seed " + std::to_string(seed));
      auto loaded = make_loaded(*unfair[which], n, /*initial=*/5, /*echo_budget=*/20);
      loaded.sim->run(1000000);
      // The victim receives nothing, and everything touching the victim is
      // still pending — withheld forever, not merely delayed.
      EXPECT_EQ(loaded.recs[victim]->received, 0);
      EXPECT_GT(loaded.sim->pending_count(), 0u);
      std::uint64_t delivered = 0;
      for (EchoLoad* rec : loaded.recs) delivered += static_cast<std::uint64_t>(rec->received);
      EXPECT_EQ(delivered + loaded.sim->pending_count(), loaded.sim->total_messages());
    }
  }
}

TEST(SchedulerFairnessTest, VictimMaskValidatedAgainstPartyCount) {
  // Bit 5 with n = 4: that "victim" does not exist — reject loudly.
  EXPECT_THROW(StarveSetScheduler(1, 1ull << 5, 4), ProtocolError);
  EXPECT_THROW(BlockSetScheduler(1, 1ull << 5, 4), ProtocolError);
  EXPECT_THROW(StarveSetScheduler(1, 0b10110, 4), ProtocolError);
  // Valid masks construct fine, including the n = 64 boundary (where the
  // naive `mask >> n` validation would be undefined behaviour).
  EXPECT_NO_THROW(StarveSetScheduler(1, 0b0110, 4));
  EXPECT_NO_THROW(BlockSetScheduler(1, ~0ull, 64));
  EXPECT_THROW(StarveSetScheduler(1, 0, 0), ProtocolError);
}

}  // namespace
}  // namespace sintra::net
