// Cross-backend differential suite: every discrete-log protocol — coin,
// TDH2, NIZK, Feldman VSS, and the batch verifiers — runs end-to-end over
// both group representations (Z_p* Schnorr and secp256k1) from the same
// seeds, asserting identical protocol-level behaviour: honest flows
// accept, tampered flows are rejected with the culprits identified, and
// wire round-trips are exact.  Any representation leak (a consumer
// assuming residues, an identity special case, an encoding size
// assumption) shows up as a divergence between the two parameterizations.
#include <gtest/gtest.h>

#include <map>

#include "adversary/quorum.hpp"
#include "crypto/batch.hpp"
#include "crypto/coin.hpp"
#include "crypto/dealer.hpp"
#include "crypto/nizk.hpp"
#include "crypto/shamir.hpp"
#include "crypto/tdh2.hpp"
#include "crypto/vss.hpp"

namespace sintra::crypto {
namespace {

class DifferentialBackendTest : public ::testing::TestWithParam<const char*> {
 protected:
  [[nodiscard]] GroupPtr group() const { return Group::by_name(GetParam()); }
  [[nodiscard]] std::shared_ptr<const ThresholdScheme> scheme() const {
    return std::make_shared<ThresholdScheme>(4, 1);
  }
};

TEST_P(DifferentialBackendTest, CoinEndToEnd) {
  GroupPtr g = group();
  Rng rng(100);
  auto deal = CoinDeal::deal(g, scheme(), rng);
  Bytes name = bytes_of("diff-coin");

  std::vector<CoinShare> shares;
  for (int p = 0; p < 4; ++p) {
    for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].share(deal.public_key, name,
                                                                       rng)) {
      EXPECT_TRUE(deal.public_key.verify_share(name, s));
      shares.push_back(s);
    }
  }

  // Any qualified subset combines to the same coin value.
  auto v01 = deal.public_key.combine(name, {shares[0], shares[1]});
  auto v23 = deal.public_key.combine(name, {shares[2], shares[3]});
  ASSERT_TRUE(v01.has_value());
  ASSERT_TRUE(v23.has_value());
  EXPECT_EQ(*v01, *v23);

  // A tampered share fails strict verification.
  CoinShare bad = shares[0];
  bad.value = g->mul(bad.value, g->g());
  EXPECT_FALSE(deal.public_key.verify_share(name, bad));

  // Wire round-trip is exact.
  Writer w;
  shares[0].encode(w, *g);
  Reader r(w.data());
  CoinShare decoded = CoinShare::decode(r, *g);
  EXPECT_EQ(decoded.value, shares[0].value);
  EXPECT_TRUE(deal.public_key.verify_share(name, decoded));
}

TEST_P(DifferentialBackendTest, Tdh2EndToEnd) {
  GroupPtr g = group();
  Rng rng(101);
  auto deal = Tdh2Deal::deal(g, scheme(), rng);
  const Bytes message = bytes_of("differential secret");
  const Bytes label = bytes_of("label");
  auto ct = deal.public_key.encrypt(message, label, rng);
  EXPECT_TRUE(deal.public_key.check_ciphertext(ct));

  // Ciphertext wire round-trip.
  Writer w;
  ct.encode(w, *g);
  Reader r(w.data());
  auto ct2 = Tdh2Ciphertext::decode(r, *g);
  EXPECT_TRUE(deal.public_key.check_ciphertext(ct2));

  std::vector<Tdh2DecShare> shares;
  for (int p = 0; p < 2; ++p) {
    for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].decrypt_shares(
             deal.public_key, ct2, rng)) {
      EXPECT_TRUE(deal.public_key.verify_share(ct2, s));
      shares.push_back(s);
    }
  }
  auto plaintext = deal.public_key.combine(ct2, shares);
  ASSERT_TRUE(plaintext.has_value());
  EXPECT_EQ(*plaintext, message);

  // A tampered decryption share fails verification.
  Tdh2DecShare bad = shares[0];
  bad.value = g->mul(bad.value, g->g());
  EXPECT_FALSE(deal.public_key.verify_share(ct2, bad));

  // A tampered ciphertext fails its well-formedness proof.
  auto mangled = ct;
  mangled.u = g->mul(mangled.u, g->g());
  EXPECT_FALSE(deal.public_key.check_ciphertext(mangled));
}

TEST_P(DifferentialBackendTest, NizkProofs) {
  GroupPtr g = group();
  Rng rng(102);
  const BigInt x = g->random_scalar(rng);
  const Element g2 = g->hash_to_element("diff-nizk", bytes_of("second base"));
  const Element h1 = g->exp_g(x);
  const Element h2 = g->exp(g2, x);

  auto dleq = DleqProof::prove(*g, "ctx", g->g(), h1, g2, h2, x, rng);
  EXPECT_TRUE(dleq.verify(*g, "ctx", g->g(), h1, g2, h2));
  EXPECT_FALSE(dleq.verify(*g, "other-ctx", g->g(), h1, g2, h2));
  EXPECT_FALSE(dleq.verify(*g, "ctx", g->g(), h2, g2, h1));

  Writer w;
  dleq.encode(w, *g);
  Reader r(w.data());
  auto dleq2 = DleqProof::decode(r, *g);
  EXPECT_TRUE(dleq2.verify(*g, "ctx", g->g(), h1, g2, h2));

  auto schnorr = SchnorrProof::prove(*g, "ctx", g->g(), h1, x, rng);
  EXPECT_TRUE(schnorr.verify(*g, "ctx", g->g(), h1));
  EXPECT_FALSE(schnorr.verify(*g, "ctx", g->g(), h2));
  Writer w2;
  schnorr.encode(w2, *g);
  Reader r2(w2.data());
  EXPECT_TRUE(SchnorrProof::decode(r2, *g).verify(*g, "ctx", g->g(), h1));
}

TEST_P(DifferentialBackendTest, FeldmanVss) {
  GroupPtr g = group();
  Rng rng(103);
  const BigInt secret = g->random_scalar(rng);
  auto dealing = FeldmanDealing::deal(*g, secret, 4, 1, rng);
  ASSERT_EQ(dealing.shares.size(), 4u);
  ASSERT_EQ(dealing.commitments.size(), 2u);
  EXPECT_EQ(dealing.public_image(), g->exp_g(secret));

  for (int p = 0; p < 4; ++p) {
    EXPECT_TRUE(FeldmanDealing::verify_share(*g, dealing.commitments, p,
                                             dealing.shares[static_cast<std::size_t>(p)]));
    EXPECT_EQ(FeldmanDealing::share_image(*g, dealing.commitments, p),
              g->exp_g(dealing.shares[static_cast<std::size_t>(p)]));
  }
  // Tampered share rejected.
  EXPECT_FALSE(FeldmanDealing::verify_share(*g, dealing.commitments, 0,
                                            g->scalar_add(dealing.shares[0], BigInt(1))));
  // Commitment wire round-trip.
  Writer w;
  dealing.encode_commitments(w, *g);
  Reader r(w.data());
  EXPECT_EQ(FeldmanDealing::decode_commitments(r, *g, 1), dealing.commitments);
}

TEST_P(DifferentialBackendTest, BatchVerifiersAcceptHonestAndIsolateBad) {
  GroupPtr g = group();
  Rng rng(104);
  const Element g2 = g->hash_to_element("diff-batch", bytes_of("g2"));

  std::vector<batch::DleqItem> items;
  for (int i = 0; i < 12; ++i) {
    const BigInt x = g->random_scalar(rng);
    batch::DleqItem item;
    item.context = "item" + std::to_string(i);
    item.h1 = g->exp_g(x);
    item.h2 = g->exp(g2, x);
    item.proof = DleqProof::prove(*g, item.context, g->g(), item.h1, g2, item.h2, x, rng);
    items.push_back(std::move(item));
  }
  EXPECT_TRUE(batch::verify_dleq(*g, g->g(), g2, items, rng));
  EXPECT_TRUE(batch::find_invalid_dleq(*g, g->g(), g2, items, rng).empty());

  auto tampered = items;
  tampered[3].h2 = g->mul(tampered[3].h2, g->g());
  tampered[9].proof.z = g->scalar_add(tampered[9].proof.z, BigInt(1));
  EXPECT_FALSE(batch::verify_dleq(*g, g->g(), g2, tampered, rng));
  EXPECT_EQ(batch::find_invalid_dleq(*g, g->g(), g2, tampered, rng),
            (std::vector<std::size_t>{3, 9}));

  std::vector<batch::SchnorrItem> sitems;
  for (int i = 0; i < 8; ++i) {
    const BigInt x = g->random_scalar(rng);
    batch::SchnorrItem item;
    item.context = "s" + std::to_string(i);
    item.h = g->exp_g(x);
    item.proof = SchnorrProof::prove(*g, item.context, g->g(), item.h, x, rng);
    sitems.push_back(std::move(item));
  }
  EXPECT_TRUE(batch::verify_schnorr(*g, g->g(), sitems, rng));
  auto stampered = sitems;
  stampered[5].h = g->mul(stampered[5].h, g->g());
  EXPECT_EQ(batch::find_invalid_schnorr(*g, g->g(), stampered, rng),
            (std::vector<std::size_t>{5}));
}

TEST_P(DifferentialBackendTest, BatchCoinAndCiphertextPaths) {
  GroupPtr g = group();
  Rng rng(105);
  auto deal = CoinDeal::deal(g, scheme(), rng);
  Bytes name = bytes_of("diff-batch-coin");
  std::vector<CoinShare> shares;
  for (int p = 0; p < 3; ++p) {
    for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].share(deal.public_key, name,
                                                                       rng)) {
      shares.push_back(s);
    }
  }
  EXPECT_TRUE(batch::verify_coin_shares(deal.public_key, name, shares, rng));
  auto optimistic = batch::combine_coin_optimistic(deal.public_key, name, shares, rng);
  ASSERT_TRUE(optimistic.value.has_value());
  EXPECT_EQ(*optimistic.value, *deal.public_key.combine(name, shares));

  auto tampered = shares;
  tampered[2].value = g->mul(tampered[2].value, g->g());
  EXPECT_FALSE(batch::verify_coin_shares(deal.public_key, name, tampered, rng));
  EXPECT_EQ(batch::find_invalid_coin_shares(deal.public_key, name, tampered, rng),
            (std::vector<std::size_t>{2}));

  auto tdh2 = Tdh2Deal::deal(g, scheme(), rng);
  std::vector<Tdh2Ciphertext> cts;
  for (int i = 0; i < 4; ++i) {
    cts.push_back(tdh2.public_key.encrypt(bytes_of("m" + std::to_string(i)), bytes_of("l"), rng));
  }
  EXPECT_TRUE(batch::verify_ciphertexts(tdh2.public_key, cts, rng));
  cts[1].w = g->mul(cts[1].w, g->g());
  EXPECT_EQ(batch::find_invalid_ciphertexts(tdh2.public_key, cts, rng),
            (std::vector<std::size_t>{1}));
}

TEST_P(DifferentialBackendTest, DealerBundleOnBackend) {
  GroupPtr g = group();
  Rng rng(106);
  auto bundle = KeyBundle::deal_threshold(4, 1, rng, g);
  const auto& pk = bundle.public_keys();
  Bytes name = bytes_of("bundle-coin");
  std::vector<CoinShare> shares;
  for (int p = 0; p < 2; ++p) {
    for (auto& s : bundle.share(p).coin.share(pk.coin, name, rng)) {
      EXPECT_TRUE(pk.coin.verify_share(name, s));
      shares.push_back(s);
    }
  }
  EXPECT_TRUE(pk.coin.combine(name, shares).has_value());

  auto ct = pk.encryption.encrypt(bytes_of("bundle secret"), bytes_of("l"), rng);
  std::vector<Tdh2DecShare> dec;
  for (int p = 2; p < 4; ++p) {
    for (auto& s : bundle.share(p).decryption.decrypt_shares(pk.encryption, ct, rng)) {
      dec.push_back(s);
    }
  }
  auto plaintext = pk.encryption.combine(ct, dec);
  ASSERT_TRUE(plaintext.has_value());
  EXPECT_EQ(*plaintext, bytes_of("bundle secret"));
}

INSTANTIATE_TEST_SUITE_P(Backends, DifferentialBackendTest,
                         ::testing::Values("test-256/128", "secp256k1"));

// ---- representation parity, asserted directly across backends ----------

TEST(DifferentialParityTest, EncodingSizesMatchDeclaredWidth) {
  for (const char* name : {"test-256/128", "default-768/256", "big-1536/256", "secp256k1"}) {
    GroupPtr g = Group::by_name(name);
    Rng rng(107);
    Writer w;
    g->encode_element(w, g->exp_g(g->random_scalar(rng)));
    g->encode_element(w, g->identity());
    EXPECT_EQ(w.data().size(), 2 * g->element_bytes()) << name;
  }
}

TEST(DifferentialParityTest, CurveElementsAreCompact) {
  // The point of the backend: 33-byte elements versus 96/192 for the
  // Schnorr representations, with the same 256-bit scalar field as big.
  EXPECT_EQ(Group::curve_group()->element_bytes(), 33u);
  EXPECT_EQ(Group::curve_group()->q().bit_length(), 256u);
  EXPECT_EQ(Group::big_group()->q().bit_length(), 256u);
  EXPECT_GT(Group::big_group()->element_bytes(), 4 * Group::curve_group()->element_bytes());
}

TEST(DifferentialParityTest, CurveDeploymentConfig) {
  // CryptoConfig::curve() wires the curve backend through the dealer and
  // a full deployment, RSA staying at production size.
  Rng rng(108);
  auto config = adversary::CryptoConfig::curve();
  EXPECT_EQ(config.group->name(), "secp256k1");
  auto deployment = adversary::Deployment::threshold(4, 1, rng, config);
  const auto& pk = deployment.keys->public_keys();
  Bytes name = bytes_of("deploy-coin");
  std::vector<CoinShare> shares;
  for (int p = 0; p < 2; ++p) {
    for (auto& s : deployment.keys->share(p).coin.share(pk.coin, name, rng)) {
      shares.push_back(s);
    }
  }
  auto value = pk.coin.combine(name, shares);
  ASSERT_TRUE(value.has_value());
}

}  // namespace
}  // namespace sintra::crypto
