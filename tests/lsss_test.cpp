// Benaloh–Leichter LSSS tests: gate-by-gate dealing, Δ-cleared
// reconstruction, agreement with formula evaluation, and randomized
// property sweeps over formula shapes.
#include <gtest/gtest.h>

#include "adversary/examples.hpp"
#include "adversary/lsss.hpp"
#include "crypto/group.hpp"

namespace sintra::adversary {
namespace {

using crypto::BigInt;
using crypto::contains;
using crypto::PartySet;
using crypto::set_of;

/// Deal + reconstruct through the LinearScheme interface.
void expect_reconstructs(const LsssScheme& scheme, PartySet parties, const BigInt& modulus,
                         Rng& rng) {
  BigInt secret = BigInt::random_below(rng, modulus);
  auto units = scheme.deal(secret, modulus, rng);
  std::map<int, BigInt> available;
  for (int u = 0; u < scheme.num_units(); ++u) {
    if (contains(parties, scheme.unit_owner(u))) available[u] = units[static_cast<std::size_t>(u)];
  }
  EXPECT_EQ(scheme.reconstruct(available, modulus), secret);
}

TEST(LsssTest, SingleLeaf) {
  LsssScheme scheme(Formula::leaf(0), 1);
  EXPECT_EQ(scheme.num_units(), 1);
  EXPECT_TRUE(scheme.qualified(set_of({0})));
  EXPECT_FALSE(scheme.qualified(0));
  Rng rng(1);
  expect_reconstructs(scheme, set_of({0}), crypto::Group::test_group()->q(), rng);
}

TEST(LsssTest, PureAnd) {
  LsssScheme scheme(Formula::land({Formula::leaf(0), Formula::leaf(1), Formula::leaf(2)}), 3);
  EXPECT_TRUE(scheme.delta().is_one());  // additive gates need no clearing
  Rng rng(2);
  BigInt q = crypto::Group::test_group()->q();
  expect_reconstructs(scheme, set_of({0, 1, 2}), q, rng);
  EXPECT_FALSE(scheme.qualified(set_of({0, 1})));
}

TEST(LsssTest, PureOr) {
  LsssScheme scheme(Formula::lor({Formula::leaf(0), Formula::leaf(1)}), 2);
  EXPECT_TRUE(scheme.delta().is_one());
  Rng rng(3);
  BigInt q = crypto::Group::test_group()->q();
  expect_reconstructs(scheme, set_of({0}), q, rng);
  expect_reconstructs(scheme, set_of({1}), q, rng);
}

TEST(LsssTest, PureThresholdMatchesShamirSemantics) {
  std::vector<Formula> leaves;
  for (int i = 0; i < 5; ++i) leaves.push_back(Formula::leaf(i));
  LsssScheme scheme(Formula::threshold(3, std::move(leaves)), 5);
  Rng rng(4);
  BigInt q = crypto::Group::test_group()->q();
  expect_reconstructs(scheme, set_of({0, 2, 4}), q, rng);
  expect_reconstructs(scheme, set_of({1, 2, 3, 4}), q, rng);
  EXPECT_FALSE(scheme.qualified(set_of({0, 4})));
  EXPECT_EQ(scheme.delta(), BigInt::factorial(5));
}

TEST(LsssTest, NestedGates) {
  // (0 AND 1) OR Θ2(2,3,4)
  auto f = Formula::lor({Formula::land({Formula::leaf(0), Formula::leaf(1)}),
                         Formula::threshold(2, {Formula::leaf(2), Formula::leaf(3),
                                                Formula::leaf(4)})});
  LsssScheme scheme(f, 5);
  Rng rng(5);
  BigInt q = crypto::Group::test_group()->q();
  expect_reconstructs(scheme, set_of({0, 1}), q, rng);
  expect_reconstructs(scheme, set_of({2, 4}), q, rng);
  expect_reconstructs(scheme, set_of({0, 3, 4}), q, rng);
  EXPECT_FALSE(scheme.qualified(set_of({0, 2})));
  EXPECT_FALSE(scheme.qualified(set_of({1})));
}

TEST(LsssTest, RepeatedLeavesGiveMultipleUnits) {
  // Party 0 appears in two branches: holds two units (weighted share).
  auto f = Formula::threshold(2, {Formula::leaf(0), Formula::leaf(0), Formula::leaf(1),
                                  Formula::leaf(2)});
  LsssScheme scheme(f, 3);
  EXPECT_EQ(scheme.num_units(), 4);
  EXPECT_EQ(scheme.units_of(0).size(), 2u);
  // Party 0 alone satisfies the 2-of-4 gate via its two leaves.
  EXPECT_TRUE(scheme.qualified(set_of({0})));
  EXPECT_FALSE(scheme.qualified(set_of({1})));
  Rng rng(6);
  expect_reconstructs(scheme, set_of({0}), crypto::Group::test_group()->q(), rng);
  expect_reconstructs(scheme, set_of({1, 2}), crypto::Group::test_group()->q(), rng);
}

TEST(LsssTest, UnqualifiedReconstructionThrows) {
  LsssScheme scheme(Formula::land({Formula::leaf(0), Formula::leaf(1)}), 2);
  EXPECT_THROW(scheme.coefficients(set_of({0})), ProtocolError);
}

TEST(LsssTest, UnsatisfiableFormulaRejected) {
  // n smaller than mentioned parties.
  EXPECT_THROW(LsssScheme(Formula::leaf(5), 3), ProtocolError);
}

TEST(LsssTest, Example1AllMinimalQualifiedSetsReconstruct) {
  Rng rng(7);
  LsssScheme scheme(example1_access(), 9);
  BigInt q = crypto::Group::test_group()->q();
  // Every 3-subset covering >= 2 classes is qualified and reconstructs.
  int checked = 0;
  for (int a = 0; a < 9; ++a) {
    for (int b = a + 1; b < 9; ++b) {
      for (int c = b + 1; c < 9; ++c) {
        PartySet set = set_of({a, b, c});
        std::set<int> classes = {kExample1Classes[a], kExample1Classes[b],
                                 kExample1Classes[c]};
        const bool expect_qualified = classes.size() >= 2;
        EXPECT_EQ(scheme.qualified(set), expect_qualified) << a << b << c;
        if (expect_qualified && checked < 12) {  // spot-check reconstruction
          expect_reconstructs(scheme, set, q, rng);
          ++checked;
        }
      }
    }
  }
}

TEST(LsssTest, Example2GridReconstructs) {
  Rng rng(8);
  LsssScheme scheme(example2_access(), 16);
  BigInt q = crypto::Group::test_group()->q();
  // 2x2 grid (locations {0,1} x OSes {0,1}) is the minimal interesting
  // qualified shape.
  PartySet grid = set_of({example2_party(0, 0), example2_party(0, 1), example2_party(1, 0),
                          example2_party(1, 1)});
  EXPECT_TRUE(scheme.qualified(grid));
  expect_reconstructs(scheme, grid, q, rng);
  // One full location: unqualified.
  PartySet row = set_of({example2_party(2, 0), example2_party(2, 1), example2_party(2, 2),
                         example2_party(2, 3)});
  EXPECT_FALSE(scheme.qualified(row));
  // One full OS: unqualified.
  PartySet column = set_of({example2_party(0, 3), example2_party(1, 3), example2_party(2, 3),
                            example2_party(3, 3)});
  EXPECT_FALSE(scheme.qualified(column));
}

TEST(LsssTest, QualifiedMatchesFormulaExhaustively) {
  // For a moderate formula, scheme.qualified must equal formula.eval on
  // every one of the 2^6 subsets, and reconstruction must succeed exactly
  // on the qualified ones.
  auto f = Formula::land({Formula::threshold(2, {Formula::leaf(0), Formula::leaf(1),
                                                 Formula::leaf(2)}),
                          Formula::lor({Formula::leaf(3), Formula::leaf(4),
                                        Formula::leaf(5)})});
  LsssScheme scheme(f, 6);
  Rng rng(9);
  BigInt q = crypto::Group::test_group()->q();
  BigInt secret = BigInt::random_below(rng, q);
  auto units = scheme.deal(secret, q, rng);
  for (PartySet set = 0; set < (PartySet{1} << 6); ++set) {
    ASSERT_EQ(scheme.qualified(set), f.eval(set));
    if (!scheme.qualified(set)) continue;
    std::map<int, BigInt> available;
    for (int u = 0; u < scheme.num_units(); ++u) {
      if (contains(set, scheme.unit_owner(u))) available[u] = units[static_cast<std::size_t>(u)];
    }
    EXPECT_EQ(scheme.reconstruct(available, q), secret) << "set=" << set;
  }
}

TEST(LsssTest, RandomFormulasProperty) {
  // Randomized sweep: build random small formulas, deal, and check the
  // Δ-identity on random qualified sets and rejection on unqualified ones.
  Rng rng(10);
  BigInt q = crypto::Group::test_group()->q();
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 4 + static_cast<int>(rng.below(4));
    // Two-level formula: Θ_k over m children, each child Θ_j over leaves.
    std::vector<Formula> children;
    const int m = 2 + static_cast<int>(rng.below(3));
    for (int c = 0; c < m; ++c) {
      std::vector<Formula> leaves;
      const int width = 2 + static_cast<int>(rng.below(3));
      for (int l = 0; l < width; ++l) {
        leaves.push_back(Formula::leaf(static_cast<int>(rng.below(static_cast<std::uint64_t>(n)))));
      }
      const int j = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(width)));
      children.push_back(Formula::threshold(j, std::move(leaves)));
    }
    const int k = 1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(m)));
    Formula f = Formula::threshold(k, std::move(children));
    if (!f.eval(crypto::full_set(n))) continue;  // unsatisfiable shapes skipped
    LsssScheme scheme(f, n);
    BigInt secret = BigInt::random_below(rng, q);
    auto units = scheme.deal(secret, q, rng);
    for (PartySet set = 0; set < (PartySet{1} << n); ++set) {
      if (!scheme.qualified(set)) continue;
      std::map<int, BigInt> available;
      for (int u = 0; u < scheme.num_units(); ++u) {
        if (contains(set, scheme.unit_owner(u))) {
          available[u] = units[static_cast<std::size_t>(u)];
        }
      }
      ASSERT_EQ(scheme.reconstruct(available, q), secret)
          << "trial=" << trial << " set=" << set;
    }
  }
}

TEST(LsssTest, WorksOverCompositeModulus) {
  // The RSA path: dealing over a composite modulus with integer-coefficient
  // reconstruction (Δ cleared).
  Rng rng(11);
  BigInt m = BigInt(1019) * BigInt(1283);
  LsssScheme scheme(example1_access(), 9);
  BigInt secret = BigInt::random_below(rng, m);
  auto units = scheme.deal(secret, m, rng);
  std::map<int, BigInt> available;
  for (int u = 0; u < scheme.num_units(); ++u) {
    if (contains(set_of({1, 5, 8}), scheme.unit_owner(u))) {
      available[u] = units[static_cast<std::size_t>(u)];
    }
  }
  EXPECT_EQ(scheme.reconstruct(available, m), secret);
}

}  // namespace
}  // namespace sintra::adversary
