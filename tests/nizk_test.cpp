// NIZK tests: completeness, serialization, and soundness against tampered
// statements/proofs — the robustness of every threshold primitive reduces
// to these proofs rejecting forgeries.
#include <gtest/gtest.h>

#include "crypto/group_schnorr.hpp"
#include "crypto/nizk.hpp"

namespace sintra::crypto {
namespace {

class NizkTest : public ::testing::Test {
 protected:
  GroupPtr group_ = Group::test_group();
  Rng rng_{1234};
};

TEST_F(NizkTest, DleqCompleteness) {
  for (int i = 0; i < 10; ++i) {
    BigInt x = group_->random_scalar(rng_);
    Element g2 = group_->hash_to_element("base", bytes_of(std::to_string(i)));
    Element h1 = group_->exp_g(x);
    Element h2 = group_->exp(g2, x);
    auto proof = DleqProof::prove(*group_, "ctx", group_->g(), h1, g2, h2, x, rng_);
    EXPECT_TRUE(proof.verify(*group_, "ctx", group_->g(), h1, g2, h2));
  }
}

TEST_F(NizkTest, DleqRejectsWrongWitnessStatement) {
  BigInt x = group_->random_scalar(rng_);
  BigInt y = group_->random_scalar(rng_);
  Element g2 = group_->hash_to_element("base", bytes_of("b"));
  Element h1 = group_->exp_g(x);
  Element h2 = group_->exp(g2, y);  // different exponent: statement false
  auto proof = DleqProof::prove(*group_, "ctx", group_->g(), h1, g2, h2, x, rng_);
  EXPECT_FALSE(proof.verify(*group_, "ctx", group_->g(), h1, g2, h2));
}

TEST_F(NizkTest, DleqContextBinding) {
  BigInt x = group_->random_scalar(rng_);
  Element g2 = group_->hash_to_element("base", bytes_of("b"));
  Element h1 = group_->exp_g(x);
  Element h2 = group_->exp(g2, x);
  auto proof = DleqProof::prove(*group_, "ctx-a", group_->g(), h1, g2, h2, x, rng_);
  EXPECT_FALSE(proof.verify(*group_, "ctx-b", group_->g(), h1, g2, h2));
}

TEST_F(NizkTest, DleqRejectsTamperedProof) {
  BigInt x = group_->random_scalar(rng_);
  Element g2 = group_->hash_to_element("base", bytes_of("b"));
  Element h1 = group_->exp_g(x);
  Element h2 = group_->exp(g2, x);
  auto proof = DleqProof::prove(*group_, "ctx", group_->g(), h1, g2, h2, x, rng_);
  DleqProof bad = proof;
  bad.z = group_->scalar_add(bad.z, BigInt(1));
  EXPECT_FALSE(bad.verify(*group_, "ctx", group_->g(), h1, g2, h2));
  DleqProof bad2 = proof;
  bad2.a1 = group_->mul(bad2.a1, group_->g());
  EXPECT_FALSE(bad2.verify(*group_, "ctx", group_->g(), h1, g2, h2));
  DleqProof bad3 = proof;
  bad3.a2 = group_->mul(bad3.a2, group_->g());
  EXPECT_FALSE(bad3.verify(*group_, "ctx", group_->g(), h1, g2, h2));
}

TEST_F(NizkTest, DleqRejectsSwappedStatement) {
  BigInt x = group_->random_scalar(rng_);
  Element g2 = group_->hash_to_element("base", bytes_of("b"));
  Element h1 = group_->exp_g(x);
  Element h2 = group_->exp(g2, x);
  auto proof = DleqProof::prove(*group_, "ctx", group_->g(), h1, g2, h2, x, rng_);
  // Swapping the two relations must invalidate the proof.
  EXPECT_FALSE(proof.verify(*group_, "ctx", g2, h2, group_->g(), h1));
}

TEST_F(NizkTest, DleqRejectsNonElements) {
  BigInt x = group_->random_scalar(rng_);
  Element g2 = group_->hash_to_element("base", bytes_of("b"));
  Element h1 = group_->exp_g(x);
  Element h2 = group_->exp(g2, x);
  auto proof = DleqProof::prove(*group_, "ctx", group_->g(), h1, g2, h2, x, rng_);
  // Valid residue (passes the range check) outside the order-q subgroup.
  const BigInt p = SchnorrGroup::test()->p();
  EXPECT_FALSE(
      proof.verify(*group_, "ctx", group_->g(), Element::from_residue(p - BigInt(1)), g2, h2));
}

TEST_F(NizkTest, DleqSerializationRoundTrip) {
  BigInt x = group_->random_scalar(rng_);
  Element g2 = group_->hash_to_element("base", bytes_of("b"));
  auto proof = DleqProof::prove(*group_, "ctx", group_->g(), group_->exp_g(x), g2,
                                group_->exp(g2, x), x, rng_);
  Writer w;
  proof.encode(w, *group_);
  Reader r(w.data());
  DleqProof decoded = DleqProof::decode(r, *group_);
  r.expect_done();
  EXPECT_EQ(decoded.a1, proof.a1);
  EXPECT_EQ(decoded.a2, proof.a2);
  EXPECT_EQ(decoded.z, proof.z);
}

TEST_F(NizkTest, SchnorrCompleteness) {
  for (int i = 0; i < 10; ++i) {
    BigInt x = group_->random_scalar(rng_);
    Element h = group_->exp_g(x);
    auto proof = SchnorrProof::prove(*group_, "ctx", group_->g(), h, x, rng_);
    EXPECT_TRUE(proof.verify(*group_, "ctx", group_->g(), h));
  }
}

TEST_F(NizkTest, SchnorrRejectsWrongStatement) {
  BigInt x = group_->random_scalar(rng_);
  Element h = group_->exp_g(x);
  auto proof = SchnorrProof::prove(*group_, "ctx", group_->g(), h, x, rng_);
  Element other = group_->exp_g(group_->scalar_add(x, BigInt(1)));
  EXPECT_FALSE(proof.verify(*group_, "ctx", group_->g(), other));
}

TEST_F(NizkTest, SchnorrContextBinding) {
  BigInt x = group_->random_scalar(rng_);
  Element h = group_->exp_g(x);
  auto proof = SchnorrProof::prove(*group_, "instance-1", group_->g(), h, x, rng_);
  EXPECT_FALSE(proof.verify(*group_, "instance-2", group_->g(), h));
}

TEST_F(NizkTest, SchnorrSerializationRoundTrip) {
  BigInt x = group_->random_scalar(rng_);
  Element h = group_->exp_g(x);
  auto proof = SchnorrProof::prove(*group_, "ctx", group_->g(), h, x, rng_);
  Writer w;
  proof.encode(w, *group_);
  Reader r(w.data());
  SchnorrProof decoded = SchnorrProof::decode(r, *group_);
  EXPECT_TRUE(decoded.verify(*group_, "ctx", group_->g(), h));
}

TEST_F(NizkTest, ProofsAreRandomized) {
  BigInt x = group_->random_scalar(rng_);
  Element h = group_->exp_g(x);
  auto p1 = SchnorrProof::prove(*group_, "ctx", group_->g(), h, x, rng_);
  auto p2 = SchnorrProof::prove(*group_, "ctx", group_->g(), h, x, rng_);
  EXPECT_NE(p1.z, p2.z);  // fresh commitment randomness
}

}  // namespace
}  // namespace sintra::crypto
