// Feldman VSS tests: share verification, public images, interaction with
// Lagrange reconstruction, rejection of inconsistent dealings.
#include <gtest/gtest.h>

#include "crypto/vss.hpp"

namespace sintra::crypto {
namespace {

class VssTest : public ::testing::Test {
 protected:
  GroupPtr group_ = Group::test_group();
  Rng rng_{77};
};

TEST_F(VssTest, AllSharesVerify) {
  BigInt secret = group_->random_scalar(rng_);
  auto dealing = FeldmanDealing::deal(*group_, secret, 7, 2, rng_);
  ASSERT_EQ(dealing.shares.size(), 7u);
  ASSERT_EQ(dealing.commitments.size(), 3u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(FeldmanDealing::verify_share(*group_, dealing.commitments, i,
                                             dealing.shares[static_cast<std::size_t>(i)]));
  }
}

TEST_F(VssTest, PublicImageIsGToSecret) {
  BigInt secret = group_->random_scalar(rng_);
  auto dealing = FeldmanDealing::deal(*group_, secret, 4, 1, rng_);
  EXPECT_EQ(dealing.public_image(), group_->exp_g(secret));
}

TEST_F(VssTest, ZeroSharingHasIdentityImage) {
  auto dealing = FeldmanDealing::deal(*group_, BigInt(0), 4, 1, rng_);
  EXPECT_EQ(dealing.public_image(), group_->identity());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(FeldmanDealing::verify_share(*group_, dealing.commitments, i,
                                             dealing.shares[static_cast<std::size_t>(i)]));
  }
}

TEST_F(VssTest, WrongShareRejected) {
  auto dealing = FeldmanDealing::deal(*group_, BigInt(42), 4, 1, rng_);
  BigInt bad = group_->scalar_add(dealing.shares[0], BigInt(1));
  EXPECT_FALSE(FeldmanDealing::verify_share(*group_, dealing.commitments, 0, bad));
  // A correct share of the wrong party also fails.
  EXPECT_FALSE(FeldmanDealing::verify_share(*group_, dealing.commitments, 1,
                                            dealing.shares[0]));
}

TEST_F(VssTest, TamperedCommitmentsRejectShares) {
  auto dealing = FeldmanDealing::deal(*group_, BigInt(42), 4, 1, rng_);
  auto tampered = dealing.commitments;
  tampered[1] = group_->mul(tampered[1], group_->g());
  EXPECT_FALSE(FeldmanDealing::verify_share(*group_, tampered, 0, dealing.shares[0]));
}

TEST_F(VssTest, ShareImageMatchesActualShares) {
  auto dealing = FeldmanDealing::deal(*group_, BigInt(7), 5, 2, rng_);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(FeldmanDealing::share_image(*group_, dealing.commitments, i),
              group_->exp_g(dealing.shares[static_cast<std::size_t>(i)]));
  }
}

TEST_F(VssTest, SharesInterpolateToSecret) {
  BigInt secret = group_->random_scalar(rng_);
  auto dealing = FeldmanDealing::deal(*group_, secret, 5, 2, rng_);
  // Lagrange over parties {0, 2, 4} (points 1, 3, 5).
  std::vector<int> points = {1, 3, 5};
  BigInt acc;
  for (std::size_t k = 0; k < points.size(); ++k) {
    BigInt coeff = lagrange_field(points, points[k], 0, group_->q());
    acc = group_->scalar_add(
        acc, group_->scalar_mul(coeff,
                                dealing.shares[static_cast<std::size_t>(points[k] - 1)]));
  }
  EXPECT_EQ(acc, secret);
}

TEST_F(VssTest, ZeroDealingRefreshPreservesSecretAndImages) {
  // The refresh algebra end-to-end, without the protocol: add a zero
  // dealing to an existing sharing; secret unchanged, shares re-randomized,
  // new verification values derivable from the commitments.
  BigInt secret = group_->random_scalar(rng_);
  auto base = FeldmanDealing::deal(*group_, secret, 4, 1, rng_);
  auto zero = FeldmanDealing::deal(*group_, BigInt(0), 4, 1, rng_);
  std::vector<BigInt> new_shares;
  for (int i = 0; i < 4; ++i) {
    new_shares.push_back(group_->scalar_add(base.shares[static_cast<std::size_t>(i)],
                                            zero.shares[static_cast<std::size_t>(i)]));
    // Public update of the verification value:
    Element updated = group_->mul(
        group_->exp_g(base.shares[static_cast<std::size_t>(i)]),
        FeldmanDealing::share_image(*group_, zero.commitments, i));
    EXPECT_EQ(updated, group_->exp_g(new_shares.back()));
    EXPECT_NE(new_shares.back(), base.shares[static_cast<std::size_t>(i)]);
  }
  // Interpolate new shares from parties {1, 3}: still the same secret.
  std::vector<int> points = {2, 4};
  BigInt acc;
  for (int p : points) {
    BigInt coeff = lagrange_field(points, p, 0, group_->q());
    acc = group_->scalar_add(
        acc, group_->scalar_mul(coeff, new_shares[static_cast<std::size_t>(p - 1)]));
  }
  EXPECT_EQ(acc, secret);
}

TEST_F(VssTest, CommitmentSerializationRoundTrip) {
  auto dealing = FeldmanDealing::deal(*group_, BigInt(5), 4, 2, rng_);
  Writer w;
  dealing.encode_commitments(w, *group_);
  Reader r(w.data());
  auto decoded = FeldmanDealing::decode_commitments(r, *group_, 2);
  EXPECT_EQ(decoded, dealing.commitments);
  // Wrong expected threshold rejected.
  Reader r2(w.data());
  EXPECT_THROW(FeldmanDealing::decode_commitments(r2, *group_, 3), ProtocolError);
}

TEST_F(VssTest, BadParametersRejected) {
  EXPECT_THROW(FeldmanDealing::deal(*group_, BigInt(1), 0, 0, rng_), ProtocolError);
  EXPECT_THROW(FeldmanDealing::deal(*group_, BigInt(1), 4, 4, rng_), ProtocolError);
}

}  // namespace
}  // namespace sintra::crypto
