// Application-layer tests: state machines (CA, directory, notary), the
// replica + client end-to-end path with threshold-signed receipts, and
// Byzantine-replica tolerance.
#include <gtest/gtest.h>

#include "app/ca.hpp"
#include "app/client.hpp"
#include "app/directory.hpp"
#include "app/notary.hpp"
#include "protocols/harness.hpp"

namespace sintra::app {
namespace {

// ---- state machines in isolation -------------------------------------------

TEST(CaStateMachineTest, IssueQueryLifecycle) {
  CertificationAuthority ca;
  CaRequest issue;
  issue.op = CaRequest::Op::kIssue;
  issue.subject = "alice";
  issue.public_key = bytes_of("alice-pk");
  issue.credentials = "credential:alice";
  auto response = CaResponse::decode(ca.execute(issue.encode()));
  EXPECT_EQ(response.status, CaResponse::Status::kOk);
  EXPECT_EQ(response.serial, 1u);
  EXPECT_EQ(response.subject, "alice");

  CaRequest query;
  query.op = CaRequest::Op::kQuery;
  query.subject = "alice";
  auto lookup = CaResponse::decode(ca.execute(query.encode()));
  EXPECT_EQ(lookup.status, CaResponse::Status::kOk);
  EXPECT_EQ(lookup.public_key, bytes_of("alice-pk"));
}

TEST(CaStateMachineTest, BadCredentialsDenied) {
  CertificationAuthority ca;
  CaRequest issue;
  issue.op = CaRequest::Op::kIssue;
  issue.subject = "mallory";
  issue.credentials = "credential:alice";  // stolen credential
  auto response = CaResponse::decode(ca.execute(issue.encode()));
  EXPECT_EQ(response.status, CaResponse::Status::kDenied);
  EXPECT_TRUE(ca.issued().empty());
}

TEST(CaStateMachineTest, ReissueIsIdempotent) {
  CertificationAuthority ca;
  CaRequest issue;
  issue.op = CaRequest::Op::kIssue;
  issue.subject = "bob";
  issue.public_key = bytes_of("pk1");
  issue.credentials = "credential:bob";
  auto first = CaResponse::decode(ca.execute(issue.encode()));
  issue.public_key = bytes_of("pk2");  // attempt to overwrite
  auto second = CaResponse::decode(ca.execute(issue.encode()));
  EXPECT_EQ(first.serial, second.serial);
  EXPECT_EQ(second.public_key, bytes_of("pk1"));  // original binding kept
}

TEST(CaStateMachineTest, PolicyUpdateVisibleInLaterIssues) {
  CertificationAuthority ca;
  CaRequest set_policy;
  set_policy.op = CaRequest::Op::kSetPolicy;
  set_policy.policy = "v2-strict";
  ca.execute(set_policy.encode());
  CaRequest issue;
  issue.op = CaRequest::Op::kIssue;
  issue.subject = "carol";
  issue.credentials = "credential:carol";
  auto response = CaResponse::decode(ca.execute(issue.encode()));
  EXPECT_EQ(response.policy_at_issue, "v2-strict");
}

TEST(CaStateMachineTest, UnknownQueryNotFound) {
  CertificationAuthority ca;
  CaRequest query;
  query.op = CaRequest::Op::kQuery;
  query.subject = "nobody";
  EXPECT_EQ(CaResponse::decode(ca.execute(query.encode())).status,
            CaResponse::Status::kNotFound);
}

TEST(CaStateMachineTest, GarbageRequestDenied) {
  CertificationAuthority ca;
  auto response = CaResponse::decode(ca.execute(bytes_of("not a request")));
  EXPECT_EQ(response.status, CaResponse::Status::kDenied);
}

TEST(DirectoryStateMachineTest, BindLookupUnbind) {
  SecureDirectory dir;
  DirRequest bind;
  bind.op = DirRequest::Op::kBind;
  bind.key = "www.example.com";
  bind.value = bytes_of("10.1.2.3");
  auto r1 = DirResponse::decode(dir.execute(bind.encode()));
  EXPECT_EQ(r1.status, DirResponse::Status::kOk);
  EXPECT_EQ(r1.version, 1u);

  DirRequest lookup;
  lookup.op = DirRequest::Op::kLookup;
  lookup.key = "www.example.com";
  auto r2 = DirResponse::decode(dir.execute(lookup.encode()));
  EXPECT_EQ(r2.value, bytes_of("10.1.2.3"));

  bind.value = bytes_of("10.9.9.9");
  auto r3 = DirResponse::decode(dir.execute(bind.encode()));
  EXPECT_EQ(r3.version, 2u);  // version fences the update

  DirRequest unbind;
  unbind.op = DirRequest::Op::kUnbind;
  unbind.key = "www.example.com";
  EXPECT_EQ(DirResponse::decode(dir.execute(unbind.encode())).status,
            DirResponse::Status::kOk);
  EXPECT_EQ(DirResponse::decode(dir.execute(lookup.encode())).status,
            DirResponse::Status::kNotFound);
}

TEST(DirectoryStateMachineTest, MissingKeyNotFound) {
  SecureDirectory dir;
  DirRequest lookup;
  lookup.op = DirRequest::Op::kLookup;
  lookup.key = "missing";
  EXPECT_EQ(DirResponse::decode(dir.execute(lookup.encode())).status,
            DirResponse::Status::kNotFound);
  DirRequest unbind;
  unbind.op = DirRequest::Op::kUnbind;
  unbind.key = "missing";
  EXPECT_EQ(DirResponse::decode(dir.execute(unbind.encode())).status,
            DirResponse::Status::kNotFound);
}

TEST(NotaryStateMachineTest, SequentialRegistration) {
  Notary notary;
  NotaryRequest r1;
  r1.op = NotaryRequest::Op::kRegister;
  r1.document = bytes_of("doc-A");
  auto a = NotaryResponse::decode(notary.execute(r1.encode()));
  EXPECT_EQ(a.status, NotaryResponse::Status::kRegistered);
  EXPECT_EQ(a.sequence, 1u);

  NotaryRequest r2;
  r2.op = NotaryRequest::Op::kRegister;
  r2.document = bytes_of("doc-B");
  EXPECT_EQ(NotaryResponse::decode(notary.execute(r2.encode())).sequence, 2u);

  // Re-registration returns the ORIGINAL sequence (first-to-file wins).
  auto again = NotaryResponse::decode(notary.execute(r1.encode()));
  EXPECT_EQ(again.status, NotaryResponse::Status::kAlreadyRegistered);
  EXPECT_EQ(again.sequence, 1u);
}

TEST(NotaryStateMachineTest, VerifyLookups) {
  Notary notary;
  NotaryRequest reg;
  reg.op = NotaryRequest::Op::kRegister;
  reg.document = bytes_of("deed");
  notary.execute(reg.encode());
  NotaryRequest verify;
  verify.op = NotaryRequest::Op::kVerify;
  verify.document = bytes_of("deed");
  EXPECT_EQ(NotaryResponse::decode(notary.execute(verify.encode())).sequence, 1u);
  verify.document = bytes_of("unknown");
  EXPECT_EQ(NotaryResponse::decode(notary.execute(verify.encode())).status,
            NotaryResponse::Status::kUnknown);
}

// ---- end-to-end: replica + client -------------------------------------------

struct SvcState {
  std::unique_ptr<Replica> replica;
};

struct E2e {
  E2e(Replica::Mode mode, std::function<std::unique_ptr<StateMachine>()> make_sm,
      crypto::PartySet corrupted = 0, std::uint64_t seed = 1)
      : rng(seed),
        deployment(adversary::Deployment::threshold(4, 1, rng)),
        sched(seed * 101),
        cluster(
            deployment, sched,
            [&](net::Party& party, int) {
              auto state = std::make_unique<SvcState>();
              state->replica = std::make_unique<Replica>(party, "svc", mode, make_sm());
              return state;
            },
            corrupted, /*extra_endpoints=*/1, seed) {
    auto client_ptr = std::make_unique<ServiceClient>(
        cluster.simulator(), /*net_id=*/4, deployment, "svc", mode, seed + 7,
        [this](std::uint64_t id, ServiceClient::Receipt receipt) {
          replies.emplace(id, std::move(receipt));
        });
    client = client_ptr.get();
    cluster.attach_client(4, std::move(client_ptr));
    cluster.start();
  }

  bool run_until_replies(std::size_t count, std::uint64_t max_steps = 10000000) {
    return cluster.simulator().run_until([&] { return replies.size() >= count; }, max_steps);
  }

  Rng rng;
  adversary::Deployment deployment;
  net::RandomScheduler sched;
  protocols::Cluster<SvcState> cluster;
  ServiceClient* client = nullptr;
  std::map<std::uint64_t, ServiceClient::Receipt> replies;
};

TEST(EndToEndTest, CaIssueWithReceipt) {
  E2e e2e(Replica::Mode::kAtomic, [] { return std::make_unique<CertificationAuthority>(); });
  CaRequest issue;
  issue.op = CaRequest::Op::kIssue;
  issue.subject = "alice";
  issue.public_key = bytes_of("alice-pk");
  issue.credentials = "credential:alice";
  Bytes body = issue.encode();
  std::uint64_t id = e2e.client->request(Bytes(body));
  ASSERT_TRUE(e2e.run_until_replies(1));
  const auto& receipt = e2e.replies.at(id);
  auto response = CaResponse::decode(receipt.reply);
  EXPECT_EQ(response.status, CaResponse::Status::kOk);
  EXPECT_EQ(response.serial, 1u);
  // The receipt verifies under the single service public key — this IS the
  // certificate.
  EXPECT_TRUE(e2e.client->verify_receipt(id, body, receipt));
  // And fails for a different request body.
  EXPECT_FALSE(e2e.client->verify_receipt(id, bytes_of("other"), receipt));
}

TEST(EndToEndTest, DirectoryBindThenLookup) {
  E2e e2e(Replica::Mode::kAtomic, [] { return std::make_unique<SecureDirectory>(); });
  DirRequest bind;
  bind.op = DirRequest::Op::kBind;
  bind.key = "host";
  bind.value = bytes_of("addr");
  e2e.client->request(bind.encode());
  ASSERT_TRUE(e2e.run_until_replies(1));
  DirRequest lookup;
  lookup.op = DirRequest::Op::kLookup;
  lookup.key = "host";
  std::uint64_t id = e2e.client->request(lookup.encode());
  ASSERT_TRUE(e2e.run_until_replies(2));
  auto response = DirResponse::decode(e2e.replies.at(id).reply);
  EXPECT_EQ(response.status, DirResponse::Status::kOk);
  EXPECT_EQ(response.value, bytes_of("addr"));
}

TEST(EndToEndTest, NotaryOverSecureCausalBroadcast) {
  E2e e2e(Replica::Mode::kCausal, [] { return std::make_unique<Notary>(); });
  NotaryRequest reg;
  reg.op = NotaryRequest::Op::kRegister;
  reg.document = bytes_of("my invention");
  std::uint64_t id = e2e.client->request(reg.encode());
  ASSERT_TRUE(e2e.run_until_replies(1));
  auto response = NotaryResponse::decode(e2e.replies.at(id).reply);
  EXPECT_EQ(response.status, NotaryResponse::Status::kRegistered);
  EXPECT_EQ(response.sequence, 1u);
}

TEST(EndToEndTest, ServiceSurvivesCrashedReplica) {
  E2e e2e(Replica::Mode::kAtomic, [] { return std::make_unique<CertificationAuthority>(); },
          crypto::party_bit(2), 5);
  CaRequest issue;
  issue.op = CaRequest::Op::kIssue;
  issue.subject = "dave";
  issue.credentials = "credential:dave";
  std::uint64_t id = e2e.client->request(issue.encode());
  ASSERT_TRUE(e2e.run_until_replies(1));
  EXPECT_EQ(CaResponse::decode(e2e.replies.at(id).reply).status, CaResponse::Status::kOk);
}

TEST(EndToEndTest, RepliesAreConsistentAcrossSequentialRequests) {
  E2e e2e(Replica::Mode::kAtomic, [] { return std::make_unique<CertificationAuthority>(); });
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    CaRequest issue;
    issue.op = CaRequest::Op::kIssue;
    issue.subject = "user" + std::to_string(i);
    issue.credentials = "credential:user" + std::to_string(i);
    ids.push_back(e2e.client->request(issue.encode()));
  }
  ASSERT_TRUE(e2e.run_until_replies(3));
  // Serial numbers are distinct (the replicas executed in one agreed order).
  std::set<std::uint64_t> serials;
  for (std::uint64_t id : ids) {
    serials.insert(CaResponse::decode(e2e.replies.at(id).reply).serial);
  }
  EXPECT_EQ(serials.size(), 3u);
}

/// Byzantine replica that answers every client request with a forged reply.
class LyingReplica final : public net::Process {
 public:
  LyingReplica(net::Simulator& sim, int id) : sim_(sim), id_(id) {}
  void on_message(const net::Message& message) override {
    if (message.tag != "svc") return;
    // Forge: reply "status denied" with garbage shares to the client.
    try {
      Reader r(message.payload);
      RequestEnvelope envelope = RequestEnvelope::decode(r);
      Writer w;
      w.u8(kReplyOk);
      w.u64(envelope.request_id);
      CaResponse forged;
      forged.status = CaResponse::Status::kDenied;
      w.bytes(forged.encode());
      w.u32(0);  // zero signature shares
      net::Message reply;
      reply.from = id_;
      reply.to = envelope.client;
      reply.tag = "svc/reply";
      reply.payload = w.take();
      sim_.submit(std::move(reply));
    } catch (const ProtocolError&) {
    }
  }

 private:
  net::Simulator& sim_;
  int id_;
};

TEST(EndToEndTest, ForgedRepliesRejectedFullRun) {
  // One replica lies to the client; the client's fault-set-exceeding
  // matching rule means the accepted answer always comes from the honest
  // majority, and its combined signature verifies.
  Rng rng(11);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(11);
  protocols::Cluster<SvcState> cluster(
      deployment, sched,
      [&](net::Party& party, int) {
        auto state = std::make_unique<SvcState>();
        state->replica = std::make_unique<Replica>(
            party, "svc", Replica::Mode::kAtomic,
            std::make_unique<CertificationAuthority>());
        return state;
      },
      0, /*extra_endpoints=*/1, 11);
  cluster.attach_custom(3, std::make_unique<LyingReplica>(cluster.simulator(), 3));
  std::map<std::uint64_t, ServiceClient::Receipt> replies;
  auto client_ptr = std::make_unique<ServiceClient>(
      cluster.simulator(), 4, deployment, "svc", Replica::Mode::kAtomic, 17,
      [&](std::uint64_t id, ServiceClient::Receipt receipt) {
        replies.emplace(id, std::move(receipt));
      });
  ServiceClient* client = client_ptr.get();
  cluster.attach_client(4, std::move(client_ptr));
  cluster.start();

  CaRequest issue;
  issue.op = CaRequest::Op::kIssue;
  issue.subject = "eve-target";
  issue.credentials = "credential:eve-target";
  Bytes body = issue.encode();
  std::uint64_t id = client->request(Bytes(body));
  ASSERT_TRUE(cluster.simulator().run_until([&] { return replies.contains(id); }, 10000000));
  // The honest answer (kOk) won, not the forged denial.
  EXPECT_EQ(CaResponse::decode(replies.at(id).reply).status, CaResponse::Status::kOk);
  EXPECT_TRUE(client->verify_receipt(id, body, replies.at(id)));
}

TEST(EndToEndTest, GatewayModeWithCorruptGatewayAndResend) {
  // §5: "one could postulate that one server acts as a gateway to relay
  // the request to all servers and leave it to the client to resend its
  // message if it receives no answer within the expected time."  The
  // gateway here is crashed; the application timeout fires resend().
  Rng rng(41);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(41);
  protocols::Cluster<SvcState> cluster(
      deployment, sched,
      [&](net::Party& party, int) {
        auto state = std::make_unique<SvcState>();
        state->replica = std::make_unique<Replica>(
            party, "svc", Replica::Mode::kAtomic,
            std::make_unique<CertificationAuthority>());
        return state;
      },
      /*corrupted=*/crypto::party_bit(3), /*extra_endpoints=*/1, 41);
  std::map<std::uint64_t, ServiceClient::Receipt> replies;
  auto client_owner = std::make_unique<ServiceClient>(
      cluster.simulator(), 4, deployment, "svc", Replica::Mode::kAtomic, 43,
      [&](std::uint64_t id, ServiceClient::Receipt receipt) {
        replies.emplace(id, std::move(receipt));
      });
  ServiceClient* client = client_owner.get();
  cluster.attach_client(4, std::move(client_owner));
  cluster.start();

  client->set_gateway(3);  // the crashed server
  CaRequest issue;
  issue.op = CaRequest::Op::kIssue;
  issue.subject = "gw";
  issue.credentials = "credential:gw";
  std::uint64_t id = client->request(issue.encode());
  cluster.simulator().run(200000);
  EXPECT_TRUE(replies.empty());  // gateway swallowed the request
  // Application timeout: fall back to broadcasting to everyone.
  client->resend(id);
  ASSERT_TRUE(cluster.simulator().run_until([&] { return replies.contains(id); }, 10000000));
  EXPECT_EQ(CaResponse::decode(replies.at(id).reply).status, CaResponse::Status::kOk);
}

TEST(EndToEndTest, AutomaticRetryAbandonsCrashedGateway) {
  // The timer-driven version of the resend() fallback: nobody watches the
  // clock by hand.  The gateway replica is crashed; the client's retry
  // timer fires (simulator: on network quiescence; deployment: wall
  // clock), rotates to the next replica, and the request completes with
  // no manual intervention — the non-responding-replica failover of §5.
  Rng rng(53);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(53);
  protocols::Cluster<SvcState> cluster(
      deployment, sched,
      [&](net::Party& party, int) {
        auto state = std::make_unique<SvcState>();
        state->replica = std::make_unique<Replica>(
            party, "svc", Replica::Mode::kAtomic,
            std::make_unique<CertificationAuthority>());
        return state;
      },
      /*corrupted=*/crypto::party_bit(3), /*extra_endpoints=*/1, 53);
  std::map<std::uint64_t, ServiceClient::Receipt> replies;
  auto client_owner = std::make_unique<ServiceClient>(
      cluster.simulator(), 4, deployment, "svc", Replica::Mode::kAtomic, 59,
      [&](std::uint64_t id, ServiceClient::Receipt receipt) {
        replies.emplace(id, std::move(receipt));
      });
  ServiceClient* client = client_owner.get();
  cluster.attach_client(4, std::move(client_owner));
  cluster.start();

  client->enable_retry(/*timeout=*/200);
  client->set_gateway(3);  // the crashed server swallows the request
  CaRequest issue;
  issue.op = CaRequest::Op::kIssue;
  issue.subject = "auto-retry";
  issue.credentials = "credential:auto-retry";
  Bytes body = issue.encode();
  std::uint64_t id = client->request(Bytes(body));
  ASSERT_TRUE(cluster.simulator().run_until([&] { return replies.contains(id); }, 10000000));
  EXPECT_EQ(CaResponse::decode(replies.at(id).reply).status, CaResponse::Status::kOk);
  EXPECT_TRUE(client->verify_receipt(id, body, replies.at(id)));
  EXPECT_EQ(client->outstanding(), 0u);  // completion cancelled the timer
}

TEST(EndToEndTest, AutomaticRetryInBroadcastModeResendsToAll) {
  // Broadcast mode with automatic retry enabled and a crashed replica:
  // the service answers on first delivery, and the retry machinery must
  // not duplicate the state change (requests are idempotent by id).
  Rng rng(61);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(61);
  protocols::Cluster<SvcState> cluster(
      deployment, sched,
      [&](net::Party& party, int) {
        auto state = std::make_unique<SvcState>();
        state->replica = std::make_unique<Replica>(
            party, "svc", Replica::Mode::kAtomic,
            std::make_unique<CertificationAuthority>());
        return state;
      },
      /*corrupted=*/crypto::party_bit(2), /*extra_endpoints=*/1, 61);
  std::map<std::uint64_t, ServiceClient::Receipt> replies;
  auto client_owner = std::make_unique<ServiceClient>(
      cluster.simulator(), 4, deployment, "svc", Replica::Mode::kAtomic, 67,
      [&](std::uint64_t id, ServiceClient::Receipt receipt) {
        replies.emplace(id, std::move(receipt));
      });
  ServiceClient* client = client_owner.get();
  cluster.attach_client(4, std::move(client_owner));
  cluster.start();

  client->enable_retry(/*timeout=*/200);
  CaRequest issue;
  issue.op = CaRequest::Op::kIssue;
  issue.subject = "bcast-retry";
  issue.credentials = "credential:bcast-retry";
  std::uint64_t id = client->request(issue.encode());
  ASSERT_TRUE(cluster.simulator().run_until([&] { return replies.contains(id); }, 10000000));
  auto response = CaResponse::decode(replies.at(id).reply);
  EXPECT_EQ(response.status, CaResponse::Status::kOk);
  EXPECT_EQ(response.serial, 1u);  // exactly one issuance despite any retries
}

TEST(EndToEndTest, GatewayModeWithHonestGateway) {
  Rng rng(47);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(47);
  protocols::Cluster<SvcState> cluster(
      deployment, sched,
      [&](net::Party& party, int) {
        auto state = std::make_unique<SvcState>();
        state->replica = std::make_unique<Replica>(
            party, "svc", Replica::Mode::kAtomic,
            std::make_unique<CertificationAuthority>());
        return state;
      },
      0, /*extra_endpoints=*/1, 47);
  std::map<std::uint64_t, ServiceClient::Receipt> replies;
  auto client_owner = std::make_unique<ServiceClient>(
      cluster.simulator(), 4, deployment, "svc", Replica::Mode::kAtomic, 49,
      [&](std::uint64_t id, ServiceClient::Receipt receipt) {
        replies.emplace(id, std::move(receipt));
      });
  ServiceClient* client = client_owner.get();
  cluster.attach_client(4, std::move(client_owner));
  cluster.start();

  client->set_gateway(1);
  CaRequest issue;
  issue.op = CaRequest::Op::kIssue;
  issue.subject = "gw2";
  issue.credentials = "credential:gw2";
  Bytes body = issue.encode();
  std::uint64_t id = client->request(Bytes(body));
  ASSERT_TRUE(cluster.simulator().run_until([&] { return replies.contains(id); }, 10000000));
  EXPECT_TRUE(client->verify_receipt(id, body, replies.at(id)));
}

}  // namespace
}  // namespace sintra::app
