// Byzantine resource-exhaustion attack suite (issue 4's proof obligation):
// a corrupted party sprays protocol-shaped traffic at every buffering path
// in the stack — far-future ABBA rounds, validly signed future atomic-
// broadcast batches, future PBFT views, never-registered instance tags,
// runaway client requests — and each test asserts the same three things:
//
//   1. the protocol still completes its job for the correct parties
//      (agreement / total order / receipts are unharmed);
//   2. every correct party's buffered bytes stayed under its configured
//      ResourceBudget cap (peak_total never exceeded the cap);
//   3. the attack actually hit the governance (rejections or evictions
//      were recorded — otherwise the test would be vacuous).
//
// The budget caps here are deliberately tiny compared to the flood volume
// (a FlooderProcess sprays roughly a megabyte; the caps are tens of
// kilobytes) and comfortably above what honest traffic needs.
#include <gtest/gtest.h>

#include "app/ca.hpp"
#include "app/client.hpp"
#include "protocols/abba.hpp"
#include "protocols/atomic.hpp"
#include "protocols/baselines/pbft_like.hpp"
#include "protocols/broadcast.hpp"
#include "protocols/harness.hpp"

namespace sintra::protocols {
namespace {

/// Tight caps the floods must slam into; generous for honest traffic
/// (honest buffered bytes here are at most a few hundred — only future
/// rounds/views and unhandled tags are ever charged).  total >= n *
/// per_peer so one peer's junk can never squeeze out honest charges.
net::BudgetConfig tight_budget() {
  net::BudgetConfig config;
  config.per_peer_cap = 4 << 10;
  config.per_instance_cap = 16 << 10;
  config.total_cap = 32 << 10;
  return config;
}

/// Asserts the party held its budget line under attack: the peak stayed
/// under every cap and the attacker's residual occupancy is within its
/// per-peer allowance.
void expect_governed(const net::Party& party, const net::BudgetConfig& config, int attacker) {
  EXPECT_LE(party.budget().peak_total(), config.total_cap);
  EXPECT_LE(party.budget().peer_total(attacker), config.per_peer_cap);
}

// ------------------------------------------------- ABBA round flooding --

struct AbbaState {
  std::unique_ptr<Abba> abba;
  std::vector<bool> decisions;
};

TEST(MemoryBudgetTest, AbbaFutureRoundFloodStaysBoundedAndDecides) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 101);
    const auto config = tight_budget();
    ChaosCluster<AbbaState> cluster(
        deployment, sched,
        [](net::Party& party, int id) {
          auto state = std::make_unique<AbbaState>();
          state->abba = std::make_unique<Abba>(
              party, "ba/0", [s = state.get()](bool v, int) { s->decisions.push_back(v); });
          state->abba->start(id % 2 == 0);
          return state;
        },
        seed);
    cluster.set_custom(3, [&] {
      return std::make_unique<net::FlooderProcess>(
          cluster.simulator(), 3, deployment, seed * 17,
          net::FlooderProcess::Profile::kAbbaRounds, "ba/0");
    });
    cluster.set_budget(config);
    cluster.start();
    ASSERT_TRUE(
        cluster.run_until_all([](AbbaState& s) { return !s.decisions.empty(); }, 3000000))
        << "flood broke termination";
    std::optional<bool> common;
    std::uint64_t governance_hits = 0;
    cluster.for_each([&](int id, AbbaState& s) {
      ASSERT_EQ(s.decisions.size(), 1u);
      if (!common.has_value()) common = s.decisions[0];
      EXPECT_EQ(s.decisions[0], *common) << "agreement violated at party " << id;
      // Instance GC on decide: round tallies and parked future-round junk
      // are gone, and their budget charges with them.
      EXPECT_EQ(s.abba->live_rounds(), 0u);
      EXPECT_EQ(s.abba->deferred_count(), 0u);
      const net::Party* party = cluster.party(id);
      ASSERT_NE(party, nullptr);
      expect_governed(*party, config, /*attacker=*/3);
      EXPECT_EQ(party->budget().instance_total("ba/0"), 0u)
          << "decided instance still holds charges at party " << id;
      governance_hits += party->budget().rejected() + party->budget().evictions();
    });
    EXPECT_GT(governance_hits, 0u) << "flood never hit the budget: vacuous run";
  }
}

// ------------------------------------- signed future-batch abc flooding --

struct AbcState {
  std::unique_ptr<AtomicBroadcast> abc;
  std::vector<std::pair<int, Bytes>> delivered;
};

TEST(MemoryBudgetTest, AbcSignedFutureBatchFloodDeliversWorkloadInOrder) {
  // The issue's acceptance scenario: the flooder holds a dealt key share,
  // so its future-round batches pass signature verification and occupy
  // round buffers legitimately — only the budget bounds them.  The correct
  // clients' full workload must still be delivered, in one total order.
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 101);
    const auto config = tight_budget();
    ChaosCluster<AbcState> cluster(
        deployment, sched,
        [](net::Party& party, int id) {
          auto state = std::make_unique<AbcState>();
          state->abc = std::make_unique<AtomicBroadcast>(
              party, "abc", [s = state.get()](int origin, Bytes payload) {
                s->delivered.emplace_back(origin, std::move(payload));
              });
          if (id != 3) {
            state->abc->submit(bytes_of("w" + std::to_string(id) + "-a"));
            state->abc->submit(bytes_of("w" + std::to_string(id) + "-b"));
          }
          return state;
        },
        seed);
    cluster.set_custom(3, [&] {
      return std::make_unique<net::FlooderProcess>(
          cluster.simulator(), 3, deployment, seed * 17,
          net::FlooderProcess::Profile::kAbcRounds, "abc");
    });
    cluster.set_budget(config);
    cluster.start();
    auto honest_count = [](AbcState& s) {
      std::size_t count = 0;
      for (const auto& [origin, payload] : s.delivered) {
        if (origin != 3) ++count;
      }
      return count;
    };
    ASSERT_TRUE(cluster.run_until_all(
        [&](AbcState& s) { return honest_count(s) >= 6; }, 8000000))
        << "flood starved the correct clients' workload";
    const std::vector<std::pair<int, Bytes>>* reference = nullptr;
    std::uint64_t governance_hits = 0;
    cluster.for_each([&](int id, AbcState& s) {
      if (reference == nullptr) reference = &s.delivered;
      const std::size_t common = std::min(reference->size(), s.delivered.size());
      for (std::size_t i = 0; i < common; ++i) {
        EXPECT_EQ(s.delivered[i], (*reference)[i])
            << "total order violated at index " << i << ", party " << id;
      }
      const net::Party* party = cluster.party(id);
      ASSERT_NE(party, nullptr);
      expect_governed(*party, config, /*attacker=*/3);
      governance_hits += party->budget().rejected() + party->budget().evictions();
    });
    EXPECT_GT(governance_hits, 0u) << "flood never hit the budget: vacuous run";
  }
}

// --------------------------------------------- PBFT future-view flooding --

struct PbftState {
  std::unique_ptr<PbftLikeBroadcast> pbft;
  std::vector<Bytes> delivered;
};

TEST(MemoryBudgetTest, PbftFutureViewFloodStaysBoundedAndDelivers) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 101);
    const auto config = tight_budget();
    ChaosCluster<PbftState> cluster(
        deployment, sched,
        [](net::Party& party, int id) {
          auto state = std::make_unique<PbftState>();
          state->pbft = std::make_unique<PbftLikeBroadcast>(
              party, "pbft",
              [s = state.get()](Bytes p) { s->delivered.push_back(std::move(p)); });
          if (id != 3) state->pbft->submit(bytes_of("req" + std::to_string(id)));
          return state;
        },
        seed);
    cluster.set_custom(3, [&] {
      return std::make_unique<net::FlooderProcess>(
          cluster.simulator(), 3, deployment, seed * 17,
          net::FlooderProcess::Profile::kPbftViews, "pbft");
    });
    cluster.set_budget(config);
    cluster.start();
    ASSERT_TRUE(cluster.run_until_all(
        [](PbftState& s) { return s.delivered.size() >= 3; }, 2000000))
        << "flood broke pbft liveness";
    const std::vector<Bytes>* reference = nullptr;
    std::uint64_t governance_hits = 0;
    cluster.for_each([&](int id, PbftState& s) {
      if (reference == nullptr) reference = &s.delivered;
      ASSERT_GE(s.delivered.size(), 3u);
      for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(s.delivered[i], (*reference)[i]) << "order diverged at party " << id;
      }
      const net::Party* party = cluster.party(id);
      ASSERT_NE(party, nullptr);
      expect_governed(*party, config, /*attacker=*/3);
      governance_hits += party->budget().rejected() + party->budget().evictions();
    });
    EXPECT_GT(governance_hits, 0u) << "flood never hit the budget: vacuous run";
  }
}

TEST(MemoryBudgetTest, PbftStalledLeaderRecoveredByAutomaticViewChange) {
  // Acceptance criterion: the view-0 leader goes silent; the failure
  // detector drives an automatic view change and the workload is delivered
  // under the new leader — with the resource budget installed throughout.
  Rng rng(7);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(7 * 101);
  const auto config = tight_budget();
  ChaosCluster<PbftState> cluster(
      deployment, sched,
      [](net::Party& party, int id) {
        auto state = std::make_unique<PbftState>();
        state->pbft = std::make_unique<PbftLikeBroadcast>(
            party, "pbft",
            [s = state.get()](Bytes p) { s->delivered.push_back(std::move(p)); });
        state->pbft->enable_failure_detector(50);
        state->pbft->submit(bytes_of("req" + std::to_string(id)));
        return state;
      },
      7);
  cluster.set_custom(0, [] { return std::make_unique<net::CrashProcess>(); });
  cluster.set_budget(config);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all(
      [](PbftState& s) { return s.delivered.size() >= 3; }, 500000))
      << "view change never recovered the stalled leader";
  cluster.for_each([&](int id, PbftState& s) {
    EXPECT_GE(s.pbft->view(), 1) << "party " << id << " never left the dead leader's view";
    const net::Party* party = cluster.party(id);
    ASSERT_NE(party, nullptr);
    EXPECT_LE(party->budget().peak_total(), config.total_cap);
  });
}

// --------------------------------------------------- bogus-tag flooding --

struct RbcState {
  std::unique_ptr<ReliableBroadcast> rbc;
  std::vector<Bytes> delivered;
};

TEST(MemoryBudgetTest, BogusInstanceTagFloodBoundsThePartyBuffer) {
  // Traffic for instance tags nobody will ever register lands in the
  // Party's unhandled-traffic buffer — the layer below every protocol.
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 101);
    const auto config = tight_budget();
    ChaosCluster<RbcState> cluster(
        deployment, sched,
        [](net::Party& party, int id) {
          auto state = std::make_unique<RbcState>();
          state->rbc = std::make_unique<ReliableBroadcast>(
              party, "rbc/0", /*sender=*/0,
              [s = state.get()](Bytes m) { s->delivered.push_back(std::move(m)); });
          if (id == 0) state->rbc->start(bytes_of("payload-under-attack"));
          return state;
        },
        seed);
    cluster.set_custom(3, [&] {
      return std::make_unique<net::FlooderProcess>(
          cluster.simulator(), 3, deployment, seed * 17,
          net::FlooderProcess::Profile::kBogusTags, "rbc");
    });
    cluster.set_budget(config);
    cluster.start();
    ASSERT_TRUE(
        cluster.run_until_all([](RbcState& s) { return !s.delivered.empty(); }, 1000000));
    std::uint64_t governance_hits = 0;
    cluster.for_each([&](int id, RbcState& s) {
      ASSERT_EQ(s.delivered.size(), 1u);
      EXPECT_EQ(s.delivered[0], bytes_of("payload-under-attack"));
      const net::Party* party = cluster.party(id);
      ASSERT_NE(party, nullptr);
      expect_governed(*party, config, /*attacker=*/3);
      governance_hits += party->budget().rejected() + party->budget().evictions();
    });
    EXPECT_GT(governance_hits, 0u) << "flood never hit the budget: vacuous run";
  }
}

// -------------------------------------------- WAL compaction under load --

TEST(MemoryBudgetTest, WalCompactionKeepsSnapshotsBoundedAcrossRestart) {
  // Sustained atomic-broadcast traffic with a crash-restarting party: the
  // WAL snapshot must not grow with delivered history (completed rounds
  // are checkpoint-compacted), and the restarted party must still agree.
  Rng rng(5);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(5 * 101);
  ChaosCluster<AbcState> cluster(
      deployment, sched,
      [](net::Party& party, int id) {
        auto state = std::make_unique<AbcState>();
        state->abc = std::make_unique<AtomicBroadcast>(
            party, "abc", [s = state.get()](int origin, Bytes payload) {
              s->delivered.emplace_back(origin, std::move(payload));
            });
        if (id == 0) state->abc->submit(Bytes(512, std::uint8_t(id)));
        return state;
      },
      5);
  cluster.set_restarting(1, /*crash_after=*/20, /*down_for=*/5);
  cluster.start();
  ASSERT_TRUE(cluster.run_until_all([](AbcState& s) { return s.delivered.size() >= 1; },
                                    5000000));
  // Drive many more rounds of bulky payloads from the test body; snapshot
  // growth must stay far below the ~24 KiB of new payload bytes (each of
  // which crosses the wire in several batches and WAL entries).
  std::vector<std::size_t> before(4, 0);
  cluster.for_each([&](int id, AbcState&) {
    before[static_cast<std::size_t>(id)] = cluster.party(id)->snapshot().size();
  });
  for (int wave = 0; wave < 12; ++wave) {
    cluster.for_each([&](int id, AbcState& s) {
      if (id == 0 || id == 2) {
        s.abc->submit(Bytes(1024, std::uint8_t(wave * 4 + id)));
      }
    });
    const std::size_t target = 1 + static_cast<std::size_t>(wave + 1) * 2;
    ASSERT_TRUE(cluster.run_until_all(
        [&](AbcState& s) { return s.delivered.size() >= target; }, 5000000))
        << "wave " << wave << " stalled";
  }
  const std::vector<std::pair<int, Bytes>>* reference = nullptr;
  cluster.for_each([&](int id, AbcState& s) {
    ASSERT_GE(s.delivered.size(), 25u);
    if (reference == nullptr) reference = &s.delivered;
    const std::size_t common = std::min(reference->size(), s.delivered.size());
    for (std::size_t i = 0; i < common; ++i) {
      EXPECT_EQ(s.delivered[i], (*reference)[i]) << "order diverged at party " << id;
    }
    const std::size_t after = cluster.party(id)->snapshot().size();
    // ~24 KiB of payloads were agreed since the baseline.  The compacted
    // snapshot keeps the delivery log (one copy per payload, so the
    // application can be replayed into the same state) plus the retained
    // recent rounds — bounded by a small multiple of the payload bytes.
    // A non-compacting WAL would retain the raw traffic instead: every
    // batch broadcast n ways plus the VBA exchange, an order of magnitude
    // more.
    EXPECT_LT(after, before[static_cast<std::size_t>(id)] + 72000u)
        << "party " << id << " snapshot grew with history: " << before[id] << " -> " << after;
    // Entry-wise the WAL itself must not scale with delivered history:
    // checkpoints prune everything older than the retained rounds.
    EXPECT_LT(cluster.party(id)->wal().size(), 1500u)
        << "party " << id << " WAL holds " << cluster.party(id)->wal().size()
        << " messages: checkpoint pruning is not engaging";
  });
  EXPECT_GE(cluster.restarting(1)->restarts(), 1) << "party 1 never actually crashed";
}

// ------------------------------------------- lossy restart + watchdogs --

TEST(MemoryBudgetTest, LossyRestartRecoveredByStallWatchdog) {
  // Party 1 crashes and its downtime traffic is DROPPED (not stashed): it
  // genuinely missed those messages and only a liveness watchdog's state
  // resummary can complete its delivery.
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 101);
    ChaosCluster<RbcState> cluster(
        deployment, sched,
        [](net::Party& party, int id) {
          auto state = std::make_unique<RbcState>();
          state->rbc = std::make_unique<ReliableBroadcast>(
              party, "rbc/0", /*sender=*/0,
              [s = state.get()](Bytes m) { s->delivered.push_back(std::move(m)); });
          state->rbc->enable_watchdog(300);
          if (id == 0) state->rbc->start(bytes_of("lossy-payload"));
          return state;
        },
        seed);
    cluster.set_restarting(1, /*crash_after=*/2, /*down_for=*/4, /*max_restarts=*/1,
                           /*lossy=*/true);
    cluster.start();
    ASSERT_TRUE(
        cluster.run_until_all([](RbcState& s) { return !s.delivered.empty(); }, 2000000))
        << "watchdog failed to recover the lossy restart";
    cluster.for_each([](int id, RbcState& s) {
      ASSERT_EQ(s.delivered.size(), 1u) << "party " << id;
      EXPECT_EQ(s.delivered[0], bytes_of("lossy-payload"));
    });
    EXPECT_GE(cluster.restarting(1)->restarts(), 1);
  }
}

}  // namespace
}  // namespace sintra::protocols

// ------------------------------------------- replica admission control --

namespace sintra::app {
namespace {

struct SvcState {
  std::unique_ptr<Replica> replica;
};

TEST(MemoryBudgetTest, AdmissionControlShedsLoadAndClientBacksOff) {
  // Replicas keep a single-request inflight window; a client firing four
  // concurrent requests must see explicit Busy replies, back off, retry,
  // and still obtain every receipt exactly once.
  Rng rng(3);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(3 * 101);
  protocols::Cluster<SvcState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto state = std::make_unique<SvcState>();
        state->replica = std::make_unique<Replica>(
            party, "svc", Replica::Mode::kAtomic,
            std::make_unique<CertificationAuthority>());
        Admission admission;
        admission.max_inflight = 1;
        admission.max_per_client = 1;
        admission.retry_after = 40;
        state->replica->set_admission(admission);
        return state;
      },
      0, /*extra_endpoints=*/1, 3);
  std::map<std::uint64_t, ServiceClient::Receipt> replies;
  auto client_owner = std::make_unique<ServiceClient>(
      cluster.simulator(), /*net_id=*/4, deployment, "svc", Replica::Mode::kAtomic, 11,
      [&](std::uint64_t id, ServiceClient::Receipt receipt) {
        replies.emplace(id, std::move(receipt));
      });
  ServiceClient* client = client_owner.get();
  client->enable_retry(/*timeout=*/400, /*max_retries=*/8);
  cluster.attach_client(4, std::move(client_owner));
  cluster.start();
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 4; ++i) {
    CaRequest issue;
    issue.op = CaRequest::Op::kIssue;
    issue.subject = "user" + std::to_string(i);
    issue.credentials = "credential:user" + std::to_string(i);
    ids.push_back(client->request(issue.encode()));
  }
  ASSERT_TRUE(cluster.simulator().run_until([&] { return replies.size() >= 4; }, 30000000))
      << "shed requests were never served on retry";
  std::set<std::uint64_t> serials;
  for (std::uint64_t id : ids) {
    serials.insert(CaResponse::decode(replies.at(id).reply).serial);
  }
  EXPECT_EQ(serials.size(), 4u) << "duplicate execution under retries";
  EXPECT_GT(client->busy_replies(), 0u) << "client never observed load shedding";
  std::uint64_t shed = 0;
  cluster.for_each([&](int, SvcState& s) {
    shed += s.replica->busy_sent();
    EXPECT_LE(s.replica->inflight(), 1u);
  });
  EXPECT_GT(shed, 0u) << "admission control never engaged";
}

TEST(MemoryBudgetTest, BusyReplyRotatesGatewayToIdleReplica) {
  // Issue-8 satellite: a gateway-pinned client that receives Busy from its
  // relay must rotate to the next replica and resend immediately, instead
  // of backing off against the one overloaded server.  Replica 0 sheds
  // every request (zero inflight window); the retry timer is set far
  // beyond the run so only the Busy-triggered rotation can complete the
  // request through replica 1.
  Rng rng(21);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(21 * 101);
  protocols::Cluster<SvcState> cluster(
      deployment, sched,
      [](net::Party& party, int id) {
        auto state = std::make_unique<SvcState>();
        state->replica = std::make_unique<Replica>(
            party, "svc", Replica::Mode::kAtomic,
            std::make_unique<CertificationAuthority>());
        if (id == 0) {
          Admission admission;
          admission.max_inflight = 0;  // relay sheds everything
          state->replica->set_admission(admission);
        }
        return state;
      },
      0, /*extra_endpoints=*/1, 21);
  std::map<std::uint64_t, ServiceClient::Receipt> replies;
  auto client_owner = std::make_unique<ServiceClient>(
      cluster.simulator(), /*net_id=*/4, deployment, "svc", Replica::Mode::kAtomic, 13,
      [&](std::uint64_t id, ServiceClient::Receipt receipt) {
        replies.emplace(id, std::move(receipt));
      });
  ServiceClient* client = client_owner.get();
  client->enable_retry(/*timeout=*/5000000, /*max_retries=*/1);
  client->set_gateway(0);
  cluster.attach_client(4, std::move(client_owner));
  cluster.start();
  CaRequest issue;
  issue.op = CaRequest::Op::kIssue;
  issue.subject = "rotating";
  issue.credentials = "credential:rotating";
  const std::uint64_t id = client->request(issue.encode());
  ASSERT_TRUE(cluster.simulator().run_until([&] { return replies.contains(id); }, 3000000))
      << "Busy rotation never completed the request through another replica";
  EXPECT_GE(client->busy_replies(), 1u) << "the shedding relay never answered Busy";
  EXPECT_GE(client->busy_rotations(), 1u) << "client never rotated off the busy relay";
  EXPECT_NE(client->gateway(), 0) << "client still pinned to the shedding relay";
  EXPECT_GT(cluster.protocol(0)->replica->busy_sent(), 0u);
}

TEST(MemoryBudgetTest, RunawayClientCannotStarveHonestRequests) {
  // A runaway client (the kRequests flooder) sprays thousands of distinct
  // requests; admission caps hold the replicas' inflight state small and
  // the honest client's workload still completes.
  Rng rng(9);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(9 * 101);
  constexpr std::size_t kMaxInflight = 6;
  protocols::Cluster<SvcState> cluster(
      deployment, sched,
      [&](net::Party& party, int) {
        auto state = std::make_unique<SvcState>();
        state->replica = std::make_unique<Replica>(
            party, "svc", Replica::Mode::kAtomic,
            std::make_unique<CertificationAuthority>());
        Admission admission;
        admission.max_inflight = kMaxInflight;
        admission.max_per_client = 2;
        admission.retry_after = 40;
        state->replica->set_admission(admission);
        return state;
      },
      0, /*extra_endpoints=*/2, 9);
  std::map<std::uint64_t, ServiceClient::Receipt> replies;
  auto client_owner = std::make_unique<ServiceClient>(
      cluster.simulator(), /*net_id=*/4, deployment, "svc", Replica::Mode::kAtomic, 13,
      [&](std::uint64_t id, ServiceClient::Receipt receipt) {
        replies.emplace(id, std::move(receipt));
      });
  ServiceClient* client = client_owner.get();
  client->enable_retry(/*timeout=*/600, /*max_retries=*/10);
  cluster.attach_client(4, std::move(client_owner));
  cluster.attach_client(5, std::make_unique<net::FlooderProcess>(
                               cluster.simulator(), 5, deployment, 9 * 17,
                               net::FlooderProcess::Profile::kRequests, "svc"));
  cluster.start();
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 2; ++i) {
    CaRequest issue;
    issue.op = CaRequest::Op::kIssue;
    issue.subject = "honest" + std::to_string(i);
    issue.credentials = "credential:honest" + std::to_string(i);
    ids.push_back(client->request(issue.encode()));
  }
  ASSERT_TRUE(cluster.simulator().run_until(
      [&] { return replies.size() >= ids.size(); }, 60000000))
      << "runaway client starved the honest workload";
  for (std::uint64_t id : ids) {
    EXPECT_EQ(CaResponse::decode(replies.at(id).reply).status, CaResponse::Status::kOk);
  }
  std::uint64_t shed = 0;
  cluster.for_each([&](int, SvcState& s) {
    shed += s.replica->busy_sent();
    EXPECT_LE(s.replica->inflight(), kMaxInflight);
  });
  EXPECT_GT(shed, 0u) << "the flood never tripped admission control";
}

}  // namespace
}  // namespace sintra::app
