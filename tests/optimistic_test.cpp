// Optimistic atomic broadcast tests (§6): fast-path speed, total order,
// the safety of the switch (no delivery conflicts across the cut-over),
// and liveness after falling back.
#include <gtest/gtest.h>

#include "protocols/harness.hpp"
#include "protocols/optimistic.hpp"

namespace sintra::protocols {
namespace {

using crypto::party_bit;

struct OptState {
  std::unique_ptr<OptimisticBroadcast> opt;
  std::vector<Bytes> log;
};

Cluster<OptState> make_cluster(adversary::Deployment deployment, net::Scheduler& sched,
                               crypto::PartySet corrupted = 0, std::uint64_t seed = 1) {
  return Cluster<OptState>(
      std::move(deployment), sched,
      [](net::Party& party, int) {
        auto state = std::make_unique<OptState>();
        state->opt = std::make_unique<OptimisticBroadcast>(
            party, "opt", /*sequencer=*/0,
            [s = state.get()](Bytes payload) { s->log.push_back(std::move(payload)); });
        return state;
      },
      corrupted, 0, seed);
}

void expect_identical_logs(Cluster<OptState>& cluster) {
  const std::vector<Bytes>* reference = nullptr;
  cluster.for_each([&](int, OptState& s) {
    if (reference == nullptr) reference = &s.log;
    else EXPECT_EQ(s.log, *reference) << "order diverged";
  });
}

TEST(OptimisticTest, FastPathDeliversInOrder) {
  Rng rng(1);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(1);
  auto cluster = make_cluster(deployment, sched);
  cluster.start();
  for (int k = 0; k < 5; ++k) {
    cluster.protocol(k % 4)->opt->submit(bytes_of("fast" + std::to_string(k)));
  }
  ASSERT_TRUE(cluster.run_until_all([](OptState& s) { return s.log.size() >= 5; }, 2000000));
  expect_identical_logs(cluster);
  cluster.for_each([](int, OptState& s) { EXPECT_FALSE(s.opt->pessimistic()); });
}

TEST(OptimisticTest, FastPathCheaperThanPessimistic) {
  // The §6 claim: the optimistic path is much cheaper than the randomized
  // protocol per delivery.  (Quantified fully in bench E10.)
  Rng rng(2);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(2);
  auto cluster = make_cluster(deployment, sched);
  cluster.start();
  cluster.protocol(1)->opt->submit(bytes_of("one"));
  ASSERT_TRUE(cluster.run_until_all([](OptState& s) { return s.log.size() >= 1; }, 2000000));
  EXPECT_LT(cluster.simulator().total_messages(), 60u);  // ABC needs ~150+
}

TEST(OptimisticTest, SwitchPreservesDeliveriesAndOrder) {
  // Deliver a few fast, then switch, then continue pessimistically.  All
  // parties must end with identical logs and no duplicates.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 7);
    auto cluster = make_cluster(deployment, sched, 0, seed);
    cluster.start();
    cluster.protocol(0)->opt->submit(bytes_of("f1"));
    cluster.protocol(1)->opt->submit(bytes_of("f2"));
    ASSERT_TRUE(cluster.run_until_all([](OptState& s) { return s.log.size() >= 2; },
                                      2000000));
    // Switch signalled by one party.
    cluster.protocol(2)->opt->switch_to_pessimistic();
    ASSERT_TRUE(cluster.run_until_all([](OptState& s) { return s.opt->pessimistic(); },
                                      10000000))
        << "switch did not complete, seed " << seed;
    // Continue after the switch.
    cluster.protocol(3)->opt->submit(bytes_of("p1"));
    cluster.protocol(1)->opt->submit(bytes_of("p2"));
    ASSERT_TRUE(cluster.run_until_all([](OptState& s) { return s.log.size() >= 4; },
                                      20000000))
        << "pessimistic path stalled, seed " << seed;
    expect_identical_logs(cluster);
    // No duplicates.
    cluster.for_each([](int, OptState& s) {
      std::set<Bytes> unique(s.log.begin(), s.log.end());
      EXPECT_EQ(unique.size(), s.log.size());
    });
  }
}

TEST(OptimisticTest, SwitchMidFlightLosesNothing) {
  // Payloads submitted but not yet fast-delivered when the switch fires
  // must still be delivered (via claim adoption or resubmission).
  Rng rng(3);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(3);
  auto cluster = make_cluster(deployment, sched, 0, 3);
  cluster.start();
  cluster.protocol(1)->opt->submit(bytes_of("in-flight-1"));
  cluster.protocol(2)->opt->submit(bytes_of("in-flight-2"));
  cluster.simulator().run(20);  // partial progress only
  cluster.for_each([](int, OptState& s) { s.opt->switch_to_pessimistic(); });
  ASSERT_TRUE(cluster.run_until_all([](OptState& s) { return s.log.size() >= 2; }, 30000000));
  expect_identical_logs(cluster);
}

TEST(OptimisticTest, BlockedSequencerRecoversViaSwitch) {
  // The scenario the extension exists for: the sequencer is blocked by the
  // network adversary; the fast path stalls; after the switch the system
  // delivers without it.
  Rng rng(4);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::BlockPartyScheduler sched(4, /*victim=*/0);
  auto cluster = make_cluster(deployment, sched, 0, 4);
  cluster.start();
  cluster.protocol(1)->opt->submit(bytes_of("stuck?"));
  cluster.simulator().run(5000);
  // No fast progress (sequencer unreachable); parties 1..3 deliver nothing.
  for (int id = 1; id < 4; ++id) EXPECT_TRUE(cluster.protocol(id)->log.empty());
  // The (external) failure detector fires at a non-blocked party.
  cluster.protocol(1)->opt->switch_to_pessimistic();
  bool done = cluster.simulator().run_until(
      [&] {
        for (int id = 1; id < 4; ++id) {
          if (cluster.protocol(id)->log.empty()) return false;
        }
        return true;
      },
      30000000);
  EXPECT_TRUE(done) << "pessimistic fallback failed to deliver";
  // Identical order among the reachable parties.
  for (int id = 2; id < 4; ++id) {
    EXPECT_EQ(cluster.protocol(id)->log, cluster.protocol(1)->log);
  }
}

TEST(OptimisticTest, CrashedNonSequencerHarmless) {
  Rng rng(5);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(5);
  auto cluster = make_cluster(deployment, sched, party_bit(3), 5);
  cluster.start();
  cluster.protocol(1)->opt->submit(bytes_of("still fast"));
  ASSERT_TRUE(cluster.run_until_all([](OptState& s) { return s.log.size() >= 1; }, 2000000));
  expect_identical_logs(cluster);
}

}  // namespace
}  // namespace sintra::protocols
