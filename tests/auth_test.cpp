// Authentication service tests: enrolment/grant/revoke lifecycle, wrong
// credentials, logical clock semantics, end-to-end ticket issuance with a
// verifiable threshold signature.
#include <gtest/gtest.h>

#include "app/auth.hpp"
#include "app/client.hpp"
#include "protocols/harness.hpp"

namespace sintra::app {
namespace {

AuthRequest make(AuthRequest::Op op, std::string principal, Bytes secret = {}) {
  AuthRequest request;
  request.op = op;
  request.principal = std::move(principal);
  request.secret = std::move(secret);
  return request;
}

TEST(AuthStateMachineTest, EnrollAuthenticateLifecycle) {
  AuthenticationService auth(/*session_lifetime=*/50);
  auto enrolled = AuthResponse::decode(
      auth.execute(make(AuthRequest::Op::kEnroll, "alice", bytes_of("hunter2")).encode()));
  EXPECT_EQ(enrolled.status, AuthResponse::Status::kEnrolled);

  auto granted = AuthResponse::decode(auth.execute(
      make(AuthRequest::Op::kAuthenticate, "alice", bytes_of("hunter2")).encode()));
  EXPECT_EQ(granted.status, AuthResponse::Status::kGranted);
  EXPECT_EQ(granted.session_id, 1u);
  EXPECT_EQ(granted.expires_at, granted.issued_at + 50);
}

TEST(AuthStateMachineTest, WrongSecretDenied) {
  AuthenticationService auth;
  auth.execute(make(AuthRequest::Op::kEnroll, "bob", bytes_of("secret")).encode());
  auto denied = AuthResponse::decode(auth.execute(
      make(AuthRequest::Op::kAuthenticate, "bob", bytes_of("wrong")).encode()));
  EXPECT_EQ(denied.status, AuthResponse::Status::kDenied);
  EXPECT_EQ(denied.session_id, 0u);
}

TEST(AuthStateMachineTest, UnknownPrincipal) {
  AuthenticationService auth;
  auto response = AuthResponse::decode(auth.execute(
      make(AuthRequest::Op::kAuthenticate, "ghost", bytes_of("x")).encode()));
  EXPECT_EQ(response.status, AuthResponse::Status::kUnknownPrincipal);
}

TEST(AuthStateMachineTest, DoubleEnrollDenied) {
  AuthenticationService auth;
  auth.execute(make(AuthRequest::Op::kEnroll, "carol", bytes_of("s1")).encode());
  auto second = AuthResponse::decode(
      auth.execute(make(AuthRequest::Op::kEnroll, "carol", bytes_of("s2")).encode()));
  EXPECT_EQ(second.status, AuthResponse::Status::kDenied);
  // Original credential still works.
  auto granted = AuthResponse::decode(auth.execute(
      make(AuthRequest::Op::kAuthenticate, "carol", bytes_of("s1")).encode()));
  EXPECT_EQ(granted.status, AuthResponse::Status::kGranted);
}

TEST(AuthStateMachineTest, RevokeRequiresSecretAndRemoves) {
  AuthenticationService auth;
  auth.execute(make(AuthRequest::Op::kEnroll, "dave", bytes_of("s")).encode());
  auto wrong = AuthResponse::decode(
      auth.execute(make(AuthRequest::Op::kRevoke, "dave", bytes_of("bad")).encode()));
  EXPECT_EQ(wrong.status, AuthResponse::Status::kDenied);
  auto revoked = AuthResponse::decode(
      auth.execute(make(AuthRequest::Op::kRevoke, "dave", bytes_of("s")).encode()));
  EXPECT_EQ(revoked.status, AuthResponse::Status::kRevoked);
  auto after = AuthResponse::decode(auth.execute(
      make(AuthRequest::Op::kAuthenticate, "dave", bytes_of("s")).encode()));
  EXPECT_EQ(after.status, AuthResponse::Status::kUnknownPrincipal);
}

TEST(AuthStateMachineTest, LogicalClockAdvancesPerRequest) {
  AuthenticationService auth;
  EXPECT_EQ(auth.clock(), 0u);
  auth.execute(make(AuthRequest::Op::kTick, "").encode());
  auth.execute(make(AuthRequest::Op::kTick, "").encode());
  EXPECT_EQ(auth.clock(), 2u);
  // Garbage also ticks (every ordered request counts).
  auth.execute(bytes_of("garbage"));
  EXPECT_EQ(auth.clock(), 3u);
}

TEST(AuthStateMachineTest, SessionIdsUnique) {
  AuthenticationService auth;
  auth.execute(make(AuthRequest::Op::kEnroll, "eve", bytes_of("s")).encode());
  std::set<std::uint64_t> sessions;
  for (int i = 0; i < 5; ++i) {
    auto granted = AuthResponse::decode(auth.execute(
        make(AuthRequest::Op::kAuthenticate, "eve", bytes_of("s")).encode()));
    EXPECT_TRUE(sessions.insert(granted.session_id).second);
  }
}

struct SvcState {
  std::unique_ptr<Replica> replica;
};

TEST(AuthEndToEndTest, TicketIssuedAndVerifiable) {
  Rng rng(31);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(31);
  protocols::Cluster<SvcState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<SvcState>();
        s->replica = std::make_unique<Replica>(party, "auth", Replica::Mode::kAtomic,
                                               std::make_unique<AuthenticationService>());
        return s;
      },
      crypto::party_bit(2), /*extra_endpoints=*/1, 31);
  std::map<std::uint64_t, ServiceClient::Receipt> receipts;
  auto client_owner = std::make_unique<ServiceClient>(
      cluster.simulator(), 4, deployment, "auth", Replica::Mode::kAtomic, 7,
      [&](std::uint64_t id, ServiceClient::Receipt receipt) {
        receipts.emplace(id, std::move(receipt));
      });
  ServiceClient* client = client_owner.get();
  cluster.attach_client(4, std::move(client_owner));
  cluster.start();

  std::uint64_t enroll_id =
      client->request(make(AuthRequest::Op::kEnroll, "alice", bytes_of("pw")).encode());
  ASSERT_TRUE(
      cluster.simulator().run_until([&] { return receipts.contains(enroll_id); }, 10000000));

  Bytes auth_body = make(AuthRequest::Op::kAuthenticate, "alice", bytes_of("pw")).encode();
  std::uint64_t auth_id = client->request(Bytes(auth_body));
  ASSERT_TRUE(
      cluster.simulator().run_until([&] { return receipts.contains(auth_id); }, 10000000));

  const auto& ticket = receipts.at(auth_id);
  auto grant = AuthResponse::decode(ticket.reply);
  EXPECT_EQ(grant.status, AuthResponse::Status::kGranted);
  EXPECT_GT(grant.expires_at, grant.issued_at);
  // The ticket: a single RSA signature under the service key, checkable by
  // any relying party.
  EXPECT_TRUE(client->verify_receipt(auth_id, auth_body, ticket));
}

}  // namespace
}  // namespace sintra::app
