// Certified checkpoints, peer state transfer and the robustness
// satellites (issue 8).
//
// Layers under test, bottom-up:
//   - crypto/checkpoint: certificate statement/verify and the delivery
//     chain digest;
//   - net/transport/health: the accrual per-peer liveness score;
//   - net/fault PartitionProfile: seeded split/heal schedules, one-way
//     loss and gray-peer predicates;
//   - protocols/atomic checkpointing: certificates minted every interval,
//     persisted across WAL snapshot/restore (the satellite-1 retention
//     regression), and installable into a blank party;
//   - net/state_transfer end-to-end: a 4-party LoopbackHub cluster where
//     one party is SIGKILLed, its WAL and snapshots wiped, and the blank
//     restart rebuilds the identical total order from peers' certified
//     checkpoints — under the classical threshold AND a generalized
//     Q3/LSSS deployment, with a seeded partition schedule active during
//     recovery, and with Byzantine peers serving forged certificates or
//     tampered chunks being detected and failed over;
//   - StallWatchdog timeout growth resetting on progress (satellite 2);
//   - proactive share refresh running concurrently with a state transfer
//     under ExecutorPool(4) (satellite 4).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "adversary/quorum.hpp"
#include "common/executor.hpp"
#include "common/rng.hpp"
#include "crypto/checkpoint.hpp"
#include "crypto/shamir.hpp"
#include "net/state_transfer.hpp"
#include "net/transport/health.hpp"
#include "net/transport/loopback.hpp"
#include "net/transport/networked_node.hpp"
#include "protocols/atomic.hpp"
#include "protocols/harness.hpp"
#include "protocols/refresh.hpp"
#include "protocols/watchdog.hpp"

namespace sintra {
namespace {

using adversary::Deployment;
using adversary::Formula;
using common::ExecutorPool;
using crypto::CheckpointCert;
using net::StateTransfer;
using net::StateTransferOptions;
using net::PartitionProfile;
using net::transport::AccrualHealth;
using net::transport::LoopbackHub;
using net::transport::NetworkedNode;
using protocols::AtomicBroadcast;
using protocols::HostedParty;
using protocols::ShareRefresh;
using protocols::StallWatchdog;

constexpr int kN = 4;

Deployment threshold_deployment(std::uint64_t seed) {
  Rng rng(seed);
  return Deployment::threshold(kN, 1, rng);
}

/// A 4-party generalized deployment: the same access structure as the
/// classical threshold(4, 1) — any two parties reconstruct, singletons
/// are corruptible (Q³ for n = 4) — but dealt over the Benaloh–Leichter
/// LSSS (Deployment::general), so certificate signing, combining and
/// `qualified()` run through the generalized-adversary code path.
Deployment q3_deployment(std::uint64_t seed) {
  Rng rng(seed);
  auto access = Formula::threshold(
      2, {Formula::leaf(0), Formula::leaf(1), Formula::leaf(2), Formula::leaf(3)});
  return Deployment::general(access, kN, rng);
}

/// Combine a full certificate from a quorum's signature shares.
CheckpointCert make_cert(const Deployment& deployment, std::string_view tag,
                         std::uint32_t round, std::uint64_t delivered, Bytes chain,
                         Rng& rng) {
  CheckpointCert cert;
  cert.round = round;
  cert.delivered_count = delivered;
  cert.chain_digest = std::move(chain);
  const Bytes statement = cert.statement(tag);
  const auto& pk = deployment.keys->public_keys().cert_sig;
  std::vector<crypto::SigShare> shares;
  for (int id = 0; id < 3; ++id) {
    auto part = deployment.keys->share(id).cert_sig.sign(pk, statement, rng);
    shares.insert(shares.end(), part.begin(), part.end());
  }
  auto combined = pk.combine(statement, shares);
  EXPECT_TRUE(combined.has_value());
  cert.signature = *combined;
  return cert;
}

// ---- crypto/checkpoint -----------------------------------------------------

TEST(CheckpointCertTest, RoundTripEncodeAndVerify) {
  auto deployment = threshold_deployment(31);
  Rng rng(7);
  Bytes chain = crypto::chain_extend(crypto::chain_initial(), 2, bytes_of("payload"));
  auto cert = make_cert(deployment, "abc", 5, 9, chain, rng);
  const auto& pk = deployment.keys->public_keys().cert_sig;
  EXPECT_TRUE(cert.verify(pk, "abc"));

  Writer w;
  cert.encode(w);
  const Bytes encoded = w.take();
  Reader r(encoded);
  auto decoded = CheckpointCert::decode(r);
  r.expect_done();
  EXPECT_EQ(decoded.round, cert.round);
  EXPECT_EQ(decoded.delivered_count, cert.delivered_count);
  EXPECT_EQ(decoded.chain_digest, cert.chain_digest);
  EXPECT_TRUE(decoded.verify(pk, "abc"));
}

TEST(CheckpointCertTest, RejectsTamperAndForeignTag) {
  auto deployment = threshold_deployment(32);
  Rng rng(8);
  auto cert = make_cert(deployment, "abc", 3, 4, crypto::chain_initial(), rng);
  const auto& pk = deployment.keys->public_keys().cert_sig;
  ASSERT_TRUE(cert.verify(pk, "abc"));
  // Certificates are domain-separated by instance tag.
  EXPECT_FALSE(cert.verify(pk, "other"));
  // Any field flip invalidates the signature.
  auto tampered = cert;
  tampered.delivered_count += 1;
  EXPECT_FALSE(tampered.verify(pk, "abc"));
  tampered = cert;
  tampered.chain_digest[0] ^= 0x01;
  EXPECT_FALSE(tampered.verify(pk, "abc"));
  tampered = cert;
  tampered.round += 1;
  EXPECT_FALSE(tampered.verify(pk, "abc"));
}

TEST(CheckpointCertTest, ChainDigestIsOrderAndOriginSensitive) {
  const Bytes root = crypto::chain_initial();
  const Bytes a = crypto::chain_extend(root, 0, bytes_of("x"));
  const Bytes b = crypto::chain_extend(root, 1, bytes_of("x"));
  EXPECT_NE(a, b) << "origin must be bound into the chain";
  const Bytes ab = crypto::chain_extend(a, 1, bytes_of("y"));
  const Bytes ba = crypto::chain_extend(b, 0, bytes_of("y"));
  EXPECT_NE(ab, ba) << "delivery order must be bound into the chain";
  EXPECT_EQ(a, crypto::chain_extend(root, 0, bytes_of("x"))) << "chain must be deterministic";
}

// ---- net/transport/health --------------------------------------------------

TEST(AccrualHealthTest, SteadyCadenceKeepsBaseTimeout) {
  AccrualHealth health;
  health.reset(0);
  // A chatty peer arriving every 50 ms: the adaptive estimate sits far
  // below the base timeout, and the clamp keeps the base semantics.
  for (std::uint64_t t = 50; t <= 500; t += 50) health.record_arrival(t);
  EXPECT_GE(health.samples(), 4u);
  EXPECT_EQ(health.suspect_timeout_ms(2000), 2000u);
  EXPECT_FALSE(health.suspect(1999, 2000));
  EXPECT_TRUE(health.suspect(2001, 2000));
}

TEST(AccrualHealthTest, SlowJitteryPeerExtendsTimeoutWithinCap) {
  AccrualHealth health;
  health.reset(0);
  // A gray peer with ~1.2 s gaps and heavy jitter: a fixed 2 s timeout
  // would flap, the accrual deadline extends — but never past the cap.
  std::uint64_t now = 0;
  const std::uint64_t gaps[] = {900, 1500, 1100, 1600, 1000, 1400, 1200, 1500};
  for (std::uint64_t gap : gaps) {
    now += gap;
    health.record_arrival(now);
  }
  const std::uint64_t deadline = health.suspect_timeout_ms(2000);
  EXPECT_GT(deadline, 2000u) << "slow peer should earn a longer deadline";
  EXPECT_LE(deadline, 4u * 2000u) << "cap at max_factor * base";
  EXPECT_FALSE(health.suspect(deadline, 2000));
  EXPECT_TRUE(health.suspect(4 * 2000 + 1, 2000));
}

TEST(AccrualHealthTest, TooFewSamplesAndResetFallBackToBase) {
  AccrualHealth health;
  health.reset(0);
  health.record_arrival(3000);
  health.record_arrival(6000);
  EXPECT_EQ(health.suspect_timeout_ms(2000), 2000u) << "estimate not trusted yet";
  for (std::uint64_t t = 9000; t <= 21000; t += 3000) health.record_arrival(t);
  EXPECT_GT(health.suspect_timeout_ms(2000), 2000u);
  health.reset(30000);
  EXPECT_EQ(health.samples(), 0u);
  EXPECT_EQ(health.suspect_timeout_ms(2000), 2000u) << "reset must forget the cadence";
}

// ---- net/fault PartitionProfile --------------------------------------------

TEST(PartitionProfileTest, SplitHealScheduleShape) {
  auto profile = PartitionProfile::split_heal(kN, /*seed=*/5, /*period=*/32, /*splits=*/3);
  EXPECT_TRUE(profile.active());
  ASSERT_EQ(profile.phases.size(), 6u) << "each split is followed by a heal phase";
  EXPECT_EQ(profile.schedule_steps(), 6u * 32u);
  // Past the schedule everything is healed.
  for (int a = 0; a < kN; ++a) {
    for (int b = a + 1; b < kN; ++b) {
      EXPECT_FALSE(profile.severed(a, b, profile.schedule_steps() + 1));
    }
  }
  // During a split phase: severed iff the two nodes sit in different
  // groups, symmetric, never self-severed; and both groups are non-empty.
  std::uint64_t step = 0;
  for (std::size_t i = 0; i < profile.phases.size(); ++i) {
    const auto& phase = profile.phases[i];
    if (!phase.group_of.empty()) {
      ASSERT_EQ(phase.group_of.size(), static_cast<std::size_t>(kN));
      bool any_severed = false;
      for (int a = 0; a < kN; ++a) {
        EXPECT_FALSE(profile.severed(a, a, step));
        for (int b = 0; b < kN; ++b) {
          const bool expect =
              phase.group_of[static_cast<std::size_t>(a)] != phase.group_of[static_cast<std::size_t>(b)];
          EXPECT_EQ(profile.severed(a, b, step), expect);
          EXPECT_EQ(profile.severed(a, b, step), profile.severed(b, a, step));
          any_severed = any_severed || expect;
        }
      }
      EXPECT_TRUE(any_severed) << "split phase " << i << " severed nothing";
    }
    step += phase.steps;
  }
  // The last phase is a heal.
  EXPECT_TRUE(profile.phases.back().group_of.empty());
}

TEST(PartitionProfileTest, OneWayAndGrayPredicates) {
  PartitionProfile profile;
  profile.oneway_loss_chance = 512;
  profile.oneway_pairs = {{0, 2}};
  profile.gray_delay_chance = 512;
  profile.gray_peers = {1};
  EXPECT_TRUE(profile.active());
  EXPECT_TRUE(profile.one_way(0, 2));
  EXPECT_FALSE(profile.one_way(2, 0)) << "one-way loss must be asymmetric";
  EXPECT_FALSE(profile.one_way(0, 1));
  EXPECT_TRUE(profile.gray(1));
  EXPECT_FALSE(profile.gray(0));
  EXPECT_FALSE(PartitionProfile{}.active());
}

// ---- simulator cluster: certification, WAL retention, install --------------

struct AbcState {
  std::unique_ptr<AtomicBroadcast> abc;
  std::vector<std::pair<int, Bytes>> delivered;
};

protocols::Cluster<AbcState> make_ckpt_cluster(Deployment deployment, net::Scheduler& sched,
                                               std::uint64_t seed) {
  return protocols::Cluster<AbcState>(
      std::move(deployment), sched,
      [](net::Party& party, int) {
        party.enable_wal();
        auto state = std::make_unique<AbcState>();
        state->abc = std::make_unique<AtomicBroadcast>(
            party, "abc", [s = state.get()](int origin, Bytes payload) {
              s->delivered.emplace_back(origin, std::move(payload));
            });
        state->abc->enable_checkpoints(1);
        return state;
      },
      0, 0, seed);
}

TEST(CheckpointClusterTest, EveryRoundMintsAVerifiableCertificate) {
  auto deployment = threshold_deployment(41);
  net::RandomScheduler sched(41);
  auto cluster = make_ckpt_cluster(deployment, sched, 41);
  cluster.start();
  for (int i = 0; i < 3; ++i) {
    cluster.protocol(i)->abc->submit(bytes_of("m" + std::to_string(i)));
  }
  ASSERT_TRUE(cluster.run_until_all(
      [](AbcState& s) {
        const auto& cert = s.abc->latest_certificate();
        return s.delivered.size() >= 3 && cert.has_value() && cert->delivered_count >= 3;
      },
      20000000));
  const auto& pk = deployment.keys->public_keys().cert_sig;
  const auto& reference = *cluster.protocol(0)->abc->latest_certificate();
  cluster.for_each([&](int id, AbcState& s) {
    const auto& cert = s.abc->latest_certificate();
    ASSERT_TRUE(cert.has_value()) << "party " << id;
    EXPECT_TRUE(cert->verify(pk, "abc")) << "party " << id;
    EXPECT_EQ(cert->chain_digest, reference.chain_digest) << "party " << id;
    EXPECT_EQ(cert->delivered_count, reference.delivered_count) << "party " << id;
    // The live chain caught up with (or passed) the certified prefix.
    EXPECT_EQ(s.abc->delivered_count(), cert->delivered_count) << "party " << id;
    EXPECT_EQ(s.abc->chain_digest(), cert->chain_digest) << "party " << id;
  });
}

TEST(CheckpointClusterTest, CertificateSurvivesWalCompactionAndRestore) {
  // Satellite-1 regression: run several checkpointed rounds so compaction
  // prunes old checkpoint-share records, then snapshot and restore a
  // party — the restored incarnation must still hold the latest
  // certificate and the full delivered prefix.
  auto deployment = threshold_deployment(43);
  net::RandomScheduler sched(43);
  auto cluster = make_ckpt_cluster(deployment, sched, 43);
  cluster.start();
  cluster.protocol(0)->abc->submit(bytes_of("one"));
  ASSERT_TRUE(cluster.run_until_all(
      [](AbcState& s) { return s.delivered.size() >= 1; }, 20000000));
  cluster.protocol(1)->abc->submit(bytes_of("two"));
  cluster.protocol(2)->abc->submit(bytes_of("three"));
  ASSERT_TRUE(cluster.run_until_all(
      [](AbcState& s) {
        const auto& cert = s.abc->latest_certificate();
        return s.delivered.size() >= 3 && cert.has_value() && cert->delivered_count >= 3;
      },
      20000000));

  const Bytes snapshot = cluster.party(0)->snapshot();
  const auto original_cert = *cluster.protocol(0)->abc->latest_certificate();
  const auto original_delivered = cluster.protocol(0)->delivered;

  net::RandomScheduler replay_sched(1);
  net::Simulator replay_sim(kN, replay_sched);
  HostedParty<AbcState> replayed(replay_sim, 0, deployment, 43 * 7919,
                                 [](net::Party& party) {
                                   party.enable_wal();
                                   auto state = std::make_unique<AbcState>();
                                   state->abc = std::make_unique<AtomicBroadcast>(
                                       party, "abc",
                                       [s = state.get()](int origin, Bytes payload) {
                                         s->delivered.emplace_back(origin, std::move(payload));
                                       });
                                   state->abc->enable_checkpoints(1);
                                   return state;
                                 });
  replayed.restore(snapshot);
  EXPECT_EQ(replayed.protocol().delivered, original_delivered);
  const auto& cert = replayed.protocol().abc->latest_certificate();
  ASSERT_TRUE(cert.has_value()) << "compaction lost the checkpoint record";
  EXPECT_EQ(cert->round, original_cert.round);
  EXPECT_EQ(cert->delivered_count, original_cert.delivered_count);
  EXPECT_EQ(cert->chain_digest, original_cert.chain_digest);
  EXPECT_TRUE(cert->verify(deployment.keys->public_keys().cert_sig, "abc"));
}

TEST(CheckpointClusterTest, CertifiedStateInstallsIntoBlankPartyAndRejectsTampering) {
  auto deployment = threshold_deployment(47);
  net::RandomScheduler sched(47);
  auto cluster = make_ckpt_cluster(deployment, sched, 47);
  cluster.start();
  for (int i = 0; i < 3; ++i) {
    cluster.protocol(i)->abc->submit(bytes_of("p" + std::to_string(i)));
  }
  ASSERT_TRUE(cluster.run_until_all(
      [](AbcState& s) {
        const auto& cert = s.abc->latest_certificate();
        return cert.has_value() && cert->delivered_count >= 3;
      },
      20000000));
  const auto cert = *cluster.protocol(0)->abc->latest_certificate();
  const Bytes state = cluster.protocol(0)->abc->certified_state(cert);
  ASSERT_FALSE(state.empty());

  auto blank = [&deployment](net::Simulator& sim) {
    return std::make_unique<HostedParty<AbcState>>(
        sim, 3, deployment, 99, [](net::Party& party) {
          party.enable_wal();
          auto s = std::make_unique<AbcState>();
          s->abc = std::make_unique<AtomicBroadcast>(
              party, "abc", [p = s.get()](int origin, Bytes payload) {
                p->delivered.emplace_back(origin, std::move(payload));
              });
          return s;
        });
  };

  net::RandomScheduler sched2(2);
  net::Simulator sim2(kN, sched2);
  auto good = blank(sim2);
  ASSERT_TRUE(good->protocol().abc->install_checkpoint(cert, state));
  EXPECT_EQ(good->protocol().delivered, cluster.protocol(0)->delivered)
      << "installed prefix must replay the identical total order";
  EXPECT_EQ(good->protocol().abc->chain_digest(), cert.chain_digest);
  EXPECT_FALSE(good->protocol().abc->install_checkpoint(cert, state))
      << "re-installing an already-covered checkpoint must be a no-op";

  // A tampered snapshot re-hashes to a different chain: rejected.
  net::RandomScheduler sched3(3);
  net::Simulator sim3(kN, sched3);
  auto victim = blank(sim3);
  Bytes tampered = state;
  tampered.back() ^= 0xff;
  EXPECT_FALSE(victim->protocol().abc->install_checkpoint(cert, tampered));
  EXPECT_EQ(victim->protocol().delivered.size(), 0u);

  // A forged certificate (unsigned digest) is rejected before any replay.
  auto forged = cert;
  forged.chain_digest[0] ^= 0x5a;
  EXPECT_FALSE(victim->protocol().abc->install_checkpoint(forged, state));
}

// ---- satellite 2: watchdog timeout growth resets on progress ---------------

TEST(WatchdogBackoffTest, GrowthResetsOnProgressNotOnlyOnFire) {
  auto deployment = threshold_deployment(53);
  net::RandomScheduler sched(53);
  std::uint64_t counter = 0;
  protocols::Cluster<StallWatchdog> cluster(
      deployment, sched,
      [](net::Party& party, int) { return std::make_unique<StallWatchdog>(party); }, 0, 0,
      53);
  cluster.start();
  StallWatchdog& wd = *cluster.protocol(0);
  wd.arm(/*timeout=*/10, /*done=*/[] { return false; },
         /*progress=*/[&counter] { return counter; }, /*recover=*/[] {});
  EXPECT_EQ(wd.current_timeout(), 10u);

  // Stall: three fruitless recoveries double the timeout each time.
  ASSERT_TRUE(cluster.simulator().run_until([&] { return wd.recoveries() >= 3; }, 100000));
  EXPECT_EQ(wd.backoff(), 3u);
  EXPECT_EQ(wd.current_timeout(), 10u << 3);

  // Recover: progress snaps the armed timeout back to base immediately —
  // the regression this satellite fixes (one historic stall used to leave
  // the grown timeout in place until the inflated timer next fired).
  ++counter;
  wd.note_progress();
  EXPECT_EQ(wd.backoff(), 0u);
  EXPECT_EQ(wd.current_timeout(), 10u);

  // And a later stall grows again from the base, not from the old peak.
  const std::uint64_t before = wd.recoveries();
  ASSERT_TRUE(cluster.simulator().run_until(
      [&] { return wd.recoveries() >= before + 1; }, 100000));
  EXPECT_EQ(wd.backoff(), 1u);
  EXPECT_EQ(wd.current_timeout(), 10u << 1);
}

// ---- tentpole: wipe-recovery over LoopbackHub ------------------------------

struct RecState {
  std::unique_ptr<AtomicBroadcast> abc;
  std::unique_ptr<StateTransfer> xfer;
  std::unique_ptr<ShareRefresh> refresh;
  std::optional<ShareRefresh::Result> refresh_result;
  std::vector<std::pair<int, Bytes>> delivered;
  std::atomic<std::size_t> total{0};
  std::atomic<bool> refreshed{false};
  std::atomic<int> recovery{0};  ///< 0 = pending, 1 = ok, 2 = failed
};

/// Four NetworkedNode+LoopbackHub parties, each hosting a checkpointed
/// atomic broadcast and a StateTransfer wired to it.  Nodes can be killed
/// (process gone), wiped (WAL and snapshots lost with it) and rebuilt
/// blank — only the dealt key share, which lives in the Deployment,
/// survives, exactly the disaster the certified transfer recovers from.
struct RecoveryCluster {
  Deployment deployment;
  std::uint64_t seed;
  LoopbackHub hub;
  std::vector<std::unique_ptr<NetworkedNode>> nodes;
  std::vector<std::unique_ptr<HostedParty<RecState>>> hosts;
  std::vector<std::unique_ptr<ExecutorPool>> execs;
  std::size_t executors;
  bool with_refresh = false;

  RecoveryCluster(Deployment d, std::uint64_t s, std::size_t executor_count = 0)
      : deployment(std::move(d)), seed(s), hub(kN, s),
        nodes(kN), hosts(kN), execs(kN), executors(executor_count) {}

  ~RecoveryCluster() { stop(); }

  void stop() {
    for (auto& pool : execs) {
      if (pool) pool->stop();
    }
  }

  std::unique_ptr<RecState> make_state(net::Party& party, StateTransferOptions options) {
    auto state = std::make_unique<RecState>();
    party.with_instance("abc", [&] {
      state->abc = std::make_unique<AtomicBroadcast>(
          party, "abc", [s = state.get()](int origin, Bytes payload) {
            s->delivered.emplace_back(origin, std::move(payload));
            s->total.fetch_add(1, std::memory_order_release);
          });
      state->abc->enable_checkpoints(1);
      // The transfer instance lives in the "abc" tag tree (tag root
      // "abc"), so under concurrent executors its handlers run on the
      // same lane as the broadcast they install into — no cross-lane
      // touches of protocol state.
      auto* abc = state->abc.get();
      state->xfer = std::make_unique<StateTransfer>(
          party, "abc/xfer", "abc", [abc] { return abc->latest_certificate(); },
          [abc](const CheckpointCert& cert) { return abc->certified_state(cert); },
          [abc](const CheckpointCert& cert, BytesView bytes) {
            return abc->install_checkpoint(cert, bytes);
          },
          options);
    });
    if (with_refresh) {
      party.with_instance("refresh", [&] {
        const int id = party.id();
        const auto& coin_sk = deployment.keys->share(id).coin;
        state->refresh = std::make_unique<ShareRefresh>(
            party, "refresh", coin_sk.unit_shares().at(id),
            deployment.keys->public_keys().coin.verification_values(), /*threshold=*/1,
            [s = state.get()](ShareRefresh::Result r) {
              s->refresh_result = std::move(r);
              s->refreshed.store(true, std::memory_order_release);
            });
      });
    }
    return state;
  }

  void build_node(int id, StateTransferOptions options = {}) {
    const auto slot = static_cast<std::size_t>(id);
    NetworkedNode::Config config;
    config.node_id = id;
    config.n = kN;
    auto node = std::make_unique<NetworkedNode>(config);
    auto pool = std::make_unique<ExecutorPool>(executors);
    auto host = std::make_unique<HostedParty<RecState>>(
        *node, id, deployment, seed * 7919 + static_cast<std::uint64_t>(id),
        [&](net::Party& party) {
          party.enable_wal();
          party.set_executors(pool.get());
          return make_state(party, options);
        });
    node->set_executors(pool.get());
    node->attach(*host);
    node->bind_transport_batched([this, id](int peer, std::vector<net::transport::GroupPayload> payloads) {
      hub.send_many(id, peer, std::move(payloads));
    });
    hub.set_receiver(id, [raw = node.get()](int from, BytesView payload) {
      raw->on_transport_receive(from, payload);
    });
    nodes[slot] = std::move(node);
    hosts[slot] = std::move(host);
    execs[slot] = std::move(pool);
  }

  /// SIGKILL + disk wipe: the process object is destroyed outright — no
  /// snapshot is taken, the in-memory WAL (the "disk") dies with it.
  void kill_and_wipe(int id) {
    const auto slot = static_cast<std::size_t>(id);
    hub.set_receiver(id, [](int, BytesView) {});  // frames land in the void
    if (execs[slot]) execs[slot]->stop();
    hosts[slot].reset();
    nodes[slot].reset();
    execs[slot].reset();
  }

  RecState& state(int id) { return hosts[static_cast<std::size_t>(id)]->protocol(); }

  void submit(int id, Bytes payload) {
    auto& host = *hosts[static_cast<std::size_t>(id)];
    host.party().with_instance("abc", [&] {
      host.protocol().abc->submit(std::move(payload));
    });
  }

  bool run_until(const std::function<bool()>& done, std::size_t max_iters = 3'000'000) {
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
      if (done()) return true;
      bool progressed = false;
      for (auto& node : nodes) {
        if (node) progressed = (node->poll() > 0) || progressed;
      }
      progressed = hub.step() || progressed;
      if (!progressed) {
        for (auto& pool : execs) {
          if (pool) pool->wait_idle();
        }
        for (auto& node : nodes) {
          if (node) node->poll();
        }
        hub.tick();
        // Timers here are wall-clock: sleep a little so retry/query
        // windows actually mature instead of spinning.
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    }
    return done();
  }

  /// Everyone (that is up) at `total`, then drain until the wire is dry.
  bool settle(std::size_t total) {
    auto all_at = [&] {
      for (auto& host : hosts) {
        if (host && host->protocol().total.load(std::memory_order_acquire) < total) return false;
      }
      return true;
    };
    if (!run_until(all_at)) return false;
    // Quiesce: a few rounds with no progress at all.
    for (int calm = 0; calm < 8;) {
      bool progressed = false;
      for (auto& node : nodes) {
        if (node) progressed = (node->poll() > 0) || progressed;
      }
      progressed = hub.step() || progressed;
      if (progressed) {
        calm = 0;
      } else {
        for (auto& pool : execs) {
          if (pool) pool->wait_idle();
        }
        hub.tick();
        ++calm;
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    }
    return true;
  }
};

void expect_identical_total_order(RecoveryCluster& cluster, std::size_t expect_total) {
  // Synchronize with executor lanes before reading the raw vectors.
  for (auto& pool : cluster.execs) {
    if (pool) pool->wait_idle();
  }
  const auto& reference = cluster.state(0).delivered;
  ASSERT_EQ(reference.size(), expect_total);
  for (int id = 1; id < kN; ++id) {
    EXPECT_EQ(cluster.state(id).delivered, reference)
        << "node " << id << " diverged from the recovered total order";
  }
}

void run_wipe_recovery(Deployment deployment, std::uint64_t seed) {
  RecoveryCluster cluster(std::move(deployment), seed);
  for (int id = 0; id < kN; ++id) cluster.build_node(id);
  for (int id = 0; id < kN; ++id) cluster.submit(id, bytes_of("pre" + std::to_string(id)));
  ASSERT_TRUE(cluster.settle(kN)) << "pre-crash traffic never settled";
  ASSERT_TRUE(cluster.state(0).abc->latest_certificate().has_value());
  {
    const auto& c0 = *cluster.state(0).abc->latest_certificate();
    ASSERT_FALSE(cluster.state(0).abc->certified_state(c0).empty())
        << "peer cannot serialize its own certified prefix: cert.delivered="
        << c0.delivered_count << " abc.delivered=" << cluster.state(0).abc->delivered_count();
  }

  // SIGKILL node 3 and wipe its disk; bring a blank incarnation back with
  // nothing but its dealt key share, under an active partition schedule
  // (split twice, heal) while it recovers.
  cluster.kill_and_wipe(3);
  cluster.hub.set_partition_profile(
      PartitionProfile::split_heal(kN, seed * 13 + 1, /*period=*/48, /*splits=*/2));
  StateTransferOptions options;
  options.query_window = 30;
  options.retry_timeout = 80;
  options.max_rounds = 16;
  cluster.build_node(3, options);
  RecState& rec = cluster.state(3);
  EXPECT_EQ(rec.total.load(), 0u) << "the wiped node must restart blank";
  cluster.hosts[3]->party().with_instance("abc", [&] {
    rec.xfer->begin_recovery([&rec](bool ok) {
      rec.recovery.store(ok ? 1 : 2, std::memory_order_release);
    });
  });
  ASSERT_TRUE(cluster.run_until([&] { return rec.recovery.load(std::memory_order_acquire) != 0; }))
      << "state transfer never finished";
  ASSERT_EQ(rec.recovery.load(), 1)
      << "state transfer failed: offers=" << rec.xfer->stats().offers_received
      << " bad_certs=" << rec.xfer->stats().bad_certificates
      << " fetched=" << rec.xfer->stats().chunks_fetched
      << " retries=" << rec.xfer->stats().chunk_retries
      << " failovers=" << rec.xfer->stats().failovers
      << " peer0_queries_served=" << cluster.state(0).xfer->stats().queries_served
      << " peer0_cert=" << cluster.state(0).abc->latest_certificate().has_value();
  EXPECT_EQ(rec.xfer->stats().installs, 1u);
  EXPECT_EQ(rec.total.load(), static_cast<std::size_t>(kN))
      << "install must re-deliver the certified prefix";
  EXPECT_GT(cluster.hub.stats().partition_splits, 0u) << "partition schedule never engaged";

  // The rejoined node commits new traffic in the same total order.
  cluster.submit(0, bytes_of("post0"));
  cluster.submit(3, bytes_of("post3"));
  ASSERT_TRUE(cluster.settle(kN + 2)) << "post-recovery traffic never settled";
  // By now the schedule has drained: every severed pair was healed again.
  EXPECT_EQ(cluster.hub.stats().partition_heals, cluster.hub.stats().partition_splits)
      << "schedule must end healed";
  expect_identical_total_order(cluster, kN + 2);
}

TEST(StateTransferClusterTest, WipedPartyRecoversUnderThresholdDeployment) {
  run_wipe_recovery(threshold_deployment(61), 61);
}

TEST(StateTransferClusterTest, WipedPartyRecoversUnderGeneralQ3Deployment) {
  run_wipe_recovery(q3_deployment(67), 67);
}

TEST(StateTransferClusterTest, PartitionWipeSeedSweep) {
  // Chaos coverage: sweep fresh (hub seed, partition schedule, deployment)
  // tuples through the full wipe-and-recover scenario, alternating
  // threshold and general-Q3 deployments.  SINTRA_STATEXFER_SEEDS widens
  // the sweep in the nightly ASan job; the per-push default runs a single
  // extra tuple beyond the two pinned tests above.
  int seeds = 1;
  if (const char* env = std::getenv("SINTRA_STATEXFER_SEEDS")) {
    const int value = std::atoi(env);
    if (value > 0) seeds = value;
  }
  for (int i = 0; i < seeds; ++i) {
    const std::uint64_t seed = 101 + 7 * static_cast<std::uint64_t>(i);
    SCOPED_TRACE("sweep seed " + std::to_string(seed));
    if (i % 2 == 0) {
      run_wipe_recovery(threshold_deployment(seed), seed);
    } else {
      run_wipe_recovery(q3_deployment(seed), seed);
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

/// Hub seed for the Byzantine failover test, picked (by sweep) so the
/// tampering peer's offer is selected before the honest peer's.
constexpr std::uint64_t kByzantineSeed = 1;

/// Peer 0 serves a forged certificate (chain digest altered after
/// signing), peer 1 serves tampered chunks, peer 2 is honest.  The
/// recovery must detect both, blacklist the offenders and install from
/// the honest peer.  Returns the recovering node's stats so the caller
/// can pick a hub seed under which the tamperer's offer wins the tie and
/// the chunk-verification failover genuinely runs.
StateTransfer::Stats run_byzantine_recovery(std::uint64_t seed) {
  auto deployment = threshold_deployment(seed);
  RecoveryCluster cluster(deployment, seed);
  StateTransferOptions forge;
  forge.forge_certificate = true;
  StateTransferOptions tamper;
  tamper.tamper_chunks = true;
  cluster.build_node(0, forge);
  cluster.build_node(1, tamper);
  cluster.build_node(2);
  cluster.build_node(3);
  for (int id = 0; id < kN; ++id) cluster.submit(id, bytes_of("pre" + std::to_string(id)));
  EXPECT_TRUE(cluster.settle(kN));

  cluster.kill_and_wipe(3);
  StateTransferOptions options;
  options.query_window = 30;
  options.retry_timeout = 80;
  options.max_rounds = 16;
  cluster.build_node(3, options);
  RecState& rec = cluster.state(3);
  cluster.hosts[3]->party().with_instance("abc", [&] {
    rec.xfer->begin_recovery([&rec](bool ok) {
      rec.recovery.store(ok ? 1 : 2, std::memory_order_release);
    });
  });
  EXPECT_TRUE(
      cluster.run_until([&] { return rec.recovery.load(std::memory_order_acquire) != 0; }));
  EXPECT_EQ(rec.recovery.load(), 1) << "recovery must fail over to the honest peer";

  const StateTransfer::Stats stats = rec.xfer->stats();
  EXPECT_GE(stats.bad_certificates, 1u) << "forged certificate went undetected";
  EXPECT_EQ(stats.installs, 1u);
  EXPECT_EQ(rec.total.load(), static_cast<std::size_t>(kN));

  cluster.submit(2, bytes_of("post"));
  EXPECT_TRUE(cluster.settle(kN + 1));
  expect_identical_total_order(cluster, kN + 1);
  return stats;
}


TEST(StateTransferClusterTest, ByzantineServersAreDetectedAndFailedOver) {
  // Seed chosen so the tampering peer's offer arrives (and wins the
  // highest-round tie) before the honest peer's: the fetch starts against
  // the tamperer, every chunk fails the manifest digest, and the protocol
  // fails over to the honest peer — on top of the forged-certificate
  // blacklisting the helper always checks.
  const StateTransfer::Stats stats = run_byzantine_recovery(kByzantineSeed);
  EXPECT_GE(stats.bad_chunks, 1u) << "tampered chunk path never ran at this seed";
  EXPECT_GE(stats.failovers, 1u) << "tamperer was never abandoned";
}

// ---- satellite 4: refresh concurrent with state transfer under E=4 ---------

TEST(StateTransferClusterTest, RefreshRunsConcurrentlyWithRecoveryUnderExecutors) {
  // Nodes 0-2 run a proactive refresh epoch while the wiped node 3
  // rebuilds via state transfer, all with ExecutorPool(4) per node — the
  // refresh tree, the service tree and the transfer run on separate
  // lanes.  Afterwards: the refreshed shares are consistent among
  // themselves, reject mixing with epoch e-1 shares, and the recovered
  // node holds the identical total order.
  auto deployment = threshold_deployment(83);
  const std::uint64_t seed = 83;
  RecoveryCluster cluster(deployment, seed, /*executors=*/4);
  cluster.with_refresh = true;
  for (int id = 0; id < kN; ++id) cluster.build_node(id);
  for (int id = 0; id < kN; ++id) cluster.submit(id, bytes_of("pre" + std::to_string(id)));
  ASSERT_TRUE(cluster.settle(kN));

  cluster.kill_and_wipe(3);
  StateTransferOptions options;
  options.query_window = 30;
  options.retry_timeout = 80;
  options.max_rounds = 16;
  cluster.build_node(3, options);
  RecState& rec = cluster.state(3);
  // Kick off the refresh epoch and the recovery together.
  for (int id = 0; id < 3; ++id) {
    auto& host = *cluster.hosts[static_cast<std::size_t>(id)];
    host.party().with_instance("refresh", [&] { host.protocol().refresh->start(); });
  }
  cluster.hosts[3]->party().with_instance("abc", [&] {
    rec.xfer->begin_recovery([&rec](bool ok) {
      rec.recovery.store(ok ? 1 : 2, std::memory_order_release);
    });
  });
  ASSERT_TRUE(cluster.run_until([&] {
    if (rec.recovery.load(std::memory_order_acquire) == 0) return false;
    for (int id = 0; id < 3; ++id) {
      if (!cluster.state(id).refreshed.load(std::memory_order_acquire)) return false;
    }
    return true;
  })) << "refresh and recovery did not both complete";
  ASSERT_EQ(rec.recovery.load(), 1);
  EXPECT_EQ(rec.total.load(), static_cast<std::size_t>(kN));

  cluster.submit(1, bytes_of("post"));
  ASSERT_TRUE(cluster.settle(kN + 1));
  cluster.stop();  // join lanes: refresh results are safe to read now
  expect_identical_total_order(cluster, kN + 1);

  // Epoch algebra: fresh shares agree with each other and reconstruct the
  // original secret; a share from epoch e-1 mixed into epoch e
  // interpolates to garbage — the restored party must not accept stale
  // shares after the epoch advanced.
  const auto& group = deployment.keys->public_keys().coin.group();
  crypto::ThresholdScheme scheme(kN, 1);
  std::map<int, crypto::BigInt> old_shares;
  std::map<int, crypto::BigInt> new_shares;
  for (int id : {0, 2}) {
    old_shares[id] = deployment.keys->share(id).coin.unit_shares().at(id);
    new_shares[id] = cluster.state(id).refresh_result->new_share;
  }
  EXPECT_EQ(scheme.reconstruct(old_shares, group.q()),
            scheme.reconstruct(new_shares, group.q()))
      << "refresh must preserve the shared secret";
  std::map<int, crypto::BigInt> mixed;
  mixed[0] = deployment.keys->share(0).coin.unit_shares().at(0);  // epoch e-1
  mixed[1] = cluster.state(1).refresh_result->new_share;          // epoch e
  EXPECT_NE(scheme.reconstruct(mixed, group.q()), scheme.reconstruct(new_shares, group.q()))
      << "stale epoch e-1 shares must not combine into epoch e";
}

}  // namespace
}  // namespace sintra
