// Proactive share refresh tests (§6): epoch refresh of the threshold coin
// key — shares change, the secret and coin values do not, stale shares
// stop combining with fresh ones, and crashed/Byzantine parties are
// tolerated.
#include <gtest/gtest.h>

#include "crypto/shamir.hpp"
#include "protocols/harness.hpp"
#include "protocols/refresh.hpp"

namespace sintra::protocols {
namespace {

using crypto::BigInt;
using crypto::CoinShare;
using crypto::party_bit;

struct RefreshState {
  std::unique_ptr<ShareRefresh> refresh;
  std::optional<ShareRefresh::Result> result;
};

struct Harness {
  Harness(int n, int t, crypto::PartySet corrupted, std::uint64_t seed)
      : rng(seed),
        deployment(adversary::Deployment::threshold(n, t, rng)),
        sched(seed * 3 + 1),
        cluster(
            deployment, sched,
            [&](net::Party& party, int id) {
              auto state = std::make_unique<RefreshState>();
              const auto& coin_sk = deployment.keys->share(id).coin;
              state->refresh = std::make_unique<ShareRefresh>(
                  party, "refresh", coin_sk.unit_shares().at(id),
                  deployment.keys->public_keys().coin.verification_values(), t,
                  [s = state.get()](ShareRefresh::Result r) { s->result = std::move(r); });
              return state;
            },
            corrupted, 0, seed) {}

  bool run() {
    cluster.start();
    cluster.for_each([](int, RefreshState& s) { s.refresh->start(); });
    return cluster.run_until_all([](RefreshState& s) { return s.result.has_value(); },
                                 30000000);
  }

  Rng rng;
  adversary::Deployment deployment;
  net::RandomScheduler sched;
  Cluster<RefreshState> cluster;
};

TEST(RefreshTest, SharesChangeSecretDoesNot) {
  Harness h(4, 1, 0, 5);
  ASSERT_TRUE(h.run());
  const auto& group = h.deployment.keys->public_keys().coin.group();

  // All parties agree on the new verification values.
  const auto& reference = h.cluster.protocol(0)->result->new_verification;
  h.cluster.for_each([&](int id, RefreshState& s) {
    EXPECT_EQ(s.result->new_verification, reference);
    EXPECT_GT(s.result->dealings_applied, 0);
    // New share consistent with the new public values.
    EXPECT_EQ(group.exp_g(s.result->new_share),
              reference[static_cast<std::size_t>(id)]);
    // And different from the old share.
    EXPECT_NE(s.result->new_share,
              h.deployment.keys->share(id).coin.unit_shares().at(id));
  });

  // The shared secret is preserved: interpolate old and new shares.
  crypto::ThresholdScheme scheme(4, 1);
  std::map<int, BigInt> old_shares;
  std::map<int, BigInt> new_shares;
  for (int id : {0, 2}) {
    old_shares[id] = h.deployment.keys->share(id).coin.unit_shares().at(id);
    new_shares[id] = h.cluster.protocol(id)->result->new_share;
  }
  EXPECT_EQ(scheme.reconstruct(old_shares, group.q()),
            scheme.reconstruct(new_shares, group.q()));
}

TEST(RefreshTest, MixedOldAndNewSharesAreInconsistent) {
  // The proactive property at the algebra level: a t-set of OLD shares
  // plus fresh shares interpolate to garbage — old share knowledge does
  // not carry into the new epoch.
  Harness h(4, 1, 0, 7);
  ASSERT_TRUE(h.run());
  const auto& group = h.deployment.keys->public_keys().coin.group();
  crypto::ThresholdScheme scheme(4, 1);
  std::map<int, BigInt> mixed;
  mixed[0] = h.deployment.keys->share(0).coin.unit_shares().at(0);  // old epoch
  mixed[1] = h.cluster.protocol(1)->result->new_share;              // new epoch
  std::map<int, BigInt> pure;
  pure[0] = h.cluster.protocol(0)->result->new_share;
  pure[1] = h.cluster.protocol(1)->result->new_share;
  EXPECT_NE(scheme.reconstruct(mixed, group.q()), scheme.reconstruct(pure, group.q()));
}

TEST(RefreshTest, RefreshedCoinStillCombinesAndAgrees) {
  // End-to-end: rebuild coin keys from the refreshed shares and toss a
  // coin — it combines from disjoint share sets and both match.
  Harness h(4, 1, 0, 9);
  ASSERT_TRUE(h.run());
  auto scheme = std::make_shared<crypto::ThresholdScheme>(4, 1);
  auto group = crypto::Group::test_group();
  crypto::CoinPublicKey new_pk(group, scheme,
                               h.cluster.protocol(0)->result->new_verification);
  Bytes name = bytes_of("epoch-2-coin");
  Rng rng(99);
  std::vector<CoinShare> a;
  std::vector<CoinShare> b;
  for (int id = 0; id < 4; ++id) {
    crypto::CoinSecretKey sk(id, {{id, h.cluster.protocol(id)->result->new_share}});
    for (auto& share : sk.share(new_pk, name, rng)) {
      EXPECT_TRUE(new_pk.verify_share(name, share));
      (id < 2 ? a : b).push_back(share);
    }
  }
  auto va = new_pk.combine(name, a);
  auto vb = new_pk.combine(name, b);
  ASSERT_TRUE(va && vb);
  EXPECT_EQ(*va, *vb);

  // The refreshed key is the SAME key: a coin for the same name under the
  // old keys gives the same value (the secret did not change).
  const auto& old_pk = h.deployment.keys->public_keys().coin;
  std::vector<CoinShare> old_shares;
  for (int id = 0; id < 2; ++id) {
    for (auto& share : h.deployment.keys->share(id).coin.share(old_pk, name, rng)) {
      old_shares.push_back(share);
    }
  }
  auto old_value = old_pk.combine(name, old_shares);
  ASSERT_TRUE(old_value.has_value());
  EXPECT_EQ(*old_value, *va);
}

TEST(RefreshTest, ToleratesCrashedParty) {
  Harness h(4, 1, party_bit(2), 11);
  ASSERT_TRUE(h.run());
  const auto* first = h.cluster.protocol(0);
  h.cluster.for_each([&](int, RefreshState& s) {
    EXPECT_EQ(s.result->new_verification, first->result->new_verification);
    EXPECT_GT(s.result->dealings_applied, 0);
  });
}

TEST(RefreshTest, LargerSystem) {
  Harness h(7, 2, party_bit(1) | party_bit(4), 13);
  ASSERT_TRUE(h.run());
  const auto* first = h.cluster.protocol(0);
  h.cluster.for_each([&](int, RefreshState& s) {
    EXPECT_EQ(s.result->new_verification, first->result->new_verification);
  });
}

TEST(RefreshTest, SequentialEpochs) {
  // Two refresh epochs in a row (separate protocol instances); shares keep
  // moving, the secret keeps still.
  Rng rng(15);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  auto group = crypto::Group::test_group();
  crypto::ThresholdScheme scheme(4, 1);

  std::vector<BigInt> shares;
  std::vector<crypto::Element> verification =
      deployment.keys->public_keys().coin.verification_values();
  for (int id = 0; id < 4; ++id) {
    shares.push_back(deployment.keys->share(id).coin.unit_shares().at(id));
  }
  BigInt original_secret;
  {
    std::map<int, BigInt> m{{0, shares[0]}, {1, shares[1]}};
    original_secret = scheme.reconstruct(m, group->q());
  }

  for (int epoch = 0; epoch < 2; ++epoch) {
    net::RandomScheduler sched(static_cast<std::uint64_t>(epoch) * 17 + 3);
    Cluster<RefreshState> cluster(
        deployment, sched,
        [&](net::Party& party, int id) {
          auto state = std::make_unique<RefreshState>();
          state->refresh = std::make_unique<ShareRefresh>(
              party, "refresh-e" + std::to_string(epoch), shares[static_cast<std::size_t>(id)],
              verification, 1,
              [s = state.get()](ShareRefresh::Result r) { s->result = std::move(r); });
          return state;
        },
        0, 0, static_cast<std::uint64_t>(epoch) + 21);
    cluster.start();
    cluster.for_each([](int, RefreshState& s) { s.refresh->start(); });
    ASSERT_TRUE(cluster.run_until_all([](RefreshState& s) { return s.result.has_value(); },
                                      30000000));
    for (int id = 0; id < 4; ++id) {
      shares[static_cast<std::size_t>(id)] = cluster.protocol(id)->result->new_share;
    }
    verification = cluster.protocol(0)->result->new_verification;
    std::map<int, BigInt> m{{2, shares[2]}, {3, shares[3]}};
    EXPECT_EQ(scheme.reconstruct(m, group->q()), original_secret) << "epoch " << epoch;
  }
}

}  // namespace
}  // namespace sintra::protocols
