// Timer wheel unit tests: firing order, cancellation, rescheduling from
// callbacks, slot wrap-around, and deadline queries.
#include <gtest/gtest.h>

#include <vector>

#include "net/transport/timer_wheel.hpp"

namespace sintra::net::transport {
namespace {

TEST(TimerWheelTest, FiresInDeadlineThenScheduleOrder) {
  TimerWheel wheel;
  std::vector<int> fired;
  wheel.schedule_at(10, [&] { fired.push_back(1); });
  wheel.schedule_at(5, [&] { fired.push_back(2); });
  wheel.schedule_at(10, [&] { fired.push_back(3); });
  wheel.schedule_at(7, [&] { fired.push_back(4); });
  wheel.advance_to(20);
  EXPECT_EQ(fired, (std::vector<int>{2, 4, 1, 3}));
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, DoesNotFireEarly) {
  TimerWheel wheel;
  int fired = 0;
  wheel.schedule_at(100, [&] { ++fired; });
  wheel.advance_to(99);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.pending(), 1u);
  wheel.advance_to(100);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, ZeroDelayClampsToNextTick) {
  TimerWheel wheel;
  int fired = 0;
  const auto id = wheel.schedule_after(0, [&] { ++fired; });
  EXPECT_NE(id, 0u);
  wheel.advance_to(wheel.now());  // no time passes: must not fire
  EXPECT_EQ(fired, 0);
  wheel.advance_to(wheel.now() + 1);
  EXPECT_EQ(fired, 1);
}

TEST(TimerWheelTest, CancelPreventsFiring) {
  TimerWheel wheel;
  int fired = 0;
  const auto id = wheel.schedule_at(5, [&] { ++fired; });
  EXPECT_TRUE(wheel.cancel(id));
  EXPECT_FALSE(wheel.cancel(id));  // already cancelled
  wheel.advance_to(10);
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, CallbackMayReschedule) {
  TimerWheel wheel;
  std::vector<std::uint64_t> fire_times;
  std::function<void()> periodic = [&] {
    fire_times.push_back(wheel.now());
    if (fire_times.size() < 3) wheel.schedule_after(10, periodic);
  };
  wheel.schedule_at(10, periodic);
  wheel.advance_to(100);
  EXPECT_EQ(fire_times, (std::vector<std::uint64_t>{10, 20, 30}));
}

TEST(TimerWheelTest, LongJumpPastManySlots) {
  // A jump far beyond the wheel size must fire everything exactly once.
  TimerWheel wheel;
  int fired = 0;
  for (std::uint64_t d = 1; d <= 1000; ++d) wheel.schedule_at(d, [&] { ++fired; });
  wheel.advance_to(1'000'000);
  EXPECT_EQ(fired, 1000);
  EXPECT_EQ(wheel.pending(), 0u);
}

TEST(TimerWheelTest, SameSlotDifferentRotation) {
  // Deadlines 1 and 257 share bucket (1 & 255): the early advance must
  // fire only the due one.
  TimerWheel wheel;
  std::vector<int> fired;
  wheel.schedule_at(257, [&] { fired.push_back(257); });
  wheel.schedule_at(1, [&] { fired.push_back(1); });
  wheel.advance_to(10);
  EXPECT_EQ(fired, (std::vector<int>{1}));
  wheel.advance_to(300);
  EXPECT_EQ(fired, (std::vector<int>{1, 257}));
}

TEST(TimerWheelTest, NextDeadlineTracksEarliest) {
  TimerWheel wheel;
  EXPECT_FALSE(wheel.next_deadline().has_value());
  wheel.schedule_at(50, [] {});
  const auto id = wheel.schedule_at(20, [] {});
  ASSERT_TRUE(wheel.next_deadline().has_value());
  EXPECT_EQ(*wheel.next_deadline(), 20u);
  wheel.cancel(id);
  ASSERT_TRUE(wheel.next_deadline().has_value());
  EXPECT_EQ(*wheel.next_deadline(), 50u);
}

}  // namespace
}  // namespace sintra::net::transport
