// TDH2 threshold cryptosystem tests: round-trips, ciphertext integrity
// (the CCA2 mechanics: proof of well-formedness, label binding), share
// robustness, and the generalized-structure instantiation.
#include <gtest/gtest.h>

#include "adversary/examples.hpp"
#include "crypto/shamir.hpp"
#include "crypto/tdh2.hpp"

namespace sintra::crypto {
namespace {

class Tdh2Test : public ::testing::Test {
 protected:
  Tdh2Test()
      : rng_(321),
        deal_(Tdh2Deal::deal(Group::test_group(), std::make_shared<ThresholdScheme>(4, 1),
                             rng_)) {}

  std::vector<Tdh2DecShare> shares_for(const Tdh2Ciphertext& ct,
                                       std::initializer_list<int> parties) {
    std::vector<Tdh2DecShare> out;
    for (int p : parties) {
      for (auto& s : deal_.secret_keys[static_cast<std::size_t>(p)].decrypt_shares(
               deal_.public_key, ct, rng_)) {
        out.push_back(s);
      }
    }
    return out;
  }

  Rng rng_;
  Tdh2Deal deal_;
};

TEST_F(Tdh2Test, EncryptDecryptRoundTrip) {
  Bytes message = bytes_of("the secret bid is 42 dollars");
  auto ct = deal_.public_key.encrypt(message, bytes_of("auction"), rng_);
  EXPECT_TRUE(deal_.public_key.check_ciphertext(ct));
  auto plaintext = deal_.public_key.combine(ct, shares_for(ct, {0, 1}));
  ASSERT_TRUE(plaintext.has_value());
  EXPECT_EQ(*plaintext, message);
}

TEST_F(Tdh2Test, EmptyAndLargeMessages) {
  for (std::size_t len : {0u, 1u, 31u, 32u, 33u, 1000u}) {
    Bytes message(len, 0xc3);
    auto ct = deal_.public_key.encrypt(message, bytes_of("l"), rng_);
    auto plaintext = deal_.public_key.combine(ct, shares_for(ct, {2, 3}));
    ASSERT_TRUE(plaintext.has_value());
    EXPECT_EQ(*plaintext, message) << "len=" << len;
  }
}

TEST_F(Tdh2Test, DisjointShareSetsAgree) {
  Bytes message = bytes_of("same plaintext");
  auto ct = deal_.public_key.encrypt(message, bytes_of("l"), rng_);
  auto a = deal_.public_key.combine(ct, shares_for(ct, {0, 1}));
  auto b = deal_.public_key.combine(ct, shares_for(ct, {2, 3}));
  ASSERT_TRUE(a && b);
  EXPECT_EQ(*a, *b);
}

TEST_F(Tdh2Test, UnqualifiedSetFails) {
  auto ct = deal_.public_key.encrypt(bytes_of("m"), bytes_of("l"), rng_);
  EXPECT_FALSE(deal_.public_key.combine(ct, shares_for(ct, {0})).has_value());
  EXPECT_FALSE(deal_.public_key.combine(ct, {}).has_value());
}

TEST_F(Tdh2Test, TamperedCiphertextDataRejected) {
  auto ct = deal_.public_key.encrypt(bytes_of("message"), bytes_of("l"), rng_);
  Tdh2Ciphertext bad = ct;
  bad.data[0] ^= 1;
  EXPECT_FALSE(deal_.public_key.check_ciphertext(bad));
  // Honest parties refuse to produce shares for it.
  EXPECT_TRUE(deal_.secret_keys[0].decrypt_shares(deal_.public_key, bad, rng_).empty());
  EXPECT_FALSE(deal_.public_key.combine(bad, shares_for(ct, {0, 1})).has_value());
}

TEST_F(Tdh2Test, TamperedLabelRejected) {
  // Label binding: altering the label invalidates the ciphertext — the
  // property that stops cross-context replay of requests.
  auto ct = deal_.public_key.encrypt(bytes_of("message"), bytes_of("notary"), rng_);
  Tdh2Ciphertext bad = ct;
  bad.label = bytes_of("other-service");
  EXPECT_FALSE(deal_.public_key.check_ciphertext(bad));
}

TEST_F(Tdh2Test, TamperedElementsRejected) {
  auto ct = deal_.public_key.encrypt(bytes_of("message"), bytes_of("l"), rng_);
  const Group& g = deal_.public_key.group();
  Tdh2Ciphertext bad = ct;
  bad.u = g.mul(bad.u, g.g());
  EXPECT_FALSE(deal_.public_key.check_ciphertext(bad));
  Tdh2Ciphertext bad2 = ct;
  bad2.u_bar = g.mul(bad2.u_bar, g.g());
  EXPECT_FALSE(deal_.public_key.check_ciphertext(bad2));
  Tdh2Ciphertext bad3 = ct;
  bad3.f = g.scalar_add(bad3.f, BigInt(1));
  EXPECT_FALSE(deal_.public_key.check_ciphertext(bad3));
}

TEST_F(Tdh2Test, RelatedCiphertextCannotBeForged) {
  // The front-running attack surface: an adversary who sees ct cannot make
  // a *different* valid ciphertext of related content without the random
  // exponent r.  Mauling any component breaks the Fiat–Shamir proof.
  auto ct = deal_.public_key.encrypt(bytes_of("patent claims: X"), bytes_of("l"), rng_);
  Tdh2Ciphertext maul = ct;
  for (auto& b : maul.data) b ^= 0x20;  // attempt plaintext mauling via XOR
  EXPECT_FALSE(deal_.public_key.check_ciphertext(maul));
}

TEST_F(Tdh2Test, BadDecryptionShareRejected) {
  auto ct = deal_.public_key.encrypt(bytes_of("m"), bytes_of("l"), rng_);
  auto shares = shares_for(ct, {0, 1});
  Tdh2DecShare bad = shares[0];
  bad.value = deal_.public_key.group().mul(bad.value, deal_.public_key.group().g());
  EXPECT_FALSE(deal_.public_key.verify_share(ct, bad));
}

TEST_F(Tdh2Test, ShareBoundToCiphertext) {
  // A share produced for ct1 must not verify against ct2.
  auto ct1 = deal_.public_key.encrypt(bytes_of("m1"), bytes_of("l"), rng_);
  auto ct2 = deal_.public_key.encrypt(bytes_of("m2"), bytes_of("l"), rng_);
  auto shares = shares_for(ct1, {0});
  EXPECT_TRUE(deal_.public_key.verify_share(ct1, shares[0]));
  EXPECT_FALSE(deal_.public_key.verify_share(ct2, shares[0]));
}

TEST_F(Tdh2Test, CiphertextSerializationRoundTrip) {
  auto ct = deal_.public_key.encrypt(bytes_of("wire format"), bytes_of("l"), rng_);
  Writer w;
  ct.encode(w, deal_.public_key.group());
  Reader r(w.data());
  Tdh2Ciphertext decoded = Tdh2Ciphertext::decode(r, deal_.public_key.group());
  r.expect_done();
  EXPECT_TRUE(deal_.public_key.check_ciphertext(decoded));
  EXPECT_EQ(decoded.id(deal_.public_key.group()), ct.id(deal_.public_key.group()));
  auto plaintext = deal_.public_key.combine(decoded, shares_for(decoded, {1, 2}));
  ASSERT_TRUE(plaintext.has_value());
  EXPECT_EQ(*plaintext, bytes_of("wire format"));
}

TEST_F(Tdh2Test, DecShareSerializationRoundTrip) {
  auto ct = deal_.public_key.encrypt(bytes_of("m"), bytes_of("l"), rng_);
  auto shares = shares_for(ct, {3});
  Writer w;
  shares[0].encode(w, deal_.public_key.group());
  Reader r(w.data());
  auto decoded = Tdh2DecShare::decode(r, deal_.public_key.group());
  EXPECT_TRUE(deal_.public_key.verify_share(ct, decoded));
}

TEST_F(Tdh2Test, EncryptionIsRandomized) {
  Bytes message = bytes_of("same message");
  auto ct1 = deal_.public_key.encrypt(message, bytes_of("l"), rng_);
  auto ct2 = deal_.public_key.encrypt(message, bytes_of("l"), rng_);
  EXPECT_NE(ct1.u, ct2.u);
  EXPECT_NE(ct1.data, ct2.data);
}

TEST(Tdh2GeneralTest, WorksOverExample2Lsss) {
  // Decryption over the paper's Example 2 grid: the 3x3 honest grid
  // decrypts, a full location+OS corruption set cannot.
  Rng rng(55);
  auto scheme = std::make_shared<adversary::LsssScheme>(adversary::example2_access(), 16);
  auto deal = Tdh2Deal::deal(Group::test_group(), scheme, rng);
  Bytes message = bytes_of("multinational secret");
  auto ct = deal.public_key.encrypt(message, bytes_of("dir"), rng);

  auto collect = [&](const std::vector<int>& parties) {
    std::vector<Tdh2DecShare> out;
    for (int p : parties) {
      for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].decrypt_shares(
               deal.public_key, ct, rng)) {
        out.push_back(s);
      }
    }
    return out;
  };

  // Honest 3x3 grid: locations 1..3 x OSes 1..3.
  std::vector<int> grid;
  for (int loc = 1; loc < 4; ++loc) {
    for (int os = 1; os < 4; ++os) grid.push_back(adversary::example2_party(loc, os));
  }
  auto plaintext = deal.public_key.combine(ct, collect(grid));
  ASSERT_TRUE(plaintext.has_value());
  EXPECT_EQ(*plaintext, message);

  // The adversary: all of location 0 plus all of OS 0 (7 servers).
  std::vector<int> bad;
  for (int k = 0; k < 4; ++k) {
    bad.push_back(adversary::example2_party(0, k));
    if (k != 0) bad.push_back(adversary::example2_party(k, 0));
  }
  EXPECT_FALSE(deal.public_key.combine(ct, collect(bad)).has_value());
}

}  // namespace
}  // namespace sintra::crypto
