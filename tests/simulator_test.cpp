// Network substrate tests: delivery semantics, scheduler behaviours,
// party routing/buffering, traffic accounting.
#include <gtest/gtest.h>

#include "net/corruption.hpp"
#include "net/party.hpp"

namespace sintra::net {
namespace {

/// Records everything it receives.
class Recorder final : public Process {
 public:
  void on_message(const Message& message) override { received.push_back(message); }
  std::vector<Message> received;
};

/// Sends one message to `to` on start.
class OneShot final : public Process {
 public:
  OneShot(Simulator& sim, int id, int to) : sim_(sim), id_(id), to_(to) {}
  void on_start() override {
    Message m;
    m.from = id_;
    m.to = to_;
    m.tag = "t/x";
    m.payload = bytes_of("hello");
    sim_.submit(std::move(m));
  }
  void on_message(const Message&) override {}

 private:
  Simulator& sim_;
  int id_;
  int to_;
};

TEST(SimulatorTest, DeliversSubmittedMessage) {
  FifoScheduler sched;
  Simulator sim(2, sched);
  sim.attach(0, std::make_unique<OneShot>(sim, 0, 1));
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  sim.attach(1, std::move(recorder));
  sim.start();
  EXPECT_EQ(sim.run(100), 1u);
  ASSERT_EQ(rec->received.size(), 1u);
  EXPECT_EQ(rec->received[0].from, 0);
  EXPECT_EQ(rec->received[0].payload, bytes_of("hello"));
}

TEST(SimulatorTest, QuiescenceDetected) {
  FifoScheduler sched;
  Simulator sim(1, sched);
  sim.attach(0, std::make_unique<Recorder>());
  sim.start();
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(sim.run(10), 0u);
}

TEST(SimulatorTest, RejectsBadEndpoints) {
  FifoScheduler sched;
  Simulator sim(2, sched);
  Message m;
  m.from = 0;
  m.to = 7;
  EXPECT_THROW(sim.submit(std::move(m)), ProtocolError);
}

TEST(SimulatorTest, SenderSpoofingRejected) {
  // Authenticated channels: a process cannot submit under another id.
  class Spoofer final : public Process {
   public:
    Spoofer(Simulator& sim, int id) : sim_(sim), id_(id) {}
    void on_start() override {
      Message m;
      m.from = id_ == 0 ? 1 : 0;  // claim to be somebody else
      m.to = id_;
      m.tag = "x";
      EXPECT_THROW(sim_.submit(std::move(m)), ProtocolError);
      // Own identity is fine.
      Message ok;
      ok.from = id_;
      ok.to = (id_ + 1) % 2;
      ok.tag = "x";
      sim_.submit(std::move(ok));
    }
    void on_message(const Message&) override {}

   private:
    Simulator& sim_;
    int id_;
  };
  FifoScheduler sched;
  Simulator sim(2, sched);
  sim.attach(0, std::make_unique<Spoofer>(sim, 0));
  sim.attach(1, std::make_unique<Spoofer>(sim, 1));
  sim.start();
  EXPECT_EQ(sim.pending_count(), 2u);  // only the honest sends got through
}

TEST(SimulatorTest, TrafficAccountingByTagPrefix) {
  FifoScheduler sched;
  Simulator sim(2, sched);
  sim.attach(0, std::make_unique<Recorder>());
  sim.attach(1, std::make_unique<Recorder>());
  sim.start();
  for (int i = 0; i < 3; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    m.tag = "abba/inst/" + std::to_string(i);
    m.payload = Bytes(10);
    sim.submit(std::move(m));
  }
  Message other;
  other.from = 1;
  other.to = 0;
  other.tag = "rbc/y";
  sim.submit(std::move(other));
  ASSERT_TRUE(sim.traffic().contains("abba"));
  EXPECT_EQ(sim.traffic().at("abba").messages, 3u);
  EXPECT_EQ(sim.traffic().at("rbc").messages, 1u);
}

TEST(SchedulerTest, FifoPreservesSubmissionOrder) {
  FifoScheduler sched;
  Simulator sim(2, sched);
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  sim.attach(0, std::make_unique<Recorder>());
  sim.attach(1, std::move(recorder));
  sim.start();
  for (int i = 0; i < 5; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    m.tag = "t/" + std::to_string(i);
    sim.submit(std::move(m));
  }
  sim.run(100);
  ASSERT_EQ(rec->received.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(rec->received[static_cast<std::size_t>(i)].tag,
                                        "t/" + std::to_string(i));
}

TEST(SchedulerTest, RandomIsFairInTheLimit) {
  RandomScheduler sched(42);
  Simulator sim(2, sched);
  auto recorder = std::make_unique<Recorder>();
  Recorder* rec = recorder.get();
  sim.attach(0, std::make_unique<Recorder>());
  sim.attach(1, std::move(recorder));
  sim.start();
  for (int i = 0; i < 50; ++i) {
    Message m;
    m.from = 0;
    m.to = 1;
    m.tag = "t/x";
    sim.submit(std::move(m));
  }
  sim.run(1000);
  EXPECT_EQ(rec->received.size(), 50u);  // everything eventually delivered
}

TEST(SchedulerTest, StarveDelaysVictimUntilNothingElse) {
  StarvePartyScheduler sched(1, /*victim=*/1);
  Simulator sim(3, sched);
  auto recorder1 = std::make_unique<Recorder>();
  Recorder* rec1 = recorder1.get();
  auto recorder2 = std::make_unique<Recorder>();
  Recorder* rec2 = recorder2.get();
  sim.attach(0, std::make_unique<Recorder>());
  sim.attach(1, std::move(recorder1));
  sim.attach(2, std::move(recorder2));
  sim.start();
  // One message to the victim, one to party 2.
  Message to_victim;
  to_victim.from = 0;
  to_victim.to = 1;
  to_victim.tag = "a";
  sim.submit(std::move(to_victim));
  Message to_other;
  to_other.from = 0;
  to_other.to = 2;
  to_other.tag = "b";
  sim.submit(std::move(to_other));
  // First step must deliver the non-victim message.
  sim.step();
  EXPECT_EQ(rec2->received.size(), 1u);
  EXPECT_EQ(rec1->received.size(), 0u);
  // But the victim message is delivered once it is the only one left.
  sim.step();
  EXPECT_EQ(rec1->received.size(), 1u);
}

TEST(SchedulerTest, StarveSetPrefersNonVictims) {
  StarveSetScheduler sched(1, /*victims=*/0b110, /*n=*/4);  // parties 1 and 2
  Simulator sim(4, sched);
  std::array<Recorder*, 4> recs{};
  for (int i = 0; i < 4; ++i) {
    auto r = std::make_unique<Recorder>();
    recs[static_cast<std::size_t>(i)] = r.get();
    sim.attach(i, std::move(r));
  }
  sim.start();
  for (int to : {1, 2, 3}) {
    Message m;
    m.from = 0;
    m.to = to;
    m.tag = "x";
    sim.submit(std::move(m));
  }
  sim.step();
  EXPECT_EQ(recs[3]->received.size(), 1u);  // non-victim served first
}

// ---- Party routing ---------------------------------------------------------

adversary::Deployment test_deployment() {
  Rng rng(77);
  return adversary::Deployment::threshold(4, 1, rng);
}

TEST(PartyTest, RoutesToRegisteredHandler) {
  FifoScheduler sched;
  Simulator sim(4, sched);
  auto deployment = test_deployment();
  auto party = std::make_unique<Party>(sim, 0, deployment, 1);
  Party* p = party.get();
  int calls = 0;
  p->register_handler("proto/a", [&](int from, Reader& r) {
    EXPECT_EQ(from, 1);
    EXPECT_EQ(r.u32(), 42u);
    ++calls;
  });
  sim.attach(0, std::move(party));
  for (int i = 1; i < 4; ++i) sim.attach(i, std::make_unique<Recorder>());
  sim.start();
  Writer w;
  w.u32(42);
  Message m;
  m.from = 1;
  m.to = 0;
  m.tag = "proto/a";
  m.payload = w.take();
  sim.submit(std::move(m));
  sim.run(10);
  EXPECT_EQ(calls, 1);
}

TEST(PartyTest, BuffersUnknownTagsUntilRegistration) {
  FifoScheduler sched;
  Simulator sim(4, sched);
  auto deployment = test_deployment();
  auto party = std::make_unique<Party>(sim, 0, deployment, 1);
  Party* p = party.get();
  sim.attach(0, std::move(party));
  for (int i = 1; i < 4; ++i) sim.attach(i, std::make_unique<Recorder>());
  sim.start();
  Message m;
  m.from = 2;
  m.to = 0;
  m.tag = "late/tag";
  m.payload = bytes_of("x");
  sim.submit(std::move(m));
  sim.run(10);
  int calls = 0;
  p->register_handler("late/tag", [&](int, Reader&) { ++calls; });
  EXPECT_EQ(calls, 1);  // replayed on registration
}

TEST(PartyTest, SelfSendBypassesNetwork) {
  FifoScheduler sched;
  Simulator sim(4, sched);
  auto deployment = test_deployment();
  auto party = std::make_unique<Party>(sim, 0, deployment, 1);
  Party* p = party.get();
  int calls = 0;
  p->register_handler("self/x", [&](int from, Reader&) {
    EXPECT_EQ(from, 0);
    ++calls;
  });
  sim.attach(0, std::move(party));
  for (int i = 1; i < 4; ++i) sim.attach(i, std::make_unique<Recorder>());
  sim.start();
  p->send(0, "self/x", Bytes{});
  EXPECT_EQ(calls, 1);               // delivered synchronously
  EXPECT_EQ(sim.pending_count(), 0u);  // never hit the network
}

TEST(PartyTest, HandlerExceptionsDropMessageOnly) {
  FifoScheduler sched;
  Simulator sim(4, sched);
  auto deployment = test_deployment();
  auto party = std::make_unique<Party>(sim, 0, deployment, 1);
  Party* p = party.get();
  int good = 0;
  p->register_handler("bad", [&](int, Reader&) { throw ProtocolError("malformed"); });
  p->register_handler("good", [&](int, Reader&) { ++good; });
  sim.attach(0, std::move(party));
  for (int i = 1; i < 4; ++i) sim.attach(i, std::make_unique<Recorder>());
  sim.start();
  Message bad;
  bad.from = 1;
  bad.to = 0;
  bad.tag = "bad";
  sim.submit(std::move(bad));
  Message good_msg;
  good_msg.from = 1;
  good_msg.to = 0;
  good_msg.tag = "good";
  sim.submit(std::move(good_msg));
  sim.run(10);
  EXPECT_EQ(good, 1);  // the throwing handler did not take the party down
}

TEST(PartyTest, DuplicateHandlerRejected) {
  FifoScheduler sched;
  Simulator sim(4, sched);
  auto deployment = test_deployment();
  Party party(sim, 0, deployment, 1);
  party.register_handler("dup", [](int, Reader&) {});
  EXPECT_THROW(party.register_handler("dup", [](int, Reader&) {}), LogicError);
}

TEST(SpamProcessTest, SpamIsBoundedAndHarmless) {
  RandomScheduler sched(3);
  Simulator sim(2, sched);
  sim.attach(0, std::make_unique<SpamProcess>(sim, 0, 9, std::vector<std::string>{"junk/t"}));
  sim.attach(1, std::make_unique<Recorder>());
  sim.start();
  // Spammer feeds on its own deliveries; must terminate due to its cap.
  std::uint64_t steps = sim.run(100000);
  EXPECT_LT(steps, 100000u);
}

}  // namespace
}  // namespace sintra::net
