// NetworkedNode tests: the full protocol stack (Party + AtomicBroadcast,
// unchanged) running over the loopback transport instead of the simulator
// — fault-free and under the chaos fault profile — plus the adapter's own
// robustness properties: bounded inbox with drop-oldest, malformed
// payload rejection, and payload wire-format round trips.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "adversary/examples.hpp"
#include "net/transport/loopback.hpp"
#include "net/transport/networked_node.hpp"
#include "protocols/atomic.hpp"
#include "protocols/harness.hpp"

namespace sintra::net::transport {
namespace {

using protocols::AtomicBroadcast;
using protocols::HostedParty;

struct AbcState {
  std::unique_ptr<AtomicBroadcast> abc;
  std::vector<std::pair<int, Bytes>> delivered;
};

/// n protocol stacks, each on its own NetworkedNode, wired through one
/// LoopbackHub — the single-threaded deterministic version of the real
/// TCP deployment.
struct NetCluster {
  LoopbackHub hub;
  std::vector<std::unique_ptr<NetworkedNode>> nodes;
  std::vector<std::unique_ptr<HostedParty<AbcState>>> hosts;

  NetCluster(int n, std::uint64_t seed, LoopbackHub::FaultProfile profile)
      : hub(n, seed, profile, LinkConfig{}) {
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(n, (n - 1) / 3, rng);
    for (int id = 0; id < n; ++id) {
      NetworkedNode::Config config;
      config.node_id = id;
      config.n = n;
      auto node = std::make_unique<NetworkedNode>(config);
      auto host = std::make_unique<HostedParty<AbcState>>(
          *node, id, deployment, seed * 7919 + static_cast<std::uint64_t>(id),
          [](net::Party& party) {
            auto state = std::make_unique<AbcState>();
            state->abc = std::make_unique<AtomicBroadcast>(
                party, "abc", [s = state.get()](int origin, Bytes payload) {
                  s->delivered.emplace_back(origin, std::move(payload));
                });
            return state;
          });
      node->attach(*host);
      node->bind_transport(
          [this, id](int peer, Bytes payload) { hub.send(id, peer, std::move(payload)); });
      hub.set_receiver(id, [raw = node.get()](int from, BytesView payload) {
        raw->on_transport_receive(from, payload);
      });
      nodes.push_back(std::move(node));
      hosts.push_back(std::move(host));
    }
  }

  AbcState& state(int id) { return hosts[static_cast<std::size_t>(id)]->protocol(); }

  /// Single-threaded pump: drain every node's inbox, move one wire frame,
  /// repeat.  When everything stalls, tick() the hub (retransmit + acks)
  /// — under faults that is what restarts progress.
  bool run_until(const std::function<bool()>& done, std::size_t max_iters = 2'000'000) {
    bool ticked = false;
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
      if (done()) return true;
      bool progressed = false;
      for (auto& node : nodes) progressed = (node->poll() > 0) || progressed;
      progressed = hub.step() || progressed;
      if (progressed) {
        ticked = false;
        continue;
      }
      if (ticked) return done();  // two stalls in a row: truly quiescent
      hub.tick();
      ticked = true;
    }
    return done();
  }

  void expect_identical_order() {
    const auto& reference = state(0).delivered;
    for (std::size_t id = 1; id < hosts.size(); ++id) {
      EXPECT_EQ(state(static_cast<int>(id)).delivered, reference) << "total order violated";
    }
  }
};

TEST(NetworkedNodeTest, AtomicBroadcastOverLoopback) {
  NetCluster cluster(4, /*seed=*/11, LoopbackHub::FaultProfile{});
  for (int id = 0; id < 4; ++id) {
    cluster.state(id).abc->submit(bytes_of("m" + std::to_string(id)));
  }
  ASSERT_TRUE(cluster.run_until([&] {
    for (int id = 0; id < 4; ++id) {
      if (cluster.state(id).delivered.size() < 4) return false;
    }
    return true;
  }));
  cluster.expect_identical_order();
  for (int id = 0; id < 4; ++id) {
    EXPECT_EQ(cluster.nodes[static_cast<std::size_t>(id)]->stats().malformed, 0u);
  }
}

TEST(NetworkedNodeTest, AtomicBroadcastUnderChaosProfile) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    NetCluster cluster(4, seed, LoopbackHub::FaultProfile::chaos());
    for (int id = 0; id < 4; ++id) {
      cluster.state(id).abc->submit(bytes_of("m" + std::to_string(id)));
    }
    ASSERT_TRUE(cluster.run_until([&] {
      for (int id = 0; id < 4; ++id) {
        if (cluster.state(id).delivered.size() < 4) return false;
      }
      return true;
    })) << "seed " << seed;
    cluster.expect_identical_order();
  }
}

/// Minimal process that records what reaches it.
struct RecordingProcess final : net::Process {
  std::vector<Bytes> seen;
  void on_message(const net::Message& message) override { seen.push_back(message.payload); }
};

TEST(NetworkedNodeTest, InboxQuotaDropsOldest) {
  NetworkedNode::Config config;
  config.node_id = 0;
  config.n = 2;
  config.max_inbox = 4;
  NetworkedNode node(config);
  RecordingProcess process;
  node.attach(process);
  for (int i = 0; i < 10; ++i) {
    net::Message m;
    m.from = 1;
    m.to = 0;
    m.tag = "t";
    m.payload = bytes_of("p" + std::to_string(i));
    const Bytes wire = NetworkedNode::encode_payload(m);
    node.on_transport_receive(1, wire);
  }
  node.poll();
  // Drop-oldest: the newest 4 survive the quota.
  ASSERT_EQ(process.seen.size(), 4u);
  EXPECT_EQ(process.seen.front(), bytes_of("p6"));
  EXPECT_EQ(process.seen.back(), bytes_of("p9"));
  EXPECT_EQ(node.stats().dropped_inbox, 6u);
  EXPECT_EQ(node.stats().dispatched, 4u);
}

TEST(NetworkedNodeTest, MalformedPayloadCountedAndDropped) {
  NetworkedNode::Config config;
  config.node_id = 0;
  config.n = 2;
  NetworkedNode node(config);
  RecordingProcess process;
  node.attach(process);
  const Bytes junk = bytes_of("not a message");
  node.on_transport_receive(1, junk);
  node.on_transport_receive(1, BytesView{});
  node.poll();
  EXPECT_TRUE(process.seen.empty());
  EXPECT_EQ(node.stats().malformed, 2u);
  EXPECT_EQ(node.stats().dispatched, 0u);
}

TEST(NetworkedNodeTest, PayloadWireFormatRoundTrips) {
  net::Message m;
  m.from = 3;
  m.to = 1;
  m.tag = "abc/vote";
  m.payload = bytes_of("ballot");
  const Bytes wire = NetworkedNode::encode_payload(m);
  const net::Message back = NetworkedNode::decode_payload(3, 1, wire);
  EXPECT_EQ(back.from, 3);
  EXPECT_EQ(back.to, 1);
  EXPECT_EQ(back.tag, "abc/vote");
  EXPECT_EQ(back.payload, bytes_of("ballot"));
  EXPECT_THROW(NetworkedNode::decode_payload(3, 1, bytes_of("junk")), ProtocolError);
}

TEST(NetworkedNodeTest, SelfSubmitLoopsThroughInbox) {
  NetworkedNode::Config config;
  config.node_id = 0;
  config.n = 2;
  NetworkedNode node(config);
  RecordingProcess process;
  node.attach(process);
  net::Message m;
  m.from = 0;
  m.to = 0;
  m.tag = "self";
  m.payload = bytes_of("loop");
  node.submit(m);
  EXPECT_TRUE(process.seen.empty());  // asynchronous, like the simulator
  node.poll();
  ASSERT_EQ(process.seen.size(), 1u);
  EXPECT_EQ(process.seen[0], bytes_of("loop"));
  EXPECT_EQ(node.stats().self_messages, 1u);
}

TEST(NetworkedNodeTest, TimersFireThroughPoll) {
  NetworkedNode::Config config;
  config.node_id = 0;
  config.n = 2;
  NetworkedNode node(config);
  RecordingProcess process;
  node.attach(process);
  int fired = 0;
  node.schedule_timer(0, 1, [&] { ++fired; });
  const auto cancelled = node.schedule_timer(0, 1, [&] { ++fired; });
  node.cancel_timer(cancelled);
  EXPECT_TRUE(node.run_until([&] { return fired >= 1; }, /*timeout_ms=*/2000));
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace sintra::net::transport
