// End-to-end smoke tests at PRODUCTION parameter sizes (768-bit Schnorr
// group, 512-bit RSA modulus): the larger hard-coded parameter sets are
// validated and the whole pipeline runs on them.  Kept to a handful of
// cases because each signature costs ~10x the test-parameter cost.
#include <gtest/gtest.h>

#include "crypto/group_schnorr.hpp"
#include "protocols/atomic.hpp"
#include "protocols/harness.hpp"

namespace sintra {
namespace {

TEST(ProductionParamsTest, GroupAndRsaParametersValid) {
  Rng rng(1);
  auto group = crypto::SchnorrGroup::production();
  EXPECT_GE(group->p().bit_length(), 767u);
  EXPECT_GE(group->q().bit_length(), 255u);
  EXPECT_TRUE(group->p().is_probable_prime(rng, 16));
  EXPECT_TRUE(group->q().is_probable_prime(rng, 16));

  auto big = crypto::SchnorrGroup::big();
  EXPECT_GE(big->p().bit_length(), 1535u);
  EXPECT_TRUE(big->p().is_probable_prime(rng, 8));

  // The curve backend's scalar field: secp256k1's group order n is prime.
  auto curve = crypto::Group::curve_group();
  EXPECT_EQ(curve->q().bit_length(), 256u);
  EXPECT_TRUE(curve->q().is_probable_prime(rng, 16));

  auto rsa = crypto::RsaParams::precomputed(256);
  EXPECT_TRUE(rsa.p.is_probable_prime(rng, 16));
  EXPECT_TRUE(((rsa.p - crypto::BigInt(1)).shifted_right(1)).is_probable_prime(rng, 16));
}

TEST(ProductionParamsTest, CryptoPipelineAtProductionSizes) {
  Rng rng(2);
  auto config = adversary::CryptoConfig::production();
  auto deployment = adversary::Deployment::threshold(4, 1, rng, config);
  const auto& pk = deployment.keys->public_keys();

  // Coin.
  Bytes name = bytes_of("prod-coin");
  std::vector<crypto::CoinShare> coin_shares;
  for (int p = 0; p < 2; ++p) {
    for (auto& s : deployment.keys->share(p).coin.share(pk.coin, name, rng)) {
      EXPECT_TRUE(pk.coin.verify_share(name, s));
      coin_shares.push_back(s);
    }
  }
  EXPECT_TRUE(pk.coin.combine(name, coin_shares).has_value());

  // Threshold signature (512-bit modulus).
  Bytes message = bytes_of("prod message");
  std::vector<crypto::SigShare> sig_shares;
  for (int p = 0; p < 2; ++p) {
    for (auto& s : deployment.keys->share(p).reply_sig.sign(pk.reply_sig, message, rng)) {
      EXPECT_TRUE(pk.reply_sig.verify_share(message, s));
      sig_shares.push_back(s);
    }
  }
  auto sig = pk.reply_sig.combine(message, sig_shares);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(pk.reply_sig.verify(message, *sig));

  // TDH2.
  auto ct = pk.encryption.encrypt(bytes_of("prod secret"), bytes_of("l"), rng);
  std::vector<crypto::Tdh2DecShare> dec_shares;
  for (int p = 2; p < 4; ++p) {
    for (auto& s : deployment.keys->share(p).decryption.decrypt_shares(pk.encryption, ct,
                                                                       rng)) {
      dec_shares.push_back(s);
    }
  }
  auto plaintext = pk.encryption.combine(ct, dec_shares);
  ASSERT_TRUE(plaintext.has_value());
  EXPECT_EQ(*plaintext, bytes_of("prod secret"));
}

struct AbcState {
  std::unique_ptr<protocols::AtomicBroadcast> abc;
  std::vector<Bytes> log;
};

TEST(ProductionParamsTest, AtomicBroadcastAtProductionSizes) {
  Rng rng(3);
  auto deployment =
      adversary::Deployment::threshold(4, 1, rng, adversary::CryptoConfig::production());
  net::RandomScheduler sched(3);
  protocols::Cluster<AbcState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<AbcState>();
        s->abc = std::make_unique<protocols::AtomicBroadcast>(
            party, "abc",
            [p = s.get()](int, Bytes payload) { p->log.push_back(std::move(payload)); });
        return s;
      },
      crypto::party_bit(3));
  cluster.start();
  cluster.protocol(0)->abc->submit(bytes_of("production run"));
  ASSERT_TRUE(cluster.run_until_all([](AbcState& s) { return s.log.size() >= 1; }, 2000000));
  cluster.for_each(
      [](int, AbcState& s) { EXPECT_EQ(s.log[0], bytes_of("production run")); });
}

}  // namespace
}  // namespace sintra
