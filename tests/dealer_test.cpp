// Dealer tests: the one-shot trusted setup of §2 — key-material
// consistency across all four subsystems, pairwise channel-key symmetry,
// access-structure wiring, and the weighted-threshold construction.
#include <gtest/gtest.h>

#include "adversary/examples.hpp"
#include "adversary/lsss.hpp"
#include "crypto/dealer.hpp"
#include "crypto/shamir.hpp"

namespace sintra::crypto {
namespace {

TEST(DealerTest, BundleShapesConsistent) {
  Rng rng(1);
  KeyBundle bundle = KeyBundle::deal_threshold(4, 1, rng);
  EXPECT_EQ(bundle.num_parties(), 4);
  const auto& pk = bundle.public_keys();
  EXPECT_EQ(pk.coin.scheme().num_parties(), 4);
  EXPECT_EQ(pk.cert_sig.scheme().num_parties(), 4);
  EXPECT_EQ(pk.reply_sig.scheme().num_parties(), 4);
  EXPECT_EQ(pk.encryption.scheme().num_parties(), 4);
  // Low schemes qualify at t+1 = 2; the high (certificate) scheme at n-t = 3.
  EXPECT_TRUE(pk.coin.scheme().qualified(full_set(2)));
  EXPECT_FALSE(pk.cert_sig.scheme().qualified(full_set(2)));
  EXPECT_TRUE(pk.cert_sig.scheme().qualified(full_set(3)));
}

TEST(DealerTest, ChannelKeysSymmetricAndDistinct) {
  Rng rng(2);
  KeyBundle bundle = KeyBundle::deal_threshold(5, 1, rng);
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(bundle.share(i).channel_keys.size(), 5u);
    for (int j = 0; j < 5; ++j) {
      if (i == j) continue;
      EXPECT_EQ(bundle.share(i).channel_keys[static_cast<std::size_t>(j)],
                bundle.share(j).channel_keys[static_cast<std::size_t>(i)])
          << i << "," << j;
      EXPECT_EQ(bundle.share(i).channel_keys[static_cast<std::size_t>(j)].size(), 32u);
    }
  }
  // Distinct pairs get distinct keys.
  EXPECT_NE(bundle.share(0).channel_keys[1], bundle.share(0).channel_keys[2]);
}

TEST(DealerTest, SecretSharesMatchPublicVerification) {
  Rng rng(3);
  KeyBundle bundle = KeyBundle::deal_threshold(4, 1, rng);
  const auto& coin_pk = bundle.public_keys().coin;
  const auto& group = coin_pk.group();
  for (int party = 0; party < 4; ++party) {
    for (const auto& [unit, x] : bundle.share(party).coin.unit_shares()) {
      EXPECT_EQ(group.exp_g(x), coin_pk.verification(unit));
      EXPECT_EQ(coin_pk.scheme().unit_owner(unit), party);
    }
  }
}

TEST(DealerTest, IndependentDealsProduceIndependentKeys) {
  Rng rng_a(4);
  Rng rng_b(5);
  KeyBundle a = KeyBundle::deal_threshold(4, 1, rng_a);
  KeyBundle b = KeyBundle::deal_threshold(4, 1, rng_b);
  EXPECT_NE(a.public_keys().encryption.h(), b.public_keys().encryption.h());
  EXPECT_NE(a.public_keys().coin.verification(0), b.public_keys().coin.verification(0));
  // Shares from deployment A are useless under deployment B's keys.
  Bytes name = bytes_of("cross-deployment");
  auto shares = a.share(0).coin.share(a.public_keys().coin, name, rng_a);
  EXPECT_FALSE(b.public_keys().coin.verify_share(name, shares[0]));
}

TEST(DealerTest, RejectsMismatchedPartyCounts) {
  Rng rng(6);
  auto low = std::make_shared<const ThresholdScheme>(4, 1);
  auto high = std::make_shared<const ThresholdScheme>(5, 2);
  EXPECT_THROW(KeyBundle::deal(Group::test_group(), low, high, RsaParams::precomputed(128),
                               rng),
               ProtocolError);
}

TEST(DealerTest, ResilienceBoundEnforced) {
  Rng rng(7);
  EXPECT_THROW(KeyBundle::deal_threshold(3, 1, rng), ProtocolError);
  EXPECT_NO_THROW(KeyBundle::deal_threshold(4, 1, rng));
}

TEST(WeightedThresholdTest, QualificationByWeight) {
  // Party weights {3, 2, 1, 1}, threshold 4: {0,1} qualifies (5 >= 4),
  // {1,2,3} qualifies (4), {0,3} qualifies (4), {1,2} does not (3).
  using adversary::Formula;
  Formula f = Formula::weighted_threshold({3, 2, 1, 1}, 4);
  EXPECT_TRUE(f.eval(crypto::set_of({0, 1})));
  EXPECT_TRUE(f.eval(crypto::set_of({1, 2, 3})));
  EXPECT_TRUE(f.eval(crypto::set_of({0, 3})));
  EXPECT_FALSE(f.eval(crypto::set_of({1, 2})));
  EXPECT_FALSE(f.eval(crypto::set_of({0})));
}

TEST(WeightedThresholdTest, LsssSharesByWeight) {
  // The heavy party holds more units; reconstruction respects weights.
  using adversary::Formula;
  using adversary::LsssScheme;
  Rng rng(8);
  LsssScheme scheme(Formula::weighted_threshold({3, 2, 1, 1}, 4), 4);
  EXPECT_EQ(scheme.num_units(), 7);
  EXPECT_EQ(scheme.units_of(0).size(), 3u);
  EXPECT_EQ(scheme.units_of(1).size(), 2u);
  BigInt q = Group::test_group()->q();
  BigInt secret = BigInt::random_below(rng, q);
  auto units = scheme.deal(secret, q, rng);
  std::map<int, BigInt> available;
  for (int u : scheme.units_of(0)) available[u] = units[static_cast<std::size_t>(u)];
  for (int u : scheme.units_of(1)) available[u] = units[static_cast<std::size_t>(u)];
  EXPECT_EQ(scheme.reconstruct(available, q), secret);
  EXPECT_THROW(scheme.coefficients(crypto::set_of({1, 2})), ProtocolError);
}

TEST(WeightedThresholdTest, CoinOverWeightedScheme) {
  // Full primitive over a weighted structure: the weight-3 party plus the
  // weight-1 party combine (4 >= 4); two weight-1 parties cannot.
  using adversary::Formula;
  using adversary::LsssScheme;
  Rng rng(9);
  auto scheme =
      std::make_shared<LsssScheme>(Formula::weighted_threshold({3, 2, 1, 1}, 4), 4);
  auto deal = CoinDeal::deal(Group::test_group(), scheme, rng);
  Bytes name = bytes_of("weighted-coin");
  auto collect = [&](std::initializer_list<int> parties) {
    std::vector<CoinShare> out;
    for (int p : parties) {
      for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].share(deal.public_key,
                                                                         name, rng)) {
        out.push_back(s);
      }
    }
    return out;
  };
  EXPECT_TRUE(deal.public_key.combine(name, collect({0, 3})).has_value());
  EXPECT_FALSE(deal.public_key.combine(name, collect({2, 3})).has_value());
}

TEST(DealerTest, GeneralizedBundleOverExample1) {
  Rng rng(10);
  auto deployment = adversary::example1_deployment(rng);
  // Class-a parties hold several low-scheme units (they appear in several
  // formula leaves); unit ownership must be consistent everywhere.
  const auto& pk = deployment.keys->public_keys();
  for (int party = 0; party < 9; ++party) {
    for (const auto& [unit, x] : deployment.keys->share(party).coin.unit_shares()) {
      EXPECT_EQ(pk.coin.scheme().unit_owner(unit), party);
      EXPECT_EQ(pk.coin.group().exp_g(x), pk.coin.verification(unit));
    }
  }
}

}  // namespace
}  // namespace sintra::crypto
