// Online membership reconfiguration (issue 9).
//
// Layers under test, bottom-up:
//   - crypto/reshare: DL and RSA verifiable share redistribution preserve
//     the shared secret across (n, t) -> (n', t') committee changes while
//     old shares stop combining with new ones;
//   - protocols/reconfig: the epoch protocol — swap / grow / shrink
//     committees over the embedded atomic broadcast, Byzantine dealers
//     fingered, too-few dealings aborting cleanly with the old committee
//     intact, joiners verifying a JoinPackage, and pre-epoch coin values,
//     TDH2 ciphertexts and checkpoint certificates surviving the epoch;
//   - chaos: the same epoch under message chaos, a mid-epoch crash restart
//     (WAL replay), and an active LoopbackHub partition schedule;
//   - epoch plumbing: frame-level epoch stamping (framing v3, TcpTransport
//     HELLO window), NetworkedNode payload gating and future-epoch
//     buffering, Party epoch-log snapshots, and a mid-epoch WAL snapshot
//     restoring bit-exactly under ExecutorPool(4);
//   - app/client: ServiceClient follows a signed NEW-CONFIG announcement
//     and rejects stale or tampered ones;
//   - protocols/refresh: the documented gap — an applied-but-invalid
//     sub-share is DETECTED (share_valid == false) instead of surfacing as
//     a bad signature share later.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "adversary/quorum.hpp"
#include "app/client.hpp"
#include "common/executor.hpp"
#include "common/rng.hpp"
#include "crypto/reshare.hpp"
#include "crypto/shamir.hpp"
#include "crypto/sha256.hpp"
#include "net/fault.hpp"
#include "net/transport/framing.hpp"
#include "net/transport/loopback.hpp"
#include "net/transport/networked_node.hpp"
#include "net/transport/tcp_transport.hpp"
#include "protocols/harness.hpp"
#include "protocols/reconfig.hpp"
#include "protocols/refresh.hpp"

namespace sintra {
namespace {

using adversary::Deployment;
using common::ExecutorPool;
using crypto::BigInt;
using crypto::CheckpointCert;
using crypto::PartySet;
using crypto::contains;
using crypto::party_bit;
using net::PartitionProfile;
using net::transport::LoopbackHub;
using net::transport::NetworkedNode;
using protocols::AtomicBroadcast;
using protocols::ChaosCluster;
using protocols::Cluster;
using protocols::HostedParty;
using protocols::JoinListener;
using protocols::JoinPackage;
using protocols::NewConfig;
using protocols::Reconfig;
using protocols::ReconfigOptions;
using protocols::ReconfigPlan;
using protocols::ReconfigResult;
using protocols::ShareRefresh;
using protocols::reconfig_channel_key;
using protocols::reconfig_deployment;
using protocols::reconfig_public_deployment;

constexpr const char* kTag = "reconfig";

/// Out-of-band provisioned pairwise secret between old member `dealer` and
/// the joiner filling new slot `slot` in epoch `epoch`.  Both sides of a
/// test derive it from the same inputs, standing in for the operator
/// channel that provisions real deployments.
Bytes join_key(std::uint32_t epoch, int dealer, int slot) {
  Writer w;
  w.u32(epoch);
  w.u32(static_cast<std::uint32_t>(dealer));
  w.u32(static_cast<std::uint32_t>(slot));
  return crypto::hash_expand("test/reconfig/join-key", w.data(), 32);
}

ReconfigPlan make_plan(std::uint32_t epoch, int n_old, int t_old, int t_new,
                       std::vector<std::int32_t> old_slot) {
  ReconfigPlan plan;
  plan.new_epoch = epoch;
  plan.n_old = n_old;
  plan.t_old = t_old;
  plan.n_new = static_cast<std::int32_t>(old_slot.size());
  plan.t_new = t_new;
  plan.old_slot = std::move(old_slot);
  return plan;
}

/// (4,1) -> (4,1): old slot 3 retires, a blank joiner fills new slot 3.
ReconfigPlan swap_plan() { return make_plan(1, 4, 1, 1, {0, 1, 2, -1}); }
/// (4,1) -> (5,1): everyone survives, a joiner fills new slot 4.
ReconfigPlan grow_plan() { return make_plan(1, 4, 1, 1, {0, 1, 2, 3, -1}); }

struct ReconfigState {
  std::unique_ptr<Reconfig> reconfig;
  std::optional<ReconfigResult> result;
};

ReconfigOptions options_for(const ReconfigPlan& plan, int id, PartySet garbage) {
  ReconfigOptions options;
  for (int slot = 0; slot < plan.n_new; ++slot) {
    if (plan.joining(slot)) options.join_keys[slot] = join_key(plan.new_epoch, id, slot);
  }
  options.deal_garbage = contains(garbage, id);
  return options;
}

/// One reconfiguration epoch over the simulator: an old committee dealt by
/// `deployment` (or a fresh threshold one) runs Reconfig for `plan`.
struct EpochHarness {
  EpochHarness(Deployment dep, ReconfigPlan p, std::uint64_t seed, PartySet garbage = 0,
               std::optional<CheckpointCert> fence = std::nullopt)
      : deployment(std::move(dep)), plan(std::move(p)), fence_(std::move(fence)),
        sched(seed * 3 + 1),
        cluster(
            deployment, sched,
            [this, garbage](net::Party& party, int id) {
              auto state = std::make_unique<ReconfigState>();
              state->reconfig = std::make_unique<Reconfig>(
                  party, kTag, plan, fence_, options_for(plan, id, garbage),
                  [s = state.get()](const ReconfigResult& r) { s->result = r; });
              return state;
            },
            0, 0, seed) {}

  static EpochHarness fresh(ReconfigPlan plan, std::uint64_t seed, PartySet garbage = 0) {
    Rng rng(seed);
    auto deployment = Deployment::threshold(plan.n_old, plan.t_old, rng);
    return EpochHarness(std::move(deployment), std::move(plan), seed, garbage);
  }

  bool run() {
    cluster.start();
    cluster.for_each([](int, ReconfigState& s) { s.reconfig->start(); });
    return cluster.run_until_all([](ReconfigState& s) { return s.result.has_value(); },
                                 60000000);
  }

  const ReconfigResult& result(int id) { return *cluster.protocol(id)->result; }

  /// Run a JoinListener for `joiner_slot` against `provider`'s package.
  ReconfigResult join(int joiner_slot, int provider) {
    std::map<int, Bytes> keys;
    for (int dealer = 0; dealer < plan.n_old; ++dealer) {
      keys[dealer] = join_key(plan.new_epoch, dealer, joiner_slot);
    }
    const auto& old_public = deployment.keys->public_keys();
    JoinListener listener(kTag, joiner_slot, std::move(keys), old_public.coin.group_ptr(),
                          old_public);
    EXPECT_TRUE(
        listener.offer(cluster.protocol(provider)->reconfig->join_package(joiner_slot)));
    EXPECT_TRUE(listener.ready());
    return *listener.result();
  }

  Deployment deployment;
  ReconfigPlan plan;
  std::optional<CheckpointCert> fence_;
  net::RandomScheduler sched;
  Cluster<ReconfigState> cluster;
};

/// Assemble the full new-committee Deployment (every slot's REAL share)
/// from the epoch results — what an operator rolling the whole fleet to
/// the new epoch holds collectively.  `results` is indexed by new slot;
/// joiner slots take the JoinListener-derived result.
Deployment assemble_committee(const Deployment& old, const ReconfigPlan& plan,
                              const std::vector<ReconfigResult>& results) {
  const auto base_key = [&](int a, int b) -> Bytes {
    const int oa = plan.old_slot.at(static_cast<std::size_t>(a));
    const int ob = plan.old_slot.at(static_cast<std::size_t>(b));
    if (oa >= 0 && ob >= 0) {
      return old.keys->share(oa).channel_keys.at(static_cast<std::size_t>(ob));
    }
    if (oa >= 0) return join_key(plan.new_epoch, oa, b);  // b is the joiner
    return join_key(plan.new_epoch, ob, a);               // a is the joiner
  };
  std::vector<crypto::PartyKeyShare> shares;
  for (int slot = 0; slot < plan.n_new; ++slot) {
    const auto& r = results.at(static_cast<std::size_t>(slot));
    std::vector<Bytes> channel_keys(static_cast<std::size_t>(plan.n_new));
    for (int peer = 0; peer < plan.n_new; ++peer) {
      if (peer == slot) continue;
      channel_keys[static_cast<std::size_t>(peer)] =
          reconfig_channel_key(plan.new_epoch, base_key(slot, peer));
    }
    shares.push_back(crypto::PartyKeyShare{
        crypto::CoinSecretKey(slot, {{slot, r.coin_share}}),
        crypto::ThresholdSigSecretKey(slot, {{slot, r.cert_share}}),
        crypto::ThresholdSigSecretKey(slot, {{slot, r.reply_share}}),
        crypto::Tdh2SecretKey(slot, {{slot, r.tdh2_share}}), std::move(channel_keys)});
  }
  const auto& old_public = old.keys->public_keys();
  Deployment reference =
      reconfig_deployment(results[0], old_public.coin.group_ptr(), old_public,
                          std::vector<Bytes>(static_cast<std::size_t>(plan.n_new)));
  Deployment committee;
  committee.quorum = reference.quorum;
  committee.keys = std::make_shared<const crypto::KeyBundle>(
      reference.keys->public_keys(), std::move(shares));
  return committee;
}

/// Results for every new slot: survivors from the cluster, joiners via a
/// JoinListener fed from survivor 0's package.
std::vector<ReconfigResult> all_results(EpochHarness& h) {
  std::vector<ReconfigResult> results(static_cast<std::size_t>(h.plan.n_new));
  int provider = -1;
  for (int old = 0; old < h.plan.n_old; ++old) {
    const auto& r = h.result(old);
    if (r.new_slot >= 0) {
      results[static_cast<std::size_t>(r.new_slot)] = r;
      if (provider < 0) provider = old;
    }
  }
  for (int slot = 0; slot < h.plan.n_new; ++slot) {
    if (h.plan.joining(slot)) results[static_cast<std::size_t>(slot)] = h.join(slot, provider);
  }
  return results;
}

// ---- crypto/reshare unit level --------------------------------------------

TEST(ReshareTest, DlRedistributionPreservesSecretAcrossGeometryChange) {
  auto group = crypto::Group::test_group();
  Rng rng(42);
  const BigInt secret = group->random_scalar(rng);
  crypto::ThresholdScheme old_scheme(4, 1);
  const auto old_shares = old_scheme.deal(secret, group->q(), rng);

  // Old slots 1 and 3 (any t+1) each deal a degree-2 resharing to 7 slots.
  const std::vector<int> dealers = {1, 3};
  std::vector<std::vector<crypto::Element>> commitments;
  std::vector<crypto::FeldmanDealing> dealings;
  for (int j : dealers) {
    auto dealing = crypto::dl_reshare_deal(
        *group, old_shares[static_cast<std::size_t>(j)], 7, 2, rng);
    // Binding: the constant-term commitment IS the dealer's old public
    // verification value.
    EXPECT_EQ(dealing.commitments[0],
              group->exp_g(old_shares[static_cast<std::size_t>(j)]));
    commitments.push_back(dealing.commitments);
    dealings.push_back(std::move(dealing));
  }

  std::map<int, BigInt> new_shares;
  for (int slot = 0; slot < 7; ++slot) {
    std::vector<BigInt> subshares;
    for (const auto& dealing : dealings) {
      subshares.push_back(dealing.shares[static_cast<std::size_t>(slot)]);
    }
    new_shares[slot] = crypto::dl_combine_subshares(*group, dealers, subshares);
  }

  // Any t'+1 = 3 new shares reconstruct the ORIGINAL secret.
  crypto::ThresholdScheme new_scheme(7, 2);
  std::map<int, BigInt> quorum{{0, new_shares[0]}, {3, new_shares[3]}, {6, new_shares[6]}};
  EXPECT_EQ(new_scheme.reconstruct(quorum, group->q()), secret);

  // New verification values follow from commitments alone and match.
  const auto verification = crypto::dl_new_verification(*group, dealers, commitments, 7);
  for (int slot = 0; slot < 7; ++slot) {
    EXPECT_EQ(verification[static_cast<std::size_t>(slot)], group->exp_g(new_shares[slot]));
  }

  // Mixing an OLD share into the new scheme interpolates garbage: the
  // retired share is useless in the new epoch.
  std::map<int, BigInt> mixed{{0, old_shares[0]}, {3, new_shares[3]}, {6, new_shares[6]}};
  EXPECT_NE(new_scheme.reconstruct(mixed, group->q()), secret);
}

TEST(ReshareTest, RsaRedistributedSharesStillSignUnderOldKey) {
  Rng rng(43);
  auto scheme = std::make_shared<const crypto::ThresholdScheme>(4, 1);
  auto deal = crypto::ThresholdSigDeal::deal(crypto::RsaParams::precomputed(128), scheme, rng);
  const auto& pk = deal.public_key;
  const BigInt delta_base = scheme->delta();

  // Dealers 0 and 2 reshare their integer shares to a (5, 1) committee.
  const std::vector<int> dealers = {0, 2};
  const std::size_t coeff_bits = crypto::rsa_reshare_coeff_bits(pk.modulus().bit_length());
  std::vector<std::vector<BigInt>> commitments;
  std::vector<crypto::RsaReshareDealing> dealings;
  for (int j : dealers) {
    const BigInt& share = deal.secret_keys[static_cast<std::size_t>(j)].unit_shares().at(j);
    auto dealing = crypto::RsaReshareDealing::deal(share, pk.verification(j), coeff_bits, 5, 1,
                                                   pk.v(), pk.mont(), rng);
    for (int slot = 0; slot < 5; ++slot) {
      EXPECT_TRUE(crypto::RsaReshareDealing::verify_subshare(
          dealing.commitments, slot, dealing.subshares[static_cast<std::size_t>(slot)],
          pk.v(), pk.mont()));
    }
    commitments.push_back(dealing.commitments);
    dealings.push_back(std::move(dealing));
  }

  std::vector<BigInt> new_shares;
  for (int slot = 0; slot < 5; ++slot) {
    std::vector<BigInt> subshares;
    for (const auto& dealing : dealings) {
      subshares.push_back(dealing.subshares[static_cast<std::size_t>(slot)]);
    }
    new_shares.push_back(crypto::rsa_combine_subshares(dealers, subshares, delta_base));
  }
  const auto verification =
      crypto::rsa_new_verification(dealers, commitments, 5, delta_base, pk.mont());

  // Rebuild the public key over the compounded-delta scheme and sign with
  // the NEW shares: the combined signature is a standard RSA signature
  // under the ORIGINAL key.
  auto new_base = std::make_shared<const crypto::ThresholdScheme>(5, 1);
  auto scaled = std::make_shared<const crypto::ScaledScheme>(new_base, scheme->delta());
  const std::size_t share_bits =
      crypto::rsa_reshare_share_bits(coeff_bits, 4, 1, 5, 1);
  crypto::ThresholdSigPublicKey new_pk(pk.modulus(), pk.exponent(), pk.v(), verification,
                                       scaled, share_bits);
  const Bytes message = bytes_of("post-epoch statement");
  std::vector<crypto::SigShare> shares;
  for (int slot : {1, 4}) {
    crypto::ThresholdSigSecretKey sk(slot, {{slot, new_shares[static_cast<std::size_t>(slot)]}});
    for (auto& share : sk.sign(new_pk, message, rng)) {
      EXPECT_TRUE(new_pk.verify_share(message, share));
      shares.push_back(share);
    }
  }
  auto signature = new_pk.combine(message, shares);
  ASSERT_TRUE(signature.has_value());
  EXPECT_TRUE(pk.verify(message, *signature));
}

// ---- protocols/reconfig over the simulator --------------------------------

TEST(ReconfigTest, SwapsOneReplicaOnline) {
  auto h = EpochHarness::fresh(swap_plan(), 5);
  ASSERT_TRUE(h.run());

  const auto& reference = h.result(0);
  ASSERT_TRUE(reference.completed);
  Writer ref_w;
  reference.config.encode(ref_w, h.deployment.keys->public_keys().coin.group());
  h.cluster.for_each([&](int id, ReconfigState& s) {
    ASSERT_TRUE(s.result->completed) << "member " << id;
    EXPECT_TRUE(s.result->share_valid);
    EXPECT_EQ(s.result->suspected, 0u);
    EXPECT_EQ(s.result->new_slot, id == 3 ? -1 : id);
    // Unique combined signatures make announcements bit-identical.
    Writer w;
    s.result->config.encode(w, h.deployment.keys->public_keys().coin.group());
    EXPECT_EQ(w.data(), ref_w.data());
  });

  // The announcement verifies under the OLD reply key — the key clients
  // already hold.
  const auto& old_public = h.deployment.keys->public_keys();
  EXPECT_TRUE(reference.config.verify(old_public.reply_sig, kTag, old_public.coin.group()));

  // The joiner bootstraps from any member's package and lands on a share
  // consistent with the announced verification values.
  const ReconfigResult joiner = h.join(3, 1);
  EXPECT_TRUE(joiner.completed);
  EXPECT_TRUE(joiner.share_valid);
  EXPECT_EQ(joiner.new_slot, 3);
  const auto& group = old_public.coin.group();
  EXPECT_EQ(group.exp_g(joiner.coin_share), reference.config.coin_verification[3]);

  // Secret preservation: old and new coin shares interpolate to the same
  // key, and the retiree's wiped share is useless in the new epoch.
  crypto::ThresholdScheme scheme(4, 1);
  std::map<int, BigInt> old_shares;
  std::map<int, BigInt> new_shares;
  for (int id : {0, 2}) {
    old_shares[id] = h.deployment.keys->share(id).coin.unit_shares().at(id);
    new_shares[id] = h.result(id).coin_share;
  }
  EXPECT_EQ(scheme.reconstruct(old_shares, group.q()),
            scheme.reconstruct(new_shares, group.q()));
  std::map<int, BigInt> with_retired{
      {1, h.result(1).coin_share},
      {3, h.deployment.keys->share(3).coin.unit_shares().at(3)}};  // retired old share
  std::map<int, BigInt> pure{{1, h.result(1).coin_share}, {3, joiner.coin_share}};
  EXPECT_NE(scheme.reconstruct(with_retired, group.q()),
            scheme.reconstruct(pure, group.q()));
}

TEST(ReconfigTest, PreEpochArtifactsSurviveGrowth) {
  auto h = EpochHarness::fresh(grow_plan(), 7);
  const auto& old_public = h.deployment.keys->public_keys();
  Rng rng(70);

  // Artifacts minted BEFORE the epoch.
  const Bytes coin_name = bytes_of("pre-epoch-coin");
  std::vector<crypto::CoinShare> old_coin_shares;
  for (int id : {0, 1}) {
    for (auto& share :
         h.deployment.keys->share(id).coin.share(old_public.coin, coin_name, rng)) {
      old_coin_shares.push_back(share);
    }
  }
  const auto pre_coin = old_public.coin.combine(coin_name, old_coin_shares);
  ASSERT_TRUE(pre_coin.has_value());
  const auto ciphertext =
      old_public.encryption.encrypt(bytes_of("sealed before the epoch"), bytes_of("label"), rng);

  ASSERT_TRUE(h.run());
  auto results = all_results(h);
  const auto& old_keys = old_public;
  Deployment committee = assemble_committee(h.deployment, h.plan, results);
  const auto& new_public = committee.keys->public_keys();

  // The coin is the SAME key: the pre-epoch name yields the identical
  // value under the redistributed shares (disjoint slots, including the
  // joiner's).
  std::vector<crypto::CoinShare> new_coin_shares;
  for (int slot : {2, 4}) {
    const auto& sk = committee.keys->share(slot).coin;
    for (auto& share : sk.share(new_public.coin, coin_name, rng)) {
      EXPECT_TRUE(new_public.coin.verify_share(coin_name, share));
      new_coin_shares.push_back(share);
    }
  }
  const auto post_coin = new_public.coin.combine(coin_name, new_coin_shares);
  ASSERT_TRUE(post_coin.has_value());
  EXPECT_EQ(*pre_coin, *post_coin);

  // A pre-epoch TDH2 ciphertext decrypts with post-epoch shares.
  std::vector<crypto::Tdh2DecShare> dec_shares;
  for (int slot : {1, 3}) {
    const auto& sk = committee.keys->share(slot).decryption;
    for (auto& share : sk.decrypt_shares(new_public.encryption, ciphertext, rng)) {
      EXPECT_TRUE(new_public.encryption.verify_share(ciphertext, share));
      dec_shares.push_back(share);
    }
  }
  const auto plaintext = new_public.encryption.combine(ciphertext, dec_shares);
  ASSERT_TRUE(plaintext.has_value());
  EXPECT_EQ(*plaintext, bytes_of("sealed before the epoch"));

  // Reply signatures from the new committee verify under the ORIGINAL
  // reply public key (combined RSA signatures are epoch-blind).
  const Bytes statement = bytes_of("receipt minted after the epoch");
  std::vector<crypto::SigShare> sig_shares;
  for (int slot : {0, 4}) {
    const auto& sk = committee.keys->share(slot).reply_sig;
    for (auto& share : sk.sign(new_public.reply_sig, statement, rng)) {
      EXPECT_TRUE(new_public.reply_sig.verify_share(statement, share));
      sig_shares.push_back(share);
    }
  }
  auto signature = new_public.reply_sig.combine(statement, sig_shares);
  ASSERT_TRUE(signature.has_value());
  EXPECT_TRUE(old_keys.reply_sig.verify(statement, *signature));
}

TEST(ReconfigTest, GrowsThresholdWithCommittee) {
  // (4,1) -> (7,2): a genuine threshold increase (the issue's t' growth;
  // n' = 7 is the smallest committee with t' = 2 under n > 3t).
  auto h = EpochHarness::fresh(make_plan(1, 4, 1, 2, {0, 1, 2, 3, -1, -1, -1}), 9);
  ASSERT_TRUE(h.run());
  auto results = all_results(h);
  const auto& group = h.deployment.keys->public_keys().coin.group();

  // t'+1 = 3 new shares reconstruct the original coin secret; t' = 2 do not
  // suffice for the (7,2) scheme's qualified test.
  crypto::ThresholdScheme old_scheme(4, 1);
  crypto::ThresholdScheme new_scheme(7, 2);
  std::map<int, BigInt> old_shares{
      {0, h.deployment.keys->share(0).coin.unit_shares().at(0)},
      {1, h.deployment.keys->share(1).coin.unit_shares().at(1)}};
  std::map<int, BigInt> new_shares{{1, results[1].coin_share},
                                   {4, results[4].coin_share},
                                   {6, results[6].coin_share}};
  EXPECT_EQ(old_scheme.reconstruct(old_shares, group.q()),
            new_scheme.reconstruct(new_shares, group.q()));
  EXPECT_FALSE(new_scheme.qualified(party_bit(1) | party_bit(4)));
  for (int slot = 0; slot < 7; ++slot) {
    EXPECT_EQ(group.exp_g(results[static_cast<std::size_t>(slot)].coin_share),
              results[0].config.coin_verification[static_cast<std::size_t>(slot)]);
  }
}

TEST(ReconfigTest, ByzantineDealerIsFingeredAndEpochCompletes) {
  auto h = EpochHarness::fresh(grow_plan(), 11, party_bit(2));
  ASSERT_TRUE(h.run());
  h.cluster.for_each([&](int id, ReconfigState& s) {
    ASSERT_TRUE(s.result->completed) << "member " << id;
    EXPECT_EQ(s.result->suspected, party_bit(2)) << "member " << id;
    EXPECT_EQ(s.result->dealings_applied, 3);
    EXPECT_TRUE(s.result->share_valid);
  });
  // The joiner's package excludes the garbage dealing and still verifies.
  const ReconfigResult joiner = h.join(4, 0);
  EXPECT_TRUE(joiner.completed);
  EXPECT_EQ(h.deployment.keys->public_keys().coin.group().exp_g(joiner.coin_share),
            h.result(0).config.coin_verification[4]);
}

TEST(ReconfigTest, AbortsCleanlyWhenTooFewDealingsApply) {
  // Two garbage dealers out of four leave only 2 < n-t = 3 applicable
  // dealings: every member aborts, fingers both, and the old committee
  // stays intact.
  auto h = EpochHarness::fresh(swap_plan(), 13, party_bit(1) | party_bit(2));
  ASSERT_TRUE(h.run());
  h.cluster.for_each([&](int id, ReconfigState& s) {
    EXPECT_FALSE(s.result->completed) << "member " << id;
    EXPECT_EQ(s.result->suspected, party_bit(1) | party_bit(2)) << "member " << id;
  });
  // Old shares still work: a post-abort coin toss under the old keys.
  const auto& old_public = h.deployment.keys->public_keys();
  Rng rng(131);
  const Bytes name = bytes_of("post-abort-coin");
  std::vector<crypto::CoinShare> shares;
  for (int id : {0, 3}) {
    for (auto& share : h.deployment.keys->share(id).coin.share(old_public.coin, name, rng)) {
      shares.push_back(share);
    }
  }
  EXPECT_TRUE(old_public.coin.combine(name, shares).has_value());
}

TEST(ReconfigTest, JoinListenerRejectsTamperedPackageAndFingersDealer) {
  auto h = EpochHarness::fresh(swap_plan(), 15);
  ASSERT_TRUE(h.run());
  auto package = h.cluster.protocol(0)->reconfig->join_package(3);
  // Garbage in the sub-share targeting the joiner, inside an applied
  // dealing: provable misbehavior of that dealer.
  package.coin_subshares[1] = package.coin_subshares[1] + BigInt(1);

  std::map<int, Bytes> keys;
  for (int dealer = 0; dealer < 4; ++dealer) keys[dealer] = join_key(1, dealer, 3);
  const auto& old_public = h.deployment.keys->public_keys();
  JoinListener listener(kTag, 3, keys, old_public.coin.group_ptr(), old_public);
  EXPECT_FALSE(listener.offer(package));
  EXPECT_FALSE(listener.ready());
  EXPECT_EQ(listener.suspected(), party_bit(package.applied[1]));

  // An honest package still wins afterwards.
  EXPECT_TRUE(listener.offer(h.cluster.protocol(2)->reconfig->join_package(3)));
  EXPECT_TRUE(listener.ready());
}

TEST(ReconfigTest, SequentialEpochsGrowThenShrink) {
  // Epoch 1: (4,1) -> (5,1) with a joiner; epoch 2: (5,1) -> (4,1), old
  // slot 1 retires and slots compact.  Reply signatures minted by the
  // final committee — with a TWICE-compounded delta — still verify under
  // the epoch-0 reply public key.
  auto h1 = EpochHarness::fresh(grow_plan(), 17);
  ASSERT_TRUE(h1.run());
  Deployment committee1 = assemble_committee(h1.deployment, h1.plan, all_results(h1));

  ReconfigPlan plan2 = make_plan(2, 5, 1, 1, {0, 2, 3, 4});
  EpochHarness h2(committee1, plan2, 19);
  ASSERT_TRUE(h2.run());
  std::vector<ReconfigResult> results2(4);
  for (int old = 0; old < 5; ++old) {
    const auto& r = h2.result(old);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.config.plan.new_epoch, 2u);
    if (r.new_slot >= 0) results2[static_cast<std::size_t>(r.new_slot)] = r;
  }
  Deployment committee2 = assemble_committee(committee1, plan2, results2);

  // The compounded scale is the epoch-1 scheme's full delta.
  const auto& epoch1_reply = committee1.keys->public_keys().reply_sig;
  EXPECT_EQ(h2.result(0).config.reply_scale, epoch1_reply.scheme().delta());

  const auto& new_public = committee2.keys->public_keys();
  const Bytes statement = bytes_of("two epochs later");
  Rng rng(171);
  std::vector<crypto::SigShare> shares;
  for (int slot : {0, 3}) {
    for (auto& share :
         committee2.keys->share(slot).reply_sig.sign(new_public.reply_sig, statement, rng)) {
      EXPECT_TRUE(new_public.reply_sig.verify_share(statement, share));
      shares.push_back(share);
    }
  }
  auto signature = new_public.reply_sig.combine(statement, shares);
  ASSERT_TRUE(signature.has_value());
  EXPECT_TRUE(h1.deployment.keys->public_keys().reply_sig.verify(statement, *signature));

  // And the coin secret is still the dealer's original.
  const auto& group = h1.deployment.keys->public_keys().coin.group();
  crypto::ThresholdScheme scheme0(4, 1);
  std::map<int, BigInt> dealt{
      {0, h1.deployment.keys->share(0).coin.unit_shares().at(0)},
      {2, h1.deployment.keys->share(2).coin.unit_shares().at(2)}};
  std::map<int, BigInt> final_shares{{1, results2[1].coin_share},
                                     {2, results2[2].coin_share}};
  EXPECT_EQ(scheme0.reconstruct(dealt, group.q()),
            crypto::ThresholdScheme(4, 1).reconstruct(final_shares, group.q()));
}

// ---- identical total order across the fence --------------------------------

struct AbcState {
  std::unique_ptr<AtomicBroadcast> abc;
  std::vector<std::pair<int, Bytes>> delivered;
};

Cluster<AbcState>::Factory abc_factory(int checkpoint_interval) {
  return [checkpoint_interval](net::Party& party, int) {
    party.enable_wal();  // certified_state and snapshot replay need the log
    auto state = std::make_unique<AbcState>();
    state->abc = std::make_unique<AtomicBroadcast>(
        party, "abc", [s = state.get()](int origin, Bytes payload) {
          s->delivered.emplace_back(origin, std::move(payload));
        });
    if (checkpoint_interval > 0) state->abc->enable_checkpoints(checkpoint_interval);
    return state;
  };
}

TEST(ReconfigTest, JoinerCommitsIdenticalTotalOrderFromInstalledCheckpoint) {
  Rng rng(21);
  auto old_deployment = Deployment::threshold(4, 1, rng);

  // Phase 1: the old committee delivers traffic under certified
  // checkpoints.
  net::RandomScheduler sched1(210);
  Cluster<AbcState> service(old_deployment, sched1, abc_factory(1), 0, 0, 21);
  service.start();
  for (int id = 0; id < 4; ++id) {
    service.protocol(id)->abc->submit(bytes_of("pre-" + std::to_string(id)));
  }
  ASSERT_TRUE(service.run_until_all(
      [](AbcState& s) {
        return s.delivered.size() >= 4 && s.abc->latest_certificate().has_value();
      },
      60000000));
  const CheckpointCert fence = *service.protocol(0)->abc->latest_certificate();
  const Bytes certified = service.protocol(0)->abc->certified_state(fence);
  ASSERT_FALSE(certified.empty());
  const std::vector<std::pair<int, Bytes>> old_log(
      service.protocol(0)->delivered.begin(),
      service.protocol(0)->delivered.begin() +
          static_cast<std::ptrdiff_t>(fence.delivered_count));

  // Phase 2: reconfiguration fenced at that certificate.
  EpochHarness epoch(old_deployment, swap_plan(), 23, 0, fence);
  ASSERT_TRUE(epoch.run());
  auto results = all_results(epoch);
  EXPECT_EQ(results[0].config.fence.chain_digest, fence.chain_digest);
  Deployment committee = assemble_committee(old_deployment, epoch.plan, results);

  // The fence certificate verifies under the REBUILT certificate key (same
  // modulus, new verification values) — what the joiner checks before
  // trusting a snapshot.
  EXPECT_TRUE(fence.verify(committee.keys->public_keys().cert_sig, "abc"));

  // Phase 3: the new committee (joiner included) installs the certified
  // prefix and keeps delivering — everyone, the joiner from its installed
  // checkpoint forward, commits the identical total order.
  net::RandomScheduler sched2(230);
  Cluster<AbcState> next(committee, sched2, abc_factory(1), 0, 0, 25);
  next.start();
  next.for_each([&](int id, AbcState& s) {
    ASSERT_TRUE(s.abc->install_checkpoint(fence, certified)) << "member " << id;
  });
  for (int id = 0; id < 4; ++id) {
    next.protocol(id)->abc->submit(bytes_of("post-" + std::to_string(id)));
  }
  const std::size_t want = fence.delivered_count + 4;
  ASSERT_TRUE(next.run_until_all(
      [want](AbcState& s) { return s.delivered.size() >= want; }, 60000000));

  const auto& reference = next.protocol(0)->delivered;
  next.for_each([&](int id, AbcState& s) {
    ASSERT_GE(s.delivered.size(), want) << "member " << id;
    for (std::size_t i = 0; i < want; ++i) {
      EXPECT_EQ(s.delivered[i], reference[i]) << "member " << id << " at " << i;
    }
  });
  // The common prefix is exactly the old committee's certified log.
  for (std::size_t i = 0; i < old_log.size(); ++i) {
    EXPECT_EQ(reference[i], old_log[i]) << "certified prefix diverged at " << i;
  }
  // The reshared certificate key mints NEW certificates past the fence.
  EXPECT_TRUE(next.run_until_all(
      [&](AbcState& s) {
        const auto& cert = s.abc->latest_certificate();
        return cert.has_value() && cert->delivered_count > fence.delivered_count;
      },
      60000000));
}

// ---- chaos -----------------------------------------------------------------

std::vector<std::uint64_t> reconfig_seeds() {
  std::vector<std::uint64_t> seeds = {3};
  if (const char* env = std::getenv("SINTRA_RECONFIG_SEEDS")) {
    seeds.clear();
    std::uint64_t value = 0;
    bool any = false;
    for (const char* p = env;; ++p) {
      if (*p >= '0' && *p <= '9') {
        value = value * 10 + static_cast<std::uint64_t>(*p - '0');
        any = true;
      } else {
        if (any) seeds.push_back(value);
        value = 0;
        any = false;
        if (*p == '\0') break;
      }
    }
    if (seeds.empty()) seeds.push_back(3);
  }
  return seeds;
}

ChaosCluster<ReconfigState>::Factory chaos_factory(const ReconfigPlan& plan) {
  return [plan](net::Party& party, int id) {
    auto state = std::make_unique<ReconfigState>();
    state->reconfig = std::make_unique<Reconfig>(
        party, kTag, plan, std::nullopt, options_for(plan, id, 0),
        [s = state.get()](const ReconfigResult& r) { s->result = r; });
    state->reconfig->start();  // ChaosCluster factories also start
    return state;
  };
}

void expect_agreement(ChaosCluster<ReconfigState>& cluster, const Deployment& deployment) {
  std::optional<Bytes> reference;
  cluster.for_each([&](int id, ReconfigState& s) {
    ASSERT_TRUE(s.result.has_value()) << "member " << id;
    ASSERT_TRUE(s.result->completed) << "member " << id;
    Writer w;
    s.result->config.encode(w, deployment.keys->public_keys().coin.group());
    if (!reference.has_value()) {
      reference = w.take();
      return;
    }
    EXPECT_EQ(w.data(), *reference) << "member " << id;
  });
}

TEST(ReconfigChaosTest, EpochCompletesUnderMessageChaos) {
  for (std::uint64_t seed : reconfig_seeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto deployment = Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 31 + 7);
    ChaosCluster<ReconfigState> cluster(deployment, sched, chaos_factory(swap_plan()), seed);
    cluster.set_fault_policy(seed * 97 + 1, net::FaultPolicy::chaos());
    cluster.start();
    ASSERT_TRUE(cluster.run_until_all(
        [](ReconfigState& s) { return s.result.has_value(); }, 60000000));
    expect_agreement(cluster, deployment);
  }
}

TEST(ReconfigChaosTest, MidEpochCrashRestartReplaysToTheSameEpoch) {
  for (std::uint64_t seed : reconfig_seeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed + 100);
    auto deployment = Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(seed * 37 + 5);
    ChaosCluster<ReconfigState> cluster(deployment, sched, chaos_factory(swap_plan()), seed);
    // SIGKILL party 1 mid-epoch; the restarted incarnation replays its WAL
    // and must land on the identical announcement.
    cluster.set_restarting(1, /*crash_after=*/12, /*down_for=*/8);
    cluster.start();
    ASSERT_TRUE(cluster.run_until_all(
        [](ReconfigState& s) { return s.result.has_value(); }, 60000000));
    expect_agreement(cluster, deployment);
  }
}

// ---- loopback: partition schedule + WAL snapshots --------------------------

constexpr int kLoopN = 4;

/// Four NetworkedNode+LoopbackHub parties running one reconfiguration
/// epoch over real (in-process) transport framing.
struct LoopbackEpoch {
  Deployment deployment;
  ReconfigPlan plan;
  std::uint64_t seed;
  LoopbackHub hub;
  std::vector<std::unique_ptr<NetworkedNode>> nodes;
  std::vector<std::unique_ptr<HostedParty<ReconfigState>>> hosts;
  std::vector<std::unique_ptr<ExecutorPool>> execs;
  std::size_t executors;

  LoopbackEpoch(Deployment d, ReconfigPlan p, std::uint64_t s, std::size_t executor_count = 0)
      : deployment(std::move(d)), plan(std::move(p)), seed(s), hub(kLoopN, s),
        nodes(kLoopN), hosts(kLoopN), execs(kLoopN), executors(executor_count) {
    for (int id = 0; id < kLoopN; ++id) build_node(id);
  }

  ~LoopbackEpoch() {
    for (auto& pool : execs) {
      if (pool) pool->stop();
    }
  }

  void build_node(int id) {
    const auto slot = static_cast<std::size_t>(id);
    NetworkedNode::Config config;
    config.node_id = id;
    config.n = kLoopN;
    auto node = std::make_unique<NetworkedNode>(config);
    auto pool = std::make_unique<ExecutorPool>(executors);
    auto host = std::make_unique<HostedParty<ReconfigState>>(
        *node, id, deployment, seed * 7919 + static_cast<std::uint64_t>(id),
        [&](net::Party& party) {
          party.enable_wal();
          party.set_executors(pool.get());
          auto state = std::make_unique<ReconfigState>();
          party.with_instance(kTag, [&] {
            state->reconfig = std::make_unique<Reconfig>(
                party, kTag, plan, std::nullopt, options_for(plan, id, 0),
                [s = state.get()](const ReconfigResult& r) { s->result = r; });
            state->reconfig->start();
          });
          return state;
        });
    node->set_executors(pool.get());
    node->attach(*host);
    node->bind_transport_batched([this, id](int peer, std::vector<net::transport::GroupPayload> payloads) {
      hub.send_many(id, peer, std::move(payloads));
    });
    hub.set_receiver(id, [raw = node.get()](int from, BytesView payload) {
      raw->on_transport_receive(from, payload);
    });
    nodes[slot] = std::move(node);
    hosts[slot] = std::move(host);
    execs[slot] = std::move(pool);
  }

  bool run_until(const std::function<bool()>& done, std::size_t max_iters = 3'000'000) {
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
      if (done()) return true;
      bool progressed = false;
      for (auto& node : nodes) {
        if (node) progressed = (node->poll() > 0) || progressed;
      }
      progressed = hub.step() || progressed;
      if (!progressed) {
        for (auto& pool : execs) {
          if (pool) pool->wait_idle();
        }
        for (auto& node : nodes) {
          if (node) node->poll();
        }
        hub.tick();
        std::this_thread::sleep_for(std::chrono::microseconds(300));
      }
    }
    return done();
  }

  bool all_done() {
    for (auto& host : hosts) {
      if (host && !host->protocol().result.has_value()) return false;
    }
    return true;
  }
};

TEST(ReconfigChaosTest, EpochCompletesUnderActivePartitionSchedule) {
  for (std::uint64_t seed : reconfig_seeds()) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed + 200);
    auto deployment = Deployment::threshold(kLoopN, 1, rng);
    LoopbackEpoch cluster(deployment, swap_plan(), seed);
    cluster.hub.set_partition_profile(
        PartitionProfile::split_heal(kLoopN, seed * 13 + 1, /*period=*/48, /*splits=*/2));
    ASSERT_TRUE(cluster.run_until([&] { return cluster.all_done(); }));
    const auto& group = deployment.keys->public_keys().coin.group();
    Writer ref_w;
    cluster.hosts[0]->protocol().result->config.encode(ref_w, group);
    for (int id = 0; id < kLoopN; ++id) {
      const auto& result = cluster.hosts[static_cast<std::size_t>(id)]->protocol().result;
      ASSERT_TRUE(result->completed) << "member " << id;
      Writer w;
      result->config.encode(w, group);
      EXPECT_EQ(w.data(), ref_w.data()) << "member " << id;
    }
  }
}

TEST(ReconfigChaosTest, MidEpochWalSnapshotRestoresBitExactly) {
  // Stop pumping at an arbitrary mid-epoch point, snapshot a party's WAL
  // under ExecutorPool(4), and restore it into TWO independent fresh
  // stacks: replay is deterministic by contract, so their re-snapshots
  // must be bit-identical — whatever executor interleaving produced the
  // WAL being replayed.
  Rng rng(77);
  auto deployment = Deployment::threshold(kLoopN, 1, rng);
  LoopbackEpoch cluster(deployment, swap_plan(), 7, /*executor_count=*/4);
  std::size_t steps = 0;
  cluster.run_until([&] { return ++steps >= 4000 || cluster.all_done(); }, 4000);
  for (auto& pool : cluster.execs) {
    if (pool) pool->wait_idle();
  }
  const Bytes snapshot = cluster.hosts[1]->snapshot();
  ASSERT_FALSE(snapshot.empty());

  const auto restore_into_fresh_stack = [&](Bytes& out) {
    NetworkedNode::Config config;
    config.node_id = 1;
    config.n = kLoopN;
    NetworkedNode fresh_node(config);  // not wired to the hub: replay only
    ExecutorPool fresh_pool(4);
    HostedParty<ReconfigState> fresh(
        fresh_node, 1, deployment, 7 * 7919 + 1, [&](net::Party& party) {
          party.enable_wal();
          party.set_executors(&fresh_pool);
          auto state = std::make_unique<ReconfigState>();
          party.with_instance(kTag, [&] {
            state->reconfig = std::make_unique<Reconfig>(
                party, kTag, cluster.plan, std::nullopt, options_for(cluster.plan, 1, 0),
                [s = state.get()](const ReconfigResult& r) { s->result = r; });
            state->reconfig->start();
          });
          return state;
        });
    fresh.restore(snapshot);
    fresh_pool.wait_idle();
    out = fresh.snapshot();
    fresh_pool.stop();
  };
  Bytes first, second;
  restore_into_fresh_stack(first);
  restore_into_fresh_stack(second);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

// ---- epoch plumbing: framing, transport, node, party -----------------------

TEST(EpochPlumbingTest, FrameBodiesCarryTheEpoch) {
  net::transport::HelloBody hello;
  hello.node_id = 3;
  hello.nonce = 77;
  hello.recv_cursor = 9;
  hello.epoch = 5;
  {
    Bytes encoded = hello.encode();
    Reader r(encoded);
    const auto decoded = net::transport::HelloBody::decode(r);
    EXPECT_EQ(decoded.epoch, 5u);
    EXPECT_EQ(decoded.node_id, 3);
  }
  net::transport::DataBody data;
  data.seq = 4;
  data.ack = 2;
  data.base = 1;
  data.epoch = 6;
  data.payload = bytes_of("p");
  {
    Bytes encoded = data.encode();
    Reader r(encoded);
    const auto decoded = net::transport::DataBody::decode(r);
    EXPECT_EQ(decoded.epoch, 6u);
    EXPECT_EQ(decoded.payload, bytes_of("p"));
  }
  net::transport::DataBatchBody batch;
  batch.ack = 1;
  batch.base = 0;
  batch.epoch = 7;
  batch.records = {{10, 0, bytes_of("a")}, {11, 0, bytes_of("b")}};
  {
    Bytes encoded = batch.encode();
    Reader r(encoded);
    const auto decoded = net::transport::DataBatchBody::decode(r);
    EXPECT_EQ(decoded.epoch, 7u);
    ASSERT_EQ(decoded.records.size(), 2u);
    EXPECT_EQ(decoded.records[1].payload, bytes_of("b"));
    const auto view = net::transport::DataBatchView::decode(encoded);
    EXPECT_EQ(view.epoch, 7u);
  }
}

TEST(EpochPlumbingTest, TcpHelloOutsideTheEpochWindowIsRejected) {
  using net::transport::TcpTransport;
  const std::uint64_t seed = 911;
  const auto pair_key = [&](int a, int b) {
    Writer w;
    w.u64(seed);
    w.u32(static_cast<std::uint32_t>(std::min(a, b)));
    w.u32(static_cast<std::uint32_t>(std::max(a, b)));
    return crypto::hash_expand("test/tcp/link-key", w.data(), 32);
  };
  const auto make_config = [&](int node_id, std::uint32_t epoch) {
    TcpTransport::Config config;
    config.node_id = node_id;
    config.endpoints.resize(2);
    config.link_keys.resize(2);
    for (int peer = 0; peer < 2; ++peer) {
      if (peer != node_id) config.link_keys[static_cast<std::size_t>(peer)] =
          pair_key(node_id, peer);
    }
    config.seed = seed + static_cast<std::uint64_t>(node_id);
    config.heartbeat_interval_ms = 50;
    config.heartbeat_timeout_ms = 600;
    config.reconnect_min_ms = 10;
    config.reconnect_max_ms = 100;
    config.ack_flush_ms = 5;
    config.epoch = epoch;
    return config;
  };
  const auto wait_for = [](const std::function<bool()>& pred, int timeout_ms) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (pred()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return pred();
  };

  // Epochs 0 and 5: the handshake is refused, nothing is delivered.
  {
    std::atomic<std::size_t> received{0};
    TcpTransport a(make_config(0, 5), [&](int, BytesView) { received++; });
    a.start();
    auto config_b = make_config(1, 0);
    config_b.endpoints[0].port = a.listen_port();
    TcpTransport b(config_b, [](int, BytesView) {});
    b.start();
    b.send(0, bytes_of("stale-committee traffic"));
    ASSERT_TRUE(wait_for(
        [&] { return a.stats().epoch_rejects + b.stats().epoch_rejects > 0; }, 5000));
    EXPECT_EQ(received.load(), 0u);
    b.stop();
    a.stop();
  }
  // Adjacent epochs (the reconfiguration transition window) interoperate.
  {
    std::atomic<std::size_t> received{0};
    TcpTransport a(make_config(0, 2), [&](int, BytesView) { received++; });
    a.start();
    auto config_b = make_config(1, 1);
    config_b.endpoints[0].port = a.listen_port();
    TcpTransport b(config_b, [](int, BytesView) {});
    b.start();
    b.send(0, bytes_of("transition-window traffic"));
    ASSERT_TRUE(wait_for([&] { return received.load() >= 1; }, 5000));
    EXPECT_EQ(a.stats().epoch_rejects, 0u);
    b.stop();
    a.stop();
  }
}

struct CollectorProcess final : public net::Process {
  std::vector<net::Message> messages;
  void on_message(const net::Message& message) override { messages.push_back(message); }
};

TEST(EpochPlumbingTest, NetworkedNodeGatesPayloadsByEpoch) {
  NetworkedNode::Config config;
  config.node_id = 0;
  config.n = 2;
  config.epoch = 3;
  config.max_future = 2;
  NetworkedNode node(config);
  CollectorProcess collector;
  node.attach(collector);

  const auto payload_at = [](std::uint32_t epoch, const char* body) {
    net::Message m;
    m.from = 1;
    m.to = 0;
    m.tag = "svc";
    m.payload = bytes_of(body);
    return NetworkedNode::encode_payload(m, epoch);
  };

  node.on_transport_receive(1, payload_at(3, "current"));   // dispatched
  node.on_transport_receive(1, payload_at(2, "stale"));     // dropped
  node.on_transport_receive(1, payload_at(9, "far"));       // dropped
  node.on_transport_receive(1, payload_at(4, "future-1"));  // buffered
  node.on_transport_receive(1, payload_at(4, "future-2"));  // buffered
  node.on_transport_receive(1, payload_at(4, "overflow"));  // max_future hit
  node.poll();
  ASSERT_EQ(collector.messages.size(), 1u);
  EXPECT_EQ(collector.messages[0].payload, bytes_of("current"));
  EXPECT_EQ(node.stats().epoch_stale, 2u);
  EXPECT_EQ(node.stats().epoch_buffered, 2u);
  EXPECT_EQ(node.stats().epoch_dropped, 1u);

  // advance_epoch replays the parked next-epoch traffic in arrival order.
  node.advance_epoch(4);
  node.poll();
  ASSERT_EQ(collector.messages.size(), 3u);
  EXPECT_EQ(collector.messages[1].payload, bytes_of("future-1"));
  EXPECT_EQ(collector.messages[2].payload, bytes_of("future-2"));
  EXPECT_EQ(node.epoch(), 4u);

  // decode_payload surfaces the stamp.
  std::uint32_t stamped = 0;
  const auto decoded = NetworkedNode::decode_payload(1, 0, payload_at(6, "x"), &stamped);
  EXPECT_EQ(stamped, 6u);
  EXPECT_EQ(decoded.payload, bytes_of("x"));
}

TEST(EpochPlumbingTest, PartySnapshotCarriesTheEpochLog) {
  Rng rng(31);
  auto deployment = Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(310);
  Cluster<AbcState> cluster(deployment, sched, abc_factory(0), 0, 0, 31);
  cluster.start();
  cluster.protocol(0)->abc->submit(bytes_of("before the epoch"));
  ASSERT_TRUE(cluster.run_until_all(
      [](AbcState& s) { return s.delivered.size() >= 1; }, 60000000));

  net::Party& party = *cluster.party(0);
  EXPECT_EQ(party.epoch(), 0u);
  party.begin_epoch(1, {0, 1, 2, -1});
  party.begin_epoch(1, {9, 9, 9, 9});  // replay of the same epoch: no-op
  EXPECT_EQ(party.epoch(), 1u);
  ASSERT_EQ(party.epoch_log().size(), 1u);
  EXPECT_EQ(party.epoch_log()[0].members, (std::vector<std::int32_t>{0, 1, 2, -1}));

  const Bytes snapshot = party.snapshot();
  // Restore into a fresh party: the epoch log survives the round-trip and
  // the delivered prefix re-fires identically.
  net::RandomScheduler sched2(311);
  Cluster<AbcState> other(deployment, sched2, abc_factory(0), 0, 0, 31);
  other.start();
  other.party(0)->restore(snapshot);
  EXPECT_EQ(other.party(0)->epoch(), 1u);
  ASSERT_EQ(other.party(0)->epoch_log().size(), 1u);
  EXPECT_EQ(other.party(0)->epoch_log()[0].epoch, 1u);
  EXPECT_EQ(other.party(0)->epoch_log()[0].members, (std::vector<std::int32_t>{0, 1, 2, -1}));
  EXPECT_EQ(other.protocol(0)->delivered, cluster.protocol(0)->delivered);

  // Replay is deterministic: a second restore from the same bytes lands on
  // a bit-identical re-snapshot (membership history included).
  net::RandomScheduler sched3(312);
  Cluster<AbcState> third(deployment, sched3, abc_factory(0), 0, 0, 31);
  third.start();
  third.party(0)->restore(snapshot);
  EXPECT_EQ(third.party(0)->snapshot(), other.party(0)->snapshot());
}

// ---- app/client follows a signed NEW-CONFIG --------------------------------

TEST(ReconfigTest, ServiceClientFollowsSignedNewConfig) {
  auto h = EpochHarness::fresh(grow_plan(), 27);
  ASSERT_TRUE(h.run());
  const NewConfig& config = h.result(0).config;

  net::RandomScheduler sched(270);
  net::Simulator simulator(9, sched);
  app::ServiceClient client(simulator, /*net_id=*/8, h.deployment, "svc",
                            app::Replica::Mode::kAtomic, 271, nullptr);
  EXPECT_EQ(client.config_epoch(), 0u);

  // Tampered signature: rejected, nothing changes.
  NewConfig forged = config;
  forged.signature = forged.signature + BigInt(1);
  EXPECT_FALSE(client.apply_new_config(forged, kTag));
  EXPECT_EQ(client.config_epoch(), 0u);

  // The authentic announcement moves the client to the new committee.
  EXPECT_TRUE(client.apply_new_config(config, kTag));
  EXPECT_EQ(client.config_epoch(), 1u);
  // Replay (same epoch) is stale.
  EXPECT_FALSE(client.apply_new_config(config, kTag));

  // The relay path: a replica forwards the announcement on
  // "<service>/newconfig"; a second client applies it from the wire.
  app::ServiceClient relayed(simulator, /*net_id=*/8, h.deployment, "svc",
                             app::Replica::Mode::kAtomic, 272, nullptr);
  Writer w;
  w.str(kTag);
  config.encode(w, h.deployment.keys->public_keys().coin.group());
  net::Message announcement;
  announcement.from = 0;
  announcement.to = 8;
  announcement.tag = "svc/newconfig";
  announcement.payload = w.take();
  relayed.on_message(announcement);
  EXPECT_EQ(relayed.config_epoch(), 1u);
}

// ---- refresh gap: applied-but-invalid sub-share is detected ----------------

struct RefreshState {
  std::unique_ptr<ShareRefresh> refresh;
  std::optional<ShareRefresh::Result> result;
};

TEST(ReconfigTest, RefreshDetectsUnusableShareFromMisprovisionedChannel) {
  // Party 3's pairwise channel keys disagree with everyone else's (the
  // mis-provisioning stand-in for a Byzantine dealer targeting a party
  // whose verdict misses the first quorum): every sub-share it unmasks is
  // garbage.  Whenever a dealing it rejected is nonetheless applied, the
  // victim must DETECT the unusable share via share_valid == false rather
  // than serve with it.  Seeds where its verdict makes the first quorum
  // degrade the epoch instead (fewer applied dealings) — also clean.  At
  // least one seed must exhibit the detection path.
  bool detected = false;
  for (std::uint64_t seed = 1; seed <= 12 && !detected; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    Rng rng(seed);
    auto deployment = Deployment::threshold(4, 1, rng);
    std::vector<crypto::PartyKeyShare> shares;
    for (int id = 0; id < 4; ++id) shares.push_back(deployment.keys->share(id));
    for (auto& key : shares[3].channel_keys) {
      if (!key.empty()) key = crypto::hash_expand("test/reconfig/bad-key", key, 32);
    }
    Deployment tampered;
    tampered.quorum = deployment.quorum;
    tampered.keys =
        std::make_shared<const crypto::KeyBundle>(deployment.keys->public_keys(), shares);

    net::RandomScheduler sched(seed * 3 + 1);
    const auto factory = [&](Deployment& dep) {
      return [&dep](net::Party& party, int id) {
        auto state = std::make_unique<RefreshState>();
        state->refresh = std::make_unique<ShareRefresh>(
            party, "refresh", dep.keys->share(id).coin.unit_shares().at(id),
            dep.keys->public_keys().coin.verification_values(), 1,
            [s = state.get()](ShareRefresh::Result r) { s->result = std::move(r); });
        return state;
      };
    };
    Cluster<RefreshState> cluster(deployment, sched, factory(deployment), 0, 0, seed);
    auto victim = std::make_unique<HostedParty<RefreshState>>(
        cluster.simulator(), 3, tampered, seed * 7919 + 3,
        [&](net::Party& party) { return factory(tampered)(party, 3); });
    RefreshState& victim_state = victim->protocol();
    cluster.attach_custom(3, std::move(victim));

    cluster.start();
    cluster.for_each([](int, RefreshState& s) { s.refresh->start(); });
    victim_state.refresh->start();
    ASSERT_TRUE(cluster.simulator().run_until(
        [&] {
          bool done = victim_state.result.has_value();
          for (int id = 0; id < 3; ++id) {
            done = done && cluster.protocol(id)->result.has_value();
          }
          return done;
        },
        60000000));

    // The honest majority always ends consistent.
    const auto& reference = cluster.protocol(0)->result->new_verification;
    for (int id = 1; id < 3; ++id) {
      EXPECT_EQ(cluster.protocol(id)->result->new_verification, reference);
    }
    if (victim_state.result->dealings_applied > 0 && !victim_state.result->share_valid) {
      detected = true;
      // The detected share really is unusable: it does not match the
      // published verification value.
      const auto& group = deployment.keys->public_keys().coin.group();
      EXPECT_NE(group.exp_g(victim_state.result->new_share), reference[3]);
    }
  }
  EXPECT_TRUE(detected) << "no seed exercised the applied-but-invalid detection path";
}

}  // namespace
}  // namespace sintra
