// Wire-framing tests: encode/decode round trips, incremental decoding
// across arbitrary read boundaries, MAC enforcement (fail-closed), session
// key derivation, and the unauthenticated accept-path peek.
#include <gtest/gtest.h>

#include "net/transport/framing.hpp"

namespace sintra::net::transport {
namespace {

Bytes test_key(char fill) { return Bytes(32, static_cast<std::uint8_t>(fill)); }

TEST(FramingTest, RoundTrip) {
  const Bytes key = test_key('k');
  const Bytes body = bytes_of("hello frames");
  const Bytes wire = encode_frame(FrameType::kData, body, key);
  EXPECT_EQ(wire.size(), kFrameOverhead + body.size());

  FrameDecoder decoder;
  decoder.feed(wire);
  Frame frame;
  ASSERT_EQ(decoder.next(key, frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kData);
  EXPECT_EQ(frame.body, body);
  EXPECT_EQ(decoder.next(key, frame), FrameDecoder::Status::kNeedMore);
}

TEST(FramingTest, DecodesAcrossArbitraryBoundaries) {
  const Bytes key = test_key('k');
  Bytes stream;
  for (int i = 0; i < 5; ++i) {
    append(stream, encode_frame(FrameType::kData, bytes_of("m" + std::to_string(i)), key));
  }
  // Feed one byte at a time — worst-case TCP fragmentation.
  FrameDecoder decoder;
  int decoded = 0;
  Frame frame;
  for (const std::uint8_t byte : stream) {
    decoder.feed(BytesView(&byte, 1));
    while (decoder.next(key, frame) == FrameDecoder::Status::kFrame) {
      EXPECT_EQ(frame.body, bytes_of("m" + std::to_string(decoded)));
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, 5);
}

TEST(FramingTest, WrongKeyPoisonsStream) {
  const Bytes wire = encode_frame(FrameType::kData, bytes_of("x"), test_key('a'));
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame frame;
  EXPECT_EQ(decoder.next(test_key('b'), frame), FrameDecoder::Status::kCorrupt);
  EXPECT_TRUE(decoder.corrupt());
  // Terminal: even valid follow-up data is rejected.
  decoder.feed(encode_frame(FrameType::kData, bytes_of("y"), test_key('b')));
  EXPECT_EQ(decoder.next(test_key('b'), frame), FrameDecoder::Status::kCorrupt);
}

TEST(FramingTest, FlippedBitAnywhereIsRejected) {
  const Bytes key = test_key('k');
  const Bytes wire = encode_frame(FrameType::kPing, {}, key);
  for (std::size_t i = 4; i < wire.size(); ++i) {  // skip length (tested separately)
    Bytes tampered = wire;
    tampered[i] ^= 0x01;
    FrameDecoder decoder;
    decoder.feed(tampered);
    Frame frame;
    EXPECT_EQ(decoder.next(key, frame), FrameDecoder::Status::kCorrupt) << "byte " << i;
  }
}

TEST(FramingTest, OversizedLengthIsRejectedWithoutAllocation) {
  Bytes wire(4, 0xff);  // body_len = 0xffffffff
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame frame;
  EXPECT_EQ(decoder.next(test_key('k'), frame), FrameDecoder::Status::kCorrupt);
}

TEST(FramingTest, UnknownTypeIsRejected) {
  const Bytes key = test_key('k');
  Bytes wire = encode_frame(FrameType::kPing, {}, key);
  wire[4] = 99;  // not a FrameType
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame frame;
  EXPECT_EQ(decoder.next(key, frame), FrameDecoder::Status::kCorrupt);
}

TEST(FramingTest, HelloAndDataBodiesRoundTrip) {
  HelloBody hello;
  hello.node_id = 3;
  hello.nonce = 0x1122334455667788ULL;
  hello.recv_cursor = 42;
  const Bytes hello_wire = hello.encode();  // named: Reader holds a view
  Reader hr(hello_wire);
  const HelloBody hello2 = HelloBody::decode(hr);
  EXPECT_EQ(hello2.version, kProtocolVersion);
  EXPECT_EQ(hello2.node_id, 3u);
  EXPECT_EQ(hello2.nonce, hello.nonce);
  EXPECT_EQ(hello2.recv_cursor, 42u);

  DataBody data;
  data.seq = 7;
  data.ack = 5;
  data.base = 2;
  data.payload = bytes_of("payload");
  const Bytes data_wire = data.encode();
  Reader dr(data_wire);
  const DataBody data2 = DataBody::decode(dr);
  EXPECT_EQ(data2.seq, 7u);
  EXPECT_EQ(data2.ack, 5u);
  EXPECT_EQ(data2.base, 2u);
  EXPECT_EQ(data2.payload, bytes_of("payload"));
}

TEST(FramingTest, SessionKeyBindsBothNoncesAndLinkKey) {
  const Bytes key = test_key('k');
  const Bytes s1 = derive_session_key(key, 1, 2);
  EXPECT_EQ(s1.size(), 32u);
  EXPECT_NE(s1, derive_session_key(key, 2, 1));          // order matters
  EXPECT_NE(s1, derive_session_key(key, 1, 3));          // both nonces bound
  EXPECT_NE(s1, derive_session_key(test_key('j'), 1, 2));  // link key bound
  EXPECT_EQ(s1, derive_session_key(key, 1, 2));          // deterministic
}

TEST(FramingTest, PeekParsesWithoutAuthenticating) {
  HelloBody hello;
  hello.node_id = 2;
  const Bytes wire = encode_frame(FrameType::kHello, hello.encode(), test_key('k'));

  bool corrupt = true;
  // Incomplete prefix: need more, not corrupt.
  EXPECT_FALSE(
      peek_frame_unauthenticated(BytesView(wire.data(), wire.size() - 1), &corrupt).has_value());
  EXPECT_FALSE(corrupt);

  const auto frame = peek_frame_unauthenticated(wire, &corrupt);
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(corrupt);
  EXPECT_EQ(frame->type, FrameType::kHello);
  Reader reader(frame->body);
  EXPECT_EQ(HelloBody::decode(reader).node_id, 2u);

  Bytes garbage(64, 0xee);
  EXPECT_FALSE(peek_frame_unauthenticated(garbage, &corrupt).has_value());
  EXPECT_TRUE(corrupt);
}

}  // namespace
}  // namespace sintra::net::transport
