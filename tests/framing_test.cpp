// Wire-framing tests: encode/decode round trips, incremental decoding
// across arbitrary read boundaries, MAC enforcement (fail-closed), session
// key derivation, and the unauthenticated accept-path peek.
#include <gtest/gtest.h>

#include "net/transport/framing.hpp"

namespace sintra::net::transport {
namespace {

Bytes test_key(char fill) { return Bytes(32, static_cast<std::uint8_t>(fill)); }

TEST(FramingTest, RoundTrip) {
  const Bytes key = test_key('k');
  const Bytes body = bytes_of("hello frames");
  const Bytes wire = encode_frame(FrameType::kData, body, key);
  EXPECT_EQ(wire.size(), kFrameOverhead + body.size());

  FrameDecoder decoder;
  decoder.feed(wire);
  Frame frame;
  ASSERT_EQ(decoder.next(key, frame), FrameDecoder::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kData);
  EXPECT_EQ(frame.body, body);
  EXPECT_EQ(decoder.next(key, frame), FrameDecoder::Status::kNeedMore);
}

TEST(FramingTest, DecodesAcrossArbitraryBoundaries) {
  const Bytes key = test_key('k');
  Bytes stream;
  for (int i = 0; i < 5; ++i) {
    append(stream, encode_frame(FrameType::kData, bytes_of("m" + std::to_string(i)), key));
  }
  // Feed one byte at a time — worst-case TCP fragmentation.
  FrameDecoder decoder;
  int decoded = 0;
  Frame frame;
  for (const std::uint8_t byte : stream) {
    decoder.feed(BytesView(&byte, 1));
    while (decoder.next(key, frame) == FrameDecoder::Status::kFrame) {
      EXPECT_EQ(frame.body, bytes_of("m" + std::to_string(decoded)));
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, 5);
}

TEST(FramingTest, WrongKeyPoisonsStream) {
  const Bytes wire = encode_frame(FrameType::kData, bytes_of("x"), test_key('a'));
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame frame;
  EXPECT_EQ(decoder.next(test_key('b'), frame), FrameDecoder::Status::kCorrupt);
  EXPECT_TRUE(decoder.corrupt());
  // Terminal: even valid follow-up data is rejected.
  decoder.feed(encode_frame(FrameType::kData, bytes_of("y"), test_key('b')));
  EXPECT_EQ(decoder.next(test_key('b'), frame), FrameDecoder::Status::kCorrupt);
}

TEST(FramingTest, FlippedBitAnywhereIsRejected) {
  const Bytes key = test_key('k');
  const Bytes wire = encode_frame(FrameType::kPing, {}, key);
  for (std::size_t i = 4; i < wire.size(); ++i) {  // skip length (tested separately)
    Bytes tampered = wire;
    tampered[i] ^= 0x01;
    FrameDecoder decoder;
    decoder.feed(tampered);
    Frame frame;
    EXPECT_EQ(decoder.next(key, frame), FrameDecoder::Status::kCorrupt) << "byte " << i;
  }
}

TEST(FramingTest, OversizedLengthIsRejectedWithoutAllocation) {
  Bytes wire(4, 0xff);  // body_len = 0xffffffff
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame frame;
  EXPECT_EQ(decoder.next(test_key('k'), frame), FrameDecoder::Status::kCorrupt);
}

TEST(FramingTest, UnknownTypeIsRejected) {
  const Bytes key = test_key('k');
  Bytes wire = encode_frame(FrameType::kPing, {}, key);
  wire[4] = 99;  // not a FrameType
  FrameDecoder decoder;
  decoder.feed(wire);
  Frame frame;
  EXPECT_EQ(decoder.next(key, frame), FrameDecoder::Status::kCorrupt);
}

TEST(FramingTest, HelloAndDataBodiesRoundTrip) {
  HelloBody hello;
  hello.node_id = 3;
  hello.nonce = 0x1122334455667788ULL;
  hello.recv_cursor = 42;
  const Bytes hello_wire = hello.encode();  // named: Reader holds a view
  Reader hr(hello_wire);
  const HelloBody hello2 = HelloBody::decode(hr);
  EXPECT_EQ(hello2.version, kProtocolVersion);
  EXPECT_EQ(hello2.node_id, 3u);
  EXPECT_EQ(hello2.nonce, hello.nonce);
  EXPECT_EQ(hello2.recv_cursor, 42u);

  DataBody data;
  data.seq = 7;
  data.ack = 5;
  data.base = 2;
  data.payload = bytes_of("payload");
  const Bytes data_wire = data.encode();
  Reader dr(data_wire);
  const DataBody data2 = DataBody::decode(dr);
  EXPECT_EQ(data2.seq, 7u);
  EXPECT_EQ(data2.ack, 5u);
  EXPECT_EQ(data2.base, 2u);
  EXPECT_EQ(data2.payload, bytes_of("payload"));
}

TEST(FramingTest, BatchBodyRoundTripsThroughOwningAndViewDecoders) {
  DataBatchBody batch;
  batch.ack = 9;
  batch.base = 4;
  batch.records.push_back({4, 0, bytes_of("first")});
  batch.records.push_back({5, 0, Bytes{}});  // empty payloads are legal
  batch.records.push_back({6, 0, bytes_of("third")});
  const Bytes body = batch.encode();

  Reader reader(body);
  const DataBatchBody owned = DataBatchBody::decode(reader);
  EXPECT_EQ(owned.ack, 9u);
  EXPECT_EQ(owned.base, 4u);
  ASSERT_EQ(owned.records.size(), 3u);
  EXPECT_EQ(owned.records[0].seq, 4u);
  EXPECT_EQ(owned.records[0].payload, bytes_of("first"));
  EXPECT_EQ(owned.records[1].payload, Bytes{});
  EXPECT_EQ(owned.records[2].payload, bytes_of("third"));

  const DataBatchView view = DataBatchView::decode(body);
  EXPECT_EQ(view.ack, 9u);
  EXPECT_EQ(view.base, 4u);
  ASSERT_EQ(view.records.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(view.records[i].seq, owned.records[i].seq);
    EXPECT_EQ(Bytes(view.records[i].payload.begin(), view.records[i].payload.end()),
              owned.records[i].payload);
    // Zero-copy: every non-empty view payload points into `body`.
    if (!view.records[i].payload.empty()) {
      EXPECT_GE(view.records[i].payload.data(), body.data());
      EXPECT_LE(view.records[i].payload.data() + view.records[i].payload.size(),
                body.data() + body.size());
    }
  }
}

TEST(FramingTest, NextViewMatchesNextAndSlicesTheDecoderBuffer) {
  const Bytes key = test_key('k');
  DataBatchBody batch;
  batch.ack = 1;
  batch.records.push_back({1, 0, bytes_of("coalesced")});
  const Bytes wire = encode_frame(FrameType::kDataBatch, batch.encode(), key);

  FrameDecoder by_copy;
  by_copy.feed(wire);
  Frame frame;
  ASSERT_EQ(by_copy.next(key, frame), FrameDecoder::Status::kFrame);

  FrameDecoder by_view;
  by_view.feed(wire);
  FrameType type{};
  BytesView body;
  ASSERT_EQ(by_view.next_view(key, type, body), FrameDecoder::Status::kFrame);
  EXPECT_EQ(type, frame.type);
  EXPECT_EQ(Bytes(body.begin(), body.end()), frame.body);
  // The view's sub-slices survive until the next feed().
  const DataBatchView view = DataBatchView::decode(body);
  ASSERT_EQ(view.records.size(), 1u);
  EXPECT_EQ(Bytes(view.records[0].payload.begin(), view.records[0].payload.end()),
            bytes_of("coalesced"));
  ASSERT_EQ(by_view.next_view(key, type, body), FrameDecoder::Status::kNeedMore);
}

TEST(FramingTest, TruncatedOrTrailingBatchBodyThrows) {
  DataBatchBody batch;
  batch.ack = 2;
  batch.base = 1;
  batch.records.push_back({1, 0, bytes_of("p")});
  const Bytes body = batch.encode();
  // Every strict prefix must be rejected — count promises more records
  // (or payload bytes) than the body holds.
  for (std::size_t len = 0; len < body.size(); ++len) {
    EXPECT_THROW(DataBatchView::decode(BytesView(body.data(), len)), ProtocolError) << len;
    Bytes prefix(body.begin(), body.begin() + static_cast<std::ptrdiff_t>(len));
    Reader reader(prefix);
    EXPECT_THROW(DataBatchBody::decode(reader), ProtocolError) << len;
  }
  // Trailing garbage after the last record is equally malformed for the
  // view decoder (the body is exactly the batch, nothing else).
  Bytes padded = body;
  padded.push_back(0);
  EXPECT_THROW(DataBatchView::decode(padded), ProtocolError);
}

TEST(FramingTest, SessionKeyBindsBothNoncesAndLinkKey) {
  const Bytes key = test_key('k');
  const Bytes s1 = derive_session_key(key, 1, 2);
  EXPECT_EQ(s1.size(), 32u);
  EXPECT_NE(s1, derive_session_key(key, 2, 1));          // order matters
  EXPECT_NE(s1, derive_session_key(key, 1, 3));          // both nonces bound
  EXPECT_NE(s1, derive_session_key(test_key('j'), 1, 2));  // link key bound
  EXPECT_EQ(s1, derive_session_key(key, 1, 2));          // deterministic
}

TEST(FramingTest, PeekParsesWithoutAuthenticating) {
  HelloBody hello;
  hello.node_id = 2;
  const Bytes wire = encode_frame(FrameType::kHello, hello.encode(), test_key('k'));

  bool corrupt = true;
  // Incomplete prefix: need more, not corrupt.
  EXPECT_FALSE(
      peek_frame_unauthenticated(BytesView(wire.data(), wire.size() - 1), &corrupt).has_value());
  EXPECT_FALSE(corrupt);

  const auto frame = peek_frame_unauthenticated(wire, &corrupt);
  ASSERT_TRUE(frame.has_value());
  EXPECT_FALSE(corrupt);
  EXPECT_EQ(frame->type, FrameType::kHello);
  Reader reader(frame->body);
  EXPECT_EQ(HelloBody::decode(reader).node_id, 2u);

  Bytes garbage(64, 0xee);
  EXPECT_FALSE(peek_frame_unauthenticated(garbage, &corrupt).has_value());
  EXPECT_TRUE(corrupt);
}

}  // namespace
}  // namespace sintra::net::transport
