// Experiment E9 — message and communication complexity of the protocol
// stack vs n.
//
// Paper claims (§3): reliable broadcast costs O(n^2) messages; atomic
// broadcast adds the (constant expected number of) VBA/ABBA stages on
// top, which is why it is "considerably more expensive than reliable
// broadcast"; threshold signatures keep messages constant-size, so bytes
// scale like messages, not like n * messages.
//
// For each protocol and each n we run one complete instance and report
// total messages, total bytes, and both normalized by n^2.
#include <cstdio>

#include "protocols/atomic.hpp"
#include "protocols/broadcast.hpp"
#include "protocols/consistent.hpp"
#include "protocols/harness.hpp"
#include "protocols/vba.hpp"

using namespace sintra;

namespace {

struct Totals {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  bool completed = false;
};

Totals totals_of(net::Simulator& sim, bool completed) {
  Totals t;
  t.completed = completed;
  for (const auto& [prefix, stats] : sim.traffic()) {
    t.messages += stats.messages;
    t.bytes += stats.bytes;
  }
  return t;
}

struct RbcState {
  std::unique_ptr<protocols::ReliableBroadcast> rbc;
  bool done = false;
};

Totals run_rbc(int n, int t, std::uint64_t seed) {
  Rng rng(seed);
  auto deployment = adversary::Deployment::threshold(n, t, rng);
  net::RandomScheduler sched(seed);
  protocols::Cluster<RbcState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<RbcState>();
        s->rbc = std::make_unique<protocols::ReliableBroadcast>(
            party, "rbc", 0, [p = s.get()](Bytes) { p->done = true; });
        return s;
      });
  cluster.start();
  cluster.protocol(0)->rbc->start(bytes_of("payload-payload-payload-payload"));
  bool ok = cluster.run_until_all([](RbcState& s) { return s.done; }, 10000000);
  return totals_of(cluster.simulator(), ok);
}

struct CbcState {
  std::unique_ptr<protocols::ConsistentBroadcast> cbc;
  bool done = false;
};

Totals run_cbc(int n, int t, std::uint64_t seed) {
  Rng rng(seed);
  auto deployment = adversary::Deployment::threshold(n, t, rng);
  net::RandomScheduler sched(seed);
  protocols::Cluster<CbcState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<CbcState>();
        s->cbc = std::make_unique<protocols::ConsistentBroadcast>(
            party, "cbc", 0, [p = s.get()](protocols::CertifiedMessage) { p->done = true; });
        return s;
      });
  cluster.start();
  cluster.protocol(0)->cbc->start(bytes_of("payload-payload-payload-payload"));
  bool ok = cluster.run_until_all([](CbcState& s) { return s.done; }, 10000000);
  return totals_of(cluster.simulator(), ok);
}

struct AbbaState {
  std::unique_ptr<protocols::Abba> abba;
  bool done = false;
};

Totals run_abba(int n, int t, std::uint64_t seed) {
  Rng rng(seed);
  auto deployment = adversary::Deployment::threshold(n, t, rng);
  net::RandomScheduler sched(seed);
  protocols::Cluster<AbbaState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<AbbaState>();
        s->abba = std::make_unique<protocols::Abba>(
            party, "ba", [p = s.get()](bool, int) { p->done = true; });
        return s;
      });
  cluster.start();
  cluster.for_each([](int id, AbbaState& s) { s.abba->start(id % 2 == 0); });
  bool ok = cluster.run_until_all([](AbbaState& s) { return s.done; }, 30000000);
  return totals_of(cluster.simulator(), ok);
}

struct VbaState {
  std::unique_ptr<protocols::Vba> vba;
  bool done = false;
};

Totals run_vba(int n, int t, std::uint64_t seed) {
  Rng rng(seed);
  auto deployment = adversary::Deployment::threshold(n, t, rng);
  net::RandomScheduler sched(seed);
  protocols::Cluster<VbaState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<VbaState>();
        s->vba = std::make_unique<protocols::Vba>(
            party, "vba", [](BytesView) { return true; },
            [p = s.get()](Bytes) { p->done = true; });
        return s;
      });
  cluster.start();
  cluster.for_each([](int id, VbaState& s) {
    s.vba->propose(bytes_of("proposal-" + std::to_string(id)));
  });
  bool ok = cluster.run_until_all([](VbaState& s) { return s.done; }, 50000000);
  return totals_of(cluster.simulator(), ok);
}

struct AbcState {
  std::unique_ptr<protocols::AtomicBroadcast> abc;
  std::size_t delivered = 0;
};

Totals run_abc(int n, int t, std::uint64_t seed) {
  Rng rng(seed);
  auto deployment = adversary::Deployment::threshold(n, t, rng);
  net::RandomScheduler sched(seed);
  protocols::Cluster<AbcState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<AbcState>();
        s->abc = std::make_unique<protocols::AtomicBroadcast>(
            party, "abc", [p = s.get()](int, Bytes) { ++p->delivered; });
        return s;
      });
  cluster.start();
  cluster.protocol(0)->abc->submit(bytes_of("payload-payload-payload-payload"));
  bool ok = cluster.run_until_all([](AbcState& s) { return s.delivered >= 1; }, 50000000);
  return totals_of(cluster.simulator(), ok);
}

void print_rows(const char* name, Totals (*run)(int, int, std::uint64_t)) {
  for (int n : {4, 7, 10, 13}) {
    const int t = (n - 1) / 3;
    Totals totals = run(n, t, static_cast<std::uint64_t>(n) * 7 + 1);
    std::printf("| %-9s | %3d | %8llu | %10llu | %8.2f | %10.1f | %-4s |\n", name, n,
                static_cast<unsigned long long>(totals.messages),
                static_cast<unsigned long long>(totals.bytes),
                static_cast<double>(totals.messages) / (n * n),
                static_cast<double>(totals.bytes) / (n * n),
                totals.completed ? "ok" : "FAIL");
  }
}

}  // namespace

int main() {
  std::printf("E9: message/communication complexity per completed instance\n");
  std::printf("Paper claims: RBC is O(n^2) messages; atomic broadcast = RBC + VBA/ABBA\n"
              "overhead (constant expected stages); threshold signatures keep message\n"
              "size constant so bytes/n^2 stays flat.\n\n");
  std::printf("| %-9s | %3s | %8s | %10s | %8s | %10s | %-4s |\n", "protocol", "n", "msgs",
              "bytes", "msgs/n^2", "bytes/n^2", "done");
  std::printf("|-----------|-----|----------|------------|----------|------------|------|\n");
  print_rows("rbc", run_rbc);
  print_rows("cbc", run_cbc);
  print_rows("abba", run_abba);
  print_rows("vba", run_vba);
  print_rows("abc", run_abc);
  std::printf("\nShape check: msgs/n^2 roughly flat per protocol (quadratic scaling);\n"
              "cbc << rbc in messages (O(n) echo pattern); abc is the most expensive,\n"
              "matching the paper's 'considerably more expensive than reliable\n"
              "broadcast'.\n");
  return 0;
}
