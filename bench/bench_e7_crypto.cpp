// Experiment E7 — threshold-cryptography micro-benchmarks
// (google-benchmark): the primitives the paper calls "quite practical
// given current processor speed" (§2), plus robustness overhead (share
// verification) and the generalized-LSSS variants.
//
// One benchmark per operation: coin share/verify/combine, threshold-RSA
// sign-share/verify/combine, TDH2 encrypt/decrypt-share/verify/combine —
// at threshold (n, t) configurations and over the Example 1 LSSS.
#include <benchmark/benchmark.h>

#include "adversary/examples.hpp"
#include "crypto/dealer.hpp"
#include "crypto/shamir.hpp"

using namespace sintra;
using namespace sintra::crypto;

namespace {

std::shared_ptr<const LinearScheme> scheme_for(int n, int t) {
  return std::make_shared<ThresholdScheme>(n, t);
}

GroupPtr group_for(std::int64_t which) {
  return which == 0 ? Group::test_group() : Group::big_group();
}

// ---- modular-exponentiation substrate ---------------------------------------
// Arg(0): 0 = test group (256/128), 1 = big group (1536/256).

void BM_ExpFixedBaseG(benchmark::State& state) {
  GroupPtr g = group_for(state.range(0));
  Rng rng(10);
  const BigInt s = g->random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->exp_g(s));
  }
}
BENCHMARK(BM_ExpFixedBaseG)->Arg(0)->Arg(1);

void BM_ExpGenericBase(benchmark::State& state) {
  GroupPtr g = group_for(state.range(0));
  Rng rng(10);
  const BigInt base = g->exp_g(g->random_scalar(rng));
  const BigInt s = g->random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->exp(base, s));
  }
}
BENCHMARK(BM_ExpGenericBase)->Arg(0)->Arg(1);

void BM_ExpReferencePath(benchmark::State& state) {
  GroupPtr g = group_for(state.range(0));
  Rng rng(10);
  const BigInt base = g->exp_g(g->random_scalar(rng));
  const BigInt s = g->random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::pow_mod_reference(base, s, g->p()));
  }
}
BENCHMARK(BM_ExpReferencePath)->Arg(0)->Arg(1);

void BM_Exp2(benchmark::State& state) {
  GroupPtr g = group_for(state.range(0));
  Rng rng(10);
  const BigInt b1 = g->exp_g(g->random_scalar(rng));
  const BigInt b2 = g->exp_g(g->random_scalar(rng));
  const BigInt e1 = g->random_scalar(rng);
  const BigInt e2 = g->random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->exp2(b1, e1, b2, e2));
  }
}
BENCHMARK(BM_Exp2)->Arg(0)->Arg(1);

void BM_MultiExp(benchmark::State& state) {
  GroupPtr g = Group::test_group();
  Rng rng(10);
  std::vector<std::pair<BigInt, BigInt>> pairs;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    pairs.emplace_back(g->exp_g(g->random_scalar(rng)), g->random_scalar(rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->multi_exp(pairs));
  }
}
BENCHMARK(BM_MultiExp)->Arg(2)->Arg(5)->Arg(11);

// ---- coin -------------------------------------------------------------------

void BM_CoinShare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  Rng rng(1);
  auto deal = CoinDeal::deal(Group::test_group(), scheme_for(n, t), rng);
  Bytes name = bytes_of("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.secret_keys[0].share(deal.public_key, name, rng));
  }
}
BENCHMARK(BM_CoinShare)->Arg(4)->Arg(7)->Arg(10)->Arg(16);

void BM_CoinVerifyShare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  Rng rng(1);
  auto deal = CoinDeal::deal(Group::test_group(), scheme_for(n, t), rng);
  Bytes name = bytes_of("bench");
  auto shares = deal.secret_keys[0].share(deal.public_key, name, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.verify_share(name, shares[0]));
  }
}
BENCHMARK(BM_CoinVerifyShare)->Arg(4)->Arg(16);

void BM_CoinCombine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  Rng rng(1);
  auto deal = CoinDeal::deal(Group::test_group(), scheme_for(n, t), rng);
  Bytes name = bytes_of("bench");
  std::vector<CoinShare> shares;
  for (int p = 0; p <= t; ++p) {
    for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].share(deal.public_key, name,
                                                                       rng)) {
      shares.push_back(s);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.combine(name, shares));
  }
}
BENCHMARK(BM_CoinCombine)->Arg(4)->Arg(7)->Arg(10)->Arg(16);

// ---- threshold RSA signatures ------------------------------------------------

void BM_SigShare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  Rng rng(2);
  auto deal = ThresholdSigDeal::deal(RsaParams::precomputed(256), scheme_for(n, t), rng);
  Bytes message = bytes_of("sign this");
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.secret_keys[0].sign(deal.public_key, message, rng));
  }
}
BENCHMARK(BM_SigShare)->Arg(4)->Arg(16);

void BM_SigVerifyShare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  Rng rng(2);
  auto deal = ThresholdSigDeal::deal(RsaParams::precomputed(256), scheme_for(n, t), rng);
  Bytes message = bytes_of("sign this");
  auto shares = deal.secret_keys[0].sign(deal.public_key, message, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.verify_share(message, shares[0]));
  }
}
BENCHMARK(BM_SigVerifyShare)->Arg(4)->Arg(16);

void BM_SigCombine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  Rng rng(2);
  auto deal = ThresholdSigDeal::deal(RsaParams::precomputed(256), scheme_for(n, t), rng);
  Bytes message = bytes_of("sign this");
  std::vector<SigShare> shares;
  for (int p = 0; p <= t; ++p) {
    for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].sign(deal.public_key,
                                                                      message, rng)) {
      shares.push_back(s);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.combine(message, shares));
  }
}
BENCHMARK(BM_SigCombine)->Arg(4)->Arg(7)->Arg(10)->Arg(16);

void BM_SigVerifyCombined(benchmark::State& state) {
  Rng rng(2);
  auto deal = ThresholdSigDeal::deal(RsaParams::precomputed(256), scheme_for(4, 1), rng);
  Bytes message = bytes_of("sign this");
  std::vector<SigShare> shares;
  for (int p = 0; p <= 1; ++p) {
    for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].sign(deal.public_key,
                                                                      message, rng)) {
      shares.push_back(s);
    }
  }
  auto sig = deal.public_key.combine(message, shares);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.verify(message, *sig));
  }
}
BENCHMARK(BM_SigVerifyCombined);

// ---- TDH2 --------------------------------------------------------------------

void BM_Tdh2Encrypt(benchmark::State& state) {
  Rng rng(3);
  auto deal = Tdh2Deal::deal(Group::test_group(), scheme_for(4, 1), rng);
  Bytes message(static_cast<std::size_t>(state.range(0)), 0xaa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.encrypt(message, bytes_of("l"), rng));
  }
}
BENCHMARK(BM_Tdh2Encrypt)->Arg(32)->Arg(1024);

void BM_Tdh2DecShare(benchmark::State& state) {
  Rng rng(3);
  auto deal = Tdh2Deal::deal(Group::test_group(), scheme_for(4, 1), rng);
  auto ct = deal.public_key.encrypt(bytes_of("message"), bytes_of("l"), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.secret_keys[0].decrypt_shares(deal.public_key, ct, rng));
  }
}
BENCHMARK(BM_Tdh2DecShare);

void BM_Tdh2VerifyShare(benchmark::State& state) {
  Rng rng(3);
  auto deal = Tdh2Deal::deal(Group::test_group(), scheme_for(4, 1), rng);
  auto ct = deal.public_key.encrypt(bytes_of("message"), bytes_of("l"), rng);
  auto shares = deal.secret_keys[0].decrypt_shares(deal.public_key, ct, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.verify_share(ct, shares[0]));
  }
}
BENCHMARK(BM_Tdh2VerifyShare);

void BM_Tdh2Combine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  Rng rng(3);
  auto deal = Tdh2Deal::deal(Group::test_group(), scheme_for(n, t), rng);
  auto ct = deal.public_key.encrypt(bytes_of("message"), bytes_of("l"), rng);
  std::vector<Tdh2DecShare> shares;
  for (int p = 0; p <= t; ++p) {
    for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].decrypt_shares(
             deal.public_key, ct, rng)) {
      shares.push_back(s);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.combine(ct, shares));
  }
}
BENCHMARK(BM_Tdh2Combine)->Arg(4)->Arg(16);

// ---- generalized structures ----------------------------------------------------

void BM_CoinShareExample1Lsss(benchmark::State& state) {
  Rng rng(4);
  auto scheme = std::make_shared<adversary::LsssScheme>(adversary::example1_access(), 9);
  auto deal = CoinDeal::deal(Group::test_group(), scheme, rng);
  Bytes name = bytes_of("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.secret_keys[0].share(deal.public_key, name, rng));
  }
}
BENCHMARK(BM_CoinShareExample1Lsss);

void BM_CoinCombineExample1Lsss(benchmark::State& state) {
  Rng rng(4);
  auto scheme = std::make_shared<adversary::LsssScheme>(adversary::example1_access(), 9);
  auto deal = CoinDeal::deal(Group::test_group(), scheme, rng);
  Bytes name = bytes_of("bench");
  std::vector<CoinShare> shares;
  for (int p : {0, 4, 8}) {
    for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].share(deal.public_key, name,
                                                                       rng)) {
      shares.push_back(s);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.combine(name, shares));
  }
}
BENCHMARK(BM_CoinCombineExample1Lsss);

void BM_DealerFullBundle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KeyBundle::deal_threshold(n, t, rng));
  }
}
BENCHMARK(BM_DealerFullBundle)->Arg(4)->Arg(16)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
