// Experiment E7 — threshold-cryptography micro-benchmarks
// (google-benchmark): the primitives the paper calls "quite practical
// given current processor speed" (§2), plus robustness overhead (share
// verification) and the generalized-LSSS variants.
//
// One benchmark per operation: coin share/verify/combine, threshold-RSA
// sign-share/verify/combine, TDH2 encrypt/decrypt-share/verify/combine —
// at threshold (n, t) configurations and over the Example 1 LSSS.
// Discrete-log benchmarks run per group backend (test/big Schnorr,
// secp256k1); the backend name is attached as the benchmark label so
// run_bench.sh can compare backends at fixed (benchmark, args).
#include <benchmark/benchmark.h>

#include "adversary/examples.hpp"
#include "crypto/dealer.hpp"
#include "crypto/group_schnorr.hpp"
#include "crypto/nizk.hpp"
#include "crypto/shamir.hpp"

using namespace sintra;
using namespace sintra::crypto;

namespace {

std::shared_ptr<const LinearScheme> scheme_for(int n, int t) {
  return std::make_shared<ThresholdScheme>(n, t);
}

// Backend selector shared by all discrete-log benchmarks:
//   0 = test Schnorr (256/128), 1 = big Schnorr (1536/256), 2 = secp256k1.
GroupPtr group_for(std::int64_t which) {
  switch (which) {
    case 0: return Group::test_group();
    case 1: return Group::big_group();
    default: return Group::curve_group();
  }
}

void label_backend(benchmark::State& state, const Group& g) { state.SetLabel(g.name()); }

// ---- modular-exponentiation substrate ---------------------------------------
// Arg(0): backend selector (see group_for).

void BM_ExpFixedBaseG(benchmark::State& state) {
  GroupPtr g = group_for(state.range(0));
  label_backend(state, *g);
  Rng rng(10);
  const BigInt s = g->random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->exp_g(s));
  }
}
BENCHMARK(BM_ExpFixedBaseG)->Arg(0)->Arg(1)->Arg(2);

void BM_ExpGenericBase(benchmark::State& state) {
  GroupPtr g = group_for(state.range(0));
  label_backend(state, *g);
  Rng rng(10);
  const Element base = g->exp_g(g->random_scalar(rng));
  const BigInt s = g->random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->exp(base, s));
  }
}
BENCHMARK(BM_ExpGenericBase)->Arg(0)->Arg(1)->Arg(2);

void BM_ExpReferencePath(benchmark::State& state) {
  // Schoolbook modular exponentiation; Schnorr-representation only (the
  // curve backend has no Z_p* reference path).
  auto g = state.range(0) == 0 ? SchnorrGroup::test() : SchnorrGroup::big();
  label_backend(state, *g);
  Rng rng(10);
  const BigInt base = g->exp_g(g->random_scalar(rng)).residue();
  const BigInt s = g->random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigInt::pow_mod_reference(base, s, g->p()));
  }
}
BENCHMARK(BM_ExpReferencePath)->Arg(0)->Arg(1);

void BM_Exp2(benchmark::State& state) {
  GroupPtr g = group_for(state.range(0));
  label_backend(state, *g);
  Rng rng(10);
  const Element b1 = g->exp_g(g->random_scalar(rng));
  const Element b2 = g->exp_g(g->random_scalar(rng));
  const BigInt e1 = g->random_scalar(rng);
  const BigInt e2 = g->random_scalar(rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->exp2(b1, e1, b2, e2));
  }
}
BENCHMARK(BM_Exp2)->Arg(0)->Arg(1)->Arg(2);

void BM_MultiExp(benchmark::State& state) {
  GroupPtr g = group_for(state.range(1));
  label_backend(state, *g);
  Rng rng(10);
  std::vector<std::pair<Element, BigInt>> pairs;
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    pairs.emplace_back(g->exp_g(g->random_scalar(rng)), g->random_scalar(rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(g->multi_exp(pairs));
  }
}
BENCHMARK(BM_MultiExp)
    ->Args({2, 0})->Args({5, 0})->Args({11, 0})
    ->Args({2, 2})->Args({5, 2})->Args({11, 2})->Args({33, 2});

// DLEQ proof verification — the primitive under every coin/TDH2 share
// check.  Arg(0): 1 = all statement bases are
// long-lived registered keys served by fixed-base tables (the shape of
// repeated verification against a fixed key set), 0 = all bases fresh
// (worst case: nothing precomputable; the coin/TDH2 verify benches
// cover the mixed shape with one fresh base per equation).
// Arg(1): backend selector.
void BM_DleqVerify(benchmark::State& state) {
  GroupPtr g = group_for(state.range(1));
  label_backend(state, *g);
  const bool registered = state.range(0) != 0;
  Rng rng(11);
  const BigInt x = g->random_scalar(rng);
  const Element g1 = registered ? g->g() : g->hash_to_element("bench/dleq/g1", bytes_of("1"));
  const Element g2 = g->hash_to_element("bench/dleq/g2", bytes_of("2"));
  const Element h1 = g->exp(g1, x);
  const Element h2 = g->exp(g2, x);
  if (registered) {
    g->precompute_base(h1);
    g->precompute_base(g2);
    g->precompute_base(h2);
  }
  auto proof = DleqProof::prove(*g, "bench/dleq", g1, h1, g2, h2, x, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(proof.verify(*g, "bench/dleq", g1, h1, g2, h2));
  }
}
BENCHMARK(BM_DleqVerify)
    ->Args({1, 0})->Args({1, 1})->Args({1, 2})->Args({0, 1})->Args({0, 2});

// ---- coin -------------------------------------------------------------------
// Arg(0): n (t = (n-1)/3).  Arg(1): backend selector.

void BM_CoinShare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  GroupPtr g = group_for(state.range(1));
  label_backend(state, *g);
  Rng rng(1);
  auto deal = CoinDeal::deal(g, scheme_for(n, t), rng);
  Bytes name = bytes_of("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.secret_keys[0].share(deal.public_key, name, rng));
  }
}
BENCHMARK(BM_CoinShare)
    ->Args({4, 0})->Args({7, 0})->Args({10, 0})->Args({16, 0})
    ->Args({4, 1})->Args({4, 2})->Args({16, 2});

void BM_CoinVerifyShare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  GroupPtr g = group_for(state.range(1));
  label_backend(state, *g);
  Rng rng(1);
  auto deal = CoinDeal::deal(g, scheme_for(n, t), rng);
  Bytes name = bytes_of("bench");
  auto shares = deal.secret_keys[0].share(deal.public_key, name, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.verify_share(name, shares[0]));
  }
}
BENCHMARK(BM_CoinVerifyShare)
    ->Args({4, 0})->Args({16, 0})->Args({4, 1})->Args({4, 2})->Args({16, 2});

void BM_CoinCombine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  GroupPtr g = group_for(state.range(1));
  label_backend(state, *g);
  Rng rng(1);
  auto deal = CoinDeal::deal(g, scheme_for(n, t), rng);
  Bytes name = bytes_of("bench");
  std::vector<CoinShare> shares;
  for (int p = 0; p <= t; ++p) {
    for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].share(deal.public_key, name,
                                                                       rng)) {
      shares.push_back(s);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.combine(name, shares));
  }
}
BENCHMARK(BM_CoinCombine)
    ->Args({4, 0})->Args({7, 0})->Args({10, 0})->Args({16, 0})
    ->Args({4, 1})->Args({4, 2})->Args({16, 2});

// ---- threshold RSA signatures ------------------------------------------------
// RSA works in Z_Nm*, independent of the Group backend — no curve arms.

void BM_SigShare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  Rng rng(2);
  auto deal = ThresholdSigDeal::deal(RsaParams::precomputed(256), scheme_for(n, t), rng);
  Bytes message = bytes_of("sign this");
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.secret_keys[0].sign(deal.public_key, message, rng));
  }
}
BENCHMARK(BM_SigShare)->Arg(4)->Arg(16);

void BM_SigVerifyShare(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  Rng rng(2);
  auto deal = ThresholdSigDeal::deal(RsaParams::precomputed(256), scheme_for(n, t), rng);
  Bytes message = bytes_of("sign this");
  auto shares = deal.secret_keys[0].sign(deal.public_key, message, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.verify_share(message, shares[0]));
  }
}
BENCHMARK(BM_SigVerifyShare)->Arg(4)->Arg(16);

void BM_SigCombine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  Rng rng(2);
  auto deal = ThresholdSigDeal::deal(RsaParams::precomputed(256), scheme_for(n, t), rng);
  Bytes message = bytes_of("sign this");
  std::vector<SigShare> shares;
  for (int p = 0; p <= t; ++p) {
    for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].sign(deal.public_key,
                                                                      message, rng)) {
      shares.push_back(s);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.combine(message, shares));
  }
}
BENCHMARK(BM_SigCombine)->Arg(4)->Arg(7)->Arg(10)->Arg(16);

void BM_SigVerifyCombined(benchmark::State& state) {
  Rng rng(2);
  auto deal = ThresholdSigDeal::deal(RsaParams::precomputed(256), scheme_for(4, 1), rng);
  Bytes message = bytes_of("sign this");
  std::vector<SigShare> shares;
  for (int p = 0; p <= 1; ++p) {
    for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].sign(deal.public_key,
                                                                      message, rng)) {
      shares.push_back(s);
    }
  }
  auto sig = deal.public_key.combine(message, shares);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.verify(message, *sig));
  }
}
BENCHMARK(BM_SigVerifyCombined);

// ---- TDH2 --------------------------------------------------------------------
// Arg layout as for the coin: trailing arg selects the backend.

void BM_Tdh2Encrypt(benchmark::State& state) {
  GroupPtr g = group_for(state.range(1));
  label_backend(state, *g);
  Rng rng(3);
  auto deal = Tdh2Deal::deal(g, scheme_for(4, 1), rng);
  Bytes message(static_cast<std::size_t>(state.range(0)), 0xaa);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.encrypt(message, bytes_of("l"), rng));
  }
}
BENCHMARK(BM_Tdh2Encrypt)->Args({32, 0})->Args({1024, 0})->Args({32, 2})->Args({1024, 2});

void BM_Tdh2DecShare(benchmark::State& state) {
  GroupPtr g = group_for(state.range(0));
  label_backend(state, *g);
  Rng rng(3);
  auto deal = Tdh2Deal::deal(g, scheme_for(4, 1), rng);
  auto ct = deal.public_key.encrypt(bytes_of("message"), bytes_of("l"), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.secret_keys[0].decrypt_shares(deal.public_key, ct, rng));
  }
}
BENCHMARK(BM_Tdh2DecShare)->Arg(0)->Arg(1)->Arg(2);

void BM_Tdh2VerifyShare(benchmark::State& state) {
  GroupPtr g = group_for(state.range(0));
  label_backend(state, *g);
  Rng rng(3);
  auto deal = Tdh2Deal::deal(g, scheme_for(4, 1), rng);
  auto ct = deal.public_key.encrypt(bytes_of("message"), bytes_of("l"), rng);
  auto shares = deal.secret_keys[0].decrypt_shares(deal.public_key, ct, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.verify_share(ct, shares[0]));
  }
}
BENCHMARK(BM_Tdh2VerifyShare)->Arg(0)->Arg(1)->Arg(2);

void BM_Tdh2Combine(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  GroupPtr g = group_for(state.range(1));
  label_backend(state, *g);
  Rng rng(3);
  auto deal = Tdh2Deal::deal(g, scheme_for(n, t), rng);
  auto ct = deal.public_key.encrypt(bytes_of("message"), bytes_of("l"), rng);
  std::vector<Tdh2DecShare> shares;
  for (int p = 0; p <= t; ++p) {
    for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].decrypt_shares(
             deal.public_key, ct, rng)) {
      shares.push_back(s);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.combine(ct, shares));
  }
}
BENCHMARK(BM_Tdh2Combine)->Args({4, 0})->Args({16, 0})->Args({4, 2})->Args({16, 2});

// ---- generalized structures ----------------------------------------------------

void BM_CoinShareExample1Lsss(benchmark::State& state) {
  GroupPtr g = group_for(state.range(0));
  label_backend(state, *g);
  Rng rng(4);
  auto scheme = std::make_shared<adversary::LsssScheme>(adversary::example1_access(), 9);
  auto deal = CoinDeal::deal(g, scheme, rng);
  Bytes name = bytes_of("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.secret_keys[0].share(deal.public_key, name, rng));
  }
}
BENCHMARK(BM_CoinShareExample1Lsss)->Arg(0)->Arg(2);

void BM_CoinCombineExample1Lsss(benchmark::State& state) {
  GroupPtr g = group_for(state.range(0));
  label_backend(state, *g);
  Rng rng(4);
  auto scheme = std::make_shared<adversary::LsssScheme>(adversary::example1_access(), 9);
  auto deal = CoinDeal::deal(g, scheme, rng);
  Bytes name = bytes_of("bench");
  std::vector<CoinShare> shares;
  for (int p : {0, 4, 8}) {
    for (auto& s : deal.secret_keys[static_cast<std::size_t>(p)].share(deal.public_key, name,
                                                                       rng)) {
      shares.push_back(s);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(deal.public_key.combine(name, shares));
  }
}
BENCHMARK(BM_CoinCombineExample1Lsss)->Arg(0)->Arg(2);

void BM_DealerFullBundle(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int t = (n - 1) / 3;
  GroupPtr g = group_for(state.range(1));
  label_backend(state, *g);
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(KeyBundle::deal_threshold(n, t, rng, g));
  }
}
BENCHMARK(BM_DealerFullBundle)
    ->Args({4, 0})->Args({16, 0})->Args({4, 2})->Args({16, 2})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
