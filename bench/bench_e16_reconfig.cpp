// Experiment E16 — online membership reconfiguration: epoch latency.
//
// One reconfiguration epoch = every old member deals a verifiable
// redistribution of its key shares, the dealings and verdicts ride the
// embedded atomic broadcast, and the epoch concludes with a NEW-CONFIG
// announcement signed under the old reply key (PROTOCOLS.md
// "Reconfiguration").  We time the full n=4 -> 5 -> 4 chain the paper's
// long-lived-service story needs: grow by one replica, then shrink back,
// plus the in-place swap (retire one, admit one).  Each timed iteration
// runs the complete epoch over the discrete-event simulator, including
// the joiner's package verification where a joiner exists; the "steps"
// counter reports scheduler steps per epoch (schedule-independent cost),
// wall time reports the crypto-dominated compute cost.
#include <benchmark/benchmark.h>

#include "crypto/sha256.hpp"
#include "protocols/harness.hpp"
#include "protocols/reconfig.hpp"

using namespace sintra;

namespace {

constexpr const char* kTag = "reconfig";

struct ReconfigState {
  std::unique_ptr<protocols::Reconfig> reconfig;
  std::optional<protocols::ReconfigResult> result;
};

/// Out-of-band pairwise secret between old member `dealer` and the joiner
/// filling `slot` — both sides derive it from the same inputs, standing in
/// for the operator provisioning channel.
Bytes join_key(std::uint32_t epoch, int dealer, int slot) {
  Writer w;
  w.u32(epoch);
  w.u32(static_cast<std::uint32_t>(dealer));
  w.u32(static_cast<std::uint32_t>(slot));
  return crypto::hash_expand("bench/e16/join-key", w.data(), 32);
}

protocols::ReconfigPlan make_plan(std::uint32_t epoch, int n_old, int t_old, int t_new,
                                  std::vector<std::int32_t> old_slot) {
  protocols::ReconfigPlan plan;
  plan.new_epoch = epoch;
  plan.n_old = n_old;
  plan.t_old = t_old;
  plan.n_new = static_cast<std::int32_t>(old_slot.size());
  plan.t_new = t_new;
  plan.old_slot = std::move(old_slot);
  return plan;
}

protocols::ReconfigOptions options_for(const protocols::ReconfigPlan& plan, int id) {
  protocols::ReconfigOptions options;
  for (int slot = 0; slot < plan.n_new; ++slot) {
    if (plan.joining(slot)) options.join_keys[slot] = join_key(plan.new_epoch, id, slot);
  }
  return options;
}

struct EpochOutcome {
  bool completed = false;
  std::uint64_t steps = 0;
  std::vector<protocols::ReconfigResult> results;  ///< indexed by new slot
};

/// Run one full epoch over the simulator; joiner slots bootstrap through a
/// JoinListener fed from the first survivor's package.
EpochOutcome run_epoch(const adversary::Deployment& deployment,
                       const protocols::ReconfigPlan& plan, std::uint64_t seed) {
  net::RandomScheduler sched(seed * 3 + 1);
  protocols::Cluster<ReconfigState> cluster(
      deployment, sched,
      [&plan](net::Party& party, int id) {
        auto state = std::make_unique<ReconfigState>();
        state->reconfig = std::make_unique<protocols::Reconfig>(
            party, kTag, plan, std::nullopt, options_for(plan, id),
            [s = state.get()](const protocols::ReconfigResult& r) { s->result = r; });
        return state;
      },
      0, 0, seed);
  cluster.start();
  cluster.for_each([](int, ReconfigState& s) { s.reconfig->start(); });

  EpochOutcome outcome;
  outcome.completed = cluster.run_until_all(
      [](ReconfigState& s) { return s.result.has_value(); }, 60000000);
  outcome.steps = cluster.simulator().now();
  if (!outcome.completed) return outcome;

  outcome.results.resize(static_cast<std::size_t>(plan.n_new));
  int provider = -1;
  for (int old = 0; old < plan.n_old; ++old) {
    const auto& r = *cluster.protocol(old)->result;
    outcome.completed = outcome.completed && r.completed;
    if (r.new_slot >= 0) {
      outcome.results[static_cast<std::size_t>(r.new_slot)] = r;
      if (provider < 0) provider = old;
    }
  }
  const auto& old_public = deployment.keys->public_keys();
  for (int slot = 0; slot < plan.n_new; ++slot) {
    if (!plan.joining(slot)) continue;
    std::map<int, Bytes> keys;
    for (int dealer = 0; dealer < plan.n_old; ++dealer) {
      keys[dealer] = join_key(plan.new_epoch, dealer, slot);
    }
    protocols::JoinListener listener(kTag, slot, std::move(keys), old_public.coin.group_ptr(),
                                     old_public);
    outcome.completed = outcome.completed &&
                        listener.offer(cluster.protocol(provider)->reconfig->join_package(slot)) &&
                        listener.ready();
    if (listener.result().has_value()) {
      outcome.results[static_cast<std::size_t>(slot)] = *listener.result();
    }
  }
  return outcome;
}

/// Full new-committee deployment from an epoch's results (channel keys
/// derived exactly as the protocol prescribes).
adversary::Deployment assemble_committee(const adversary::Deployment& old,
                                         const protocols::ReconfigPlan& plan,
                                         const std::vector<protocols::ReconfigResult>& results) {
  const auto base_key = [&](int a, int b) -> Bytes {
    const int oa = plan.old_slot.at(static_cast<std::size_t>(a));
    const int ob = plan.old_slot.at(static_cast<std::size_t>(b));
    if (oa >= 0 && ob >= 0) {
      return old.keys->share(oa).channel_keys.at(static_cast<std::size_t>(ob));
    }
    if (oa >= 0) return join_key(plan.new_epoch, oa, b);
    return join_key(plan.new_epoch, ob, a);
  };
  std::vector<crypto::PartyKeyShare> shares;
  for (int slot = 0; slot < plan.n_new; ++slot) {
    const auto& r = results.at(static_cast<std::size_t>(slot));
    std::vector<Bytes> channel_keys(static_cast<std::size_t>(plan.n_new));
    for (int peer = 0; peer < plan.n_new; ++peer) {
      if (peer == slot) continue;
      channel_keys[static_cast<std::size_t>(peer)] =
          protocols::reconfig_channel_key(plan.new_epoch, base_key(slot, peer));
    }
    shares.push_back(crypto::PartyKeyShare{
        crypto::CoinSecretKey(slot, {{slot, r.coin_share}}),
        crypto::ThresholdSigSecretKey(slot, {{slot, r.cert_share}}),
        crypto::ThresholdSigSecretKey(slot, {{slot, r.reply_share}}),
        crypto::Tdh2SecretKey(slot, {{slot, r.tdh2_share}}), std::move(channel_keys)});
  }
  const auto& old_public = old.keys->public_keys();
  adversary::Deployment reference = protocols::reconfig_deployment(
      results[0], old_public.coin.group_ptr(), old_public,
      std::vector<Bytes>(static_cast<std::size_t>(plan.n_new)));
  adversary::Deployment committee;
  committee.quorum = reference.quorum;
  committee.keys = std::make_shared<const crypto::KeyBundle>(reference.keys->public_keys(),
                                                             std::move(shares));
  return committee;
}

protocols::ReconfigPlan grow_plan() { return make_plan(1, 4, 1, 1, {0, 1, 2, 3, -1}); }
protocols::ReconfigPlan shrink_plan() { return make_plan(2, 5, 1, 1, {0, 2, 3, 4}); }
protocols::ReconfigPlan swap_plan() { return make_plan(1, 4, 1, 1, {0, 1, 2, -1}); }

void BM_EpochGrow4to5(benchmark::State& state) {
  Rng rng(11);
  const auto deployment = adversary::Deployment::threshold(4, 1, rng);
  std::uint64_t seed = 11;
  std::uint64_t steps = 0, epochs = 0;
  for (auto _ : state) {
    auto outcome = run_epoch(deployment, grow_plan(), seed++);
    if (!outcome.completed) state.SkipWithError("grow epoch failed");
    steps += outcome.steps;
    ++epochs;
    benchmark::DoNotOptimize(outcome);
  }
  if (epochs > 0) state.counters["steps"] = static_cast<double>(steps / epochs);
}

void BM_EpochShrink5to4(benchmark::State& state) {
  // Setup: one grow epoch produces the 5-member committee we shrink.
  Rng rng(13);
  const auto old_deployment = adversary::Deployment::threshold(4, 1, rng);
  auto grow = run_epoch(old_deployment, grow_plan(), 13);
  if (!grow.completed) {
    state.SkipWithError("setup grow epoch failed");
    return;
  }
  const auto committee = assemble_committee(old_deployment, grow_plan(), grow.results);
  std::uint64_t seed = 13;
  std::uint64_t steps = 0, epochs = 0;
  for (auto _ : state) {
    auto outcome = run_epoch(committee, shrink_plan(), seed++);
    if (!outcome.completed) state.SkipWithError("shrink epoch failed");
    steps += outcome.steps;
    ++epochs;
    benchmark::DoNotOptimize(outcome);
  }
  if (epochs > 0) state.counters["steps"] = static_cast<double>(steps / epochs);
}

void BM_EpochSwapReplica(benchmark::State& state) {
  Rng rng(17);
  const auto deployment = adversary::Deployment::threshold(4, 1, rng);
  std::uint64_t seed = 17;
  std::uint64_t steps = 0, epochs = 0;
  for (auto _ : state) {
    auto outcome = run_epoch(deployment, swap_plan(), seed++);
    if (!outcome.completed) state.SkipWithError("swap epoch failed");
    steps += outcome.steps;
    ++epochs;
    benchmark::DoNotOptimize(outcome);
  }
  if (epochs > 0) state.counters["steps"] = static_cast<double>(steps / epochs);
}

BENCHMARK(BM_EpochGrow4to5)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EpochShrink5to4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_EpochSwapReplica)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
