// Experiment E4 — secure causal atomic broadcast defeats front-running
// (paper §3 + §5.2).
//
// A corrupted notary server colludes with a competitor.  Whenever it can
// read the content of a pending registration, it immediately submits a
// copy; the adversarial scheduler then tries to get the copy ordered
// first.  We run the race many times:
//   * over plain atomic broadcast (requests in the clear), counting how
//     often the competitor steals the earlier sequence number;
//   * over secure causal atomic broadcast, where the corrupted server
//     only sees an unmalleable TDH2 ciphertext — the copy attack cannot
//     even be mounted (we also count mauling attempts rejected).
#include <cstdio>

#include "protocols/causal.hpp"
#include "protocols/harness.hpp"

using namespace sintra;

namespace {

constexpr int kVictim = 100;      // inventor's client id (in envelopes)
constexpr int kCompetitor = 200;  // competitor's client id

Bytes make_request(int client) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(client));
  w.bytes(bytes_of("patent claims: warp drive"));
  return w.take();
}

int client_of(BytesView payload) {
  Reader r(payload);
  return static_cast<int>(r.u32());
}

struct PlainState {
  std::unique_ptr<protocols::AtomicBroadcast> abc;
  std::vector<int> order;  // client ids in delivery order
};

/// One race over plain atomic broadcast.  The corrupted server (party 3)
/// "reads" the victim's request the moment the protocol hands it any
/// message carrying it, and immediately submits the competitor's copy.
/// Returns true if the competitor was sequenced first.
bool race_plaintext(std::uint64_t seed) {
  Rng rng(seed);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::StarvePartyScheduler sched(seed, /*victim=*/0);  // starve the inventor's server
  protocols::Cluster<PlainState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<PlainState>();
        s->abc = std::make_unique<protocols::AtomicBroadcast>(
            party, "abc", [p = s.get()](int, Bytes payload) {
              p->order.push_back(client_of(payload));
            });
        return s;
      },
      0, 0, seed);
  cluster.start();
  cluster.protocol(0)->abc->submit(make_request(kVictim));
  // The corrupted server's batch for round 1 will include the copy —
  // plaintext visibility makes the copy instantaneous.
  cluster.protocol(3)->abc->submit(make_request(kCompetitor));
  cluster.run_until_all([](PlainState& s) { return s.order.size() >= 2; }, 20000000);
  const auto& order = cluster.protocol(1)->order;
  return order.size() >= 2 && order[0] == kCompetitor;
}

struct CausalState {
  std::unique_ptr<protocols::SecureCausalBroadcast> sc;
  std::vector<int> order;
};

/// One run over secure causal broadcast: the corrupted server tries to
/// maul the ciphertext into a related one (counted), and otherwise cannot
/// read it; the victim's registration is sequenced untouched.
struct CausalOutcome {
  bool victim_first = false;
  bool maul_rejected = false;
};

CausalOutcome race_encrypted(std::uint64_t seed) {
  Rng rng(seed);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::StarvePartyScheduler sched(seed, /*victim=*/0);
  protocols::Cluster<CausalState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<CausalState>();
        s->sc = std::make_unique<protocols::SecureCausalBroadcast>(
            party, "sc", [p = s.get()](std::uint64_t, Bytes plaintext, Bytes) {
              p->order.push_back(client_of(plaintext));
            });
        return s;
      },
      0, 0, seed);
  cluster.start();

  Rng client_rng(seed * 13 + 1);
  const auto& pk = deployment.keys->public_keys().encryption;
  auto ciphertext = pk.encrypt(make_request(kVictim), bytes_of("notary"), client_rng);
  cluster.protocol(0)->sc->submit(ciphertext);

  CausalOutcome outcome;
  // The corrupted server attempts the CCA attack: derive a related
  // ciphertext from the victim's (e.g. flip plaintext bits through the XOR
  // layer).  TDH2's proof of well-formedness rejects it.
  auto mauled = ciphertext;
  for (auto& b : mauled.data) b ^= 0x01;
  outcome.maul_rejected = !pk.check_ciphertext(mauled);

  cluster.run_until_all([](CausalState& s) { return !s.order.empty(); }, 20000000);
  const auto& order = cluster.protocol(1)->order;
  outcome.victim_first = !order.empty() && order[0] == kVictim;
  return outcome;
}

}  // namespace

int main() {
  const int races = 30;
  std::printf("E4: notary front-running race, %d trials per pipeline\n", races);
  std::printf("Paper claim (§5.2): without encryption a corrupted server can schedule\n"
              "a related request first; with CCA2 threshold encryption it cannot.\n\n");

  int stolen = 0;
  for (int i = 0; i < races; ++i) {
    if (race_plaintext(static_cast<std::uint64_t>(i) * 7 + 3)) ++stolen;
  }
  int victim_first = 0;
  int mauls_rejected = 0;
  for (int i = 0; i < races; ++i) {
    auto outcome = race_encrypted(static_cast<std::uint64_t>(i) * 7 + 3);
    if (outcome.victim_first) ++victim_first;
    if (outcome.maul_rejected) ++mauls_rejected;
  }

  std::printf("| %-34s | %-22s |\n", "pipeline", "result");
  std::printf("|------------------------------------|------------------------|\n");
  std::printf("| %-34s | front-run in %2d/%2d     |\n", "atomic broadcast (plaintext)",
              stolen, races);
  std::printf("| %-34s | victim first in %2d/%2d  |\n",
              "secure causal a.b. (TDH2)", victim_first, races);
  std::printf("| %-34s | %2d/%2d rejected         |\n",
              "  ...ciphertext mauling attempts", mauls_rejected, races);
  std::printf("\nShape check: plaintext pipeline front-run in a substantial fraction of\n"
              "trials (scheduler-dependent); encrypted pipeline NEVER loses the race\n"
              "and rejects every mauling attempt.\n");
  return victim_first == races && mauls_rejected == races ? 0 : 1;
}
