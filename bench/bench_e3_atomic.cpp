// Experiment E3 — atomic broadcast: total order, liveness and fairness.
//
// Paper claims (§3): all honest parties deliver all payloads in the same
// order; "a message broadcast by an honest party cannot be delayed
// arbitrarily by the adversary once it is known to t+1 honest parties"
// (fairness).  We sweep n, apply benign and hostile schedulers, inject
// crash faults, and report delivery latency (in scheduler steps), per-
// payload message cost, and whether the victim party's payload (under a
// starvation scheduler) still got through.
#include <cstdio>

#include "protocols/atomic.hpp"
#include "protocols/harness.hpp"

using namespace sintra;

namespace {

struct AbcState {
  std::unique_ptr<protocols::AtomicBroadcast> abc;
  std::vector<Bytes> log;
};

struct Row {
  bool all_delivered = false;
  bool order_ok = true;
  bool victim_payload_delivered = false;
  double steps_per_payload = 0;
  double msgs_per_payload = 0;
};

Row run(int n, int t, int payloads, const char* sched_kind, std::uint64_t seed) {
  Rng rng(seed);
  auto deployment = adversary::Deployment::threshold(n, t, rng);
  std::unique_ptr<net::Scheduler> sched;
  if (std::string(sched_kind) == "random") {
    sched = std::make_unique<net::RandomScheduler>(seed);
  } else if (std::string(sched_kind) == "lifo") {
    sched = std::make_unique<net::LifoScheduler>(seed);
  } else {
    sched = std::make_unique<net::StarvePartyScheduler>(seed, /*victim=*/0);
  }
  crypto::PartySet corrupted = 0;
  for (int i = 0; i < t; ++i) corrupted |= crypto::party_bit(n - 1 - i);
  protocols::Cluster<AbcState> cluster(
      deployment, *sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<AbcState>();
        s->abc = std::make_unique<protocols::AtomicBroadcast>(
            party, "abc",
            [p = s.get()](int, Bytes payload) { p->log.push_back(std::move(payload)); });
        return s;
      },
      corrupted, 0, seed);
  cluster.start();
  // Victim (party 0) submits payload 0; the rest spread across parties.
  for (int k = 0; k < payloads; ++k) {
    int submitter = k % (n - t);
    cluster.protocol(submitter)->abc->submit(bytes_of("pay" + std::to_string(k)));
  }
  Row row;
  row.all_delivered = cluster.run_until_all(
      [&](AbcState& s) { return s.log.size() >= static_cast<std::size_t>(payloads); },
      100000000);
  const auto& reference = cluster.protocol(0)->log;
  cluster.for_each([&](int, AbcState& s) {
    if (s.log != reference) row.order_ok = false;
  });
  for (const Bytes& b : reference) {
    if (b == bytes_of("pay0")) row.victim_payload_delivered = true;
  }
  row.steps_per_payload = static_cast<double>(cluster.simulator().now()) / payloads;
  row.msgs_per_payload = static_cast<double>(cluster.simulator().total_messages()) / payloads;
  return row;
}

}  // namespace

int main() {
  const int payloads = 8;
  std::printf("E3: atomic broadcast — total order, liveness, fairness (%d payloads,\n"
              "t parties crashed, party 0 is the starvation victim where applicable)\n\n",
              payloads);
  std::printf("| %3s | %2s | %-7s | %-5s | %-5s | %-13s | %11s | %11s |\n", "n", "t",
              "sched", "live", "order", "victim's msg", "steps/pay", "msgs/pay");
  std::printf("|-----|----|---------|-------|-------|---------------|-------------|"
              "-------------|\n");
  for (int n : {4, 7, 10}) {
    const int t = (n - 1) / 3;
    for (const char* kind : {"random", "lifo", "starve0"}) {
      Row row = run(n, t, payloads, kind, static_cast<std::uint64_t>(n) * 31 + 5);
      std::printf("| %3d | %2d | %-7s | %-5s | %-5s | %-13s | %11.0f | %11.1f |\n", n, t,
                  kind, row.all_delivered ? "yes" : "NO",
                  row.order_ok ? "same" : "SPLIT",
                  row.victim_payload_delivered ? "delivered" : "LOST",
                  row.steps_per_payload, row.msgs_per_payload);
    }
  }
  std::printf("\nShape check: liveness and identical order hold for every scheduler,\n"
              "and the starved party's payload is still delivered (fairness): the\n"
              "adversary can reorder but not exclude, matching the paper's claim.\n");
  return 0;
}
