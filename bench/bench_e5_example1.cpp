// Experiment E5 — the paper's Example 1 (§4.3): nine servers, one
// 4-valued attribute, adversary structure A1 = "any two servers OR all
// servers of one class".
//
// Regenerated claims:
//   * A1* has exactly 31 maximal sets ({class a} + all pairs not both in
//     class a) and satisfies Q³;
//   * the system stays live and safe under EVERY maximal corruption set
//     of A1 — verified by running atomic broadcast under each of the 31
//     (crash) corruption patterns;
//   * a pure threshold deployment on the same 9 servers (t = 2, the Q³
//     maximum) stalls when the whole 4-server class a fails.
#include <cstdio>

#include "adversary/examples.hpp"
#include "protocols/atomic.hpp"
#include "protocols/harness.hpp"

using namespace sintra;

namespace {

struct AbcState {
  std::unique_ptr<protocols::AtomicBroadcast> abc;
  std::vector<Bytes> log;
};

template <typename MakeDeployment>
bool run_with_corruption(MakeDeployment&& make_deployment, crypto::PartySet corrupted,
                         std::uint64_t seed, std::uint64_t budget) {
  Rng rng(seed);
  auto deployment = make_deployment(rng);
  net::RandomScheduler sched(seed);
  protocols::Cluster<AbcState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<AbcState>();
        s->abc = std::make_unique<protocols::AtomicBroadcast>(
            party, "abc",
            [p = s.get()](int, Bytes payload) { p->log.push_back(std::move(payload)); });
        return s;
      },
      corrupted, 0, seed);
  cluster.start();
  // Two honest submitters (pick the lowest honest ids).
  int found = 0;
  for (int id = 0; id < 9 && found < 2; ++id) {
    if (cluster.protocol(id) != nullptr) {
      cluster.protocol(id)->abc->submit(bytes_of("m" + std::to_string(id)));
      ++found;
    }
  }
  bool live = cluster.run_until_all([](AbcState& s) { return s.log.size() >= 2; }, budget);
  if (!live) return false;
  const std::vector<Bytes>* reference = nullptr;
  bool safe = true;
  cluster.for_each([&](int, AbcState& s) {
    if (reference == nullptr) reference = &s.log;
    else if (s.log != *reference) safe = false;
  });
  return safe;
}

}  // namespace

int main() {
  auto structure = adversary::example1_access().to_adversary_structure(9);
  std::printf("E5: Example 1 — 9 servers, classes a={0..3} b={4,5} c={6,7} d={8}\n\n");
  std::printf("structure: |A1*| = %zu maximal sets (paper: 31), Q3 = %s, max "
              "corruptions = %d, best threshold = t = %d\n\n",
              structure.maximal_sets().size(), structure.satisfies_q3() ? "yes" : "NO",
              structure.max_corruptions(), structure.best_q3_threshold());

  // Run atomic broadcast under every maximal corruption set of A1.
  int live_and_safe = 0;
  int total = 0;
  for (crypto::PartySet bad : structure.maximal_sets()) {
    ++total;
    const bool ok = run_with_corruption(
        [](Rng& rng) { return adversary::example1_deployment(rng); }, bad,
        static_cast<std::uint64_t>(total) * 17 + 1, 60000000);
    if (ok) ++live_and_safe;
    else std::printf("  FAILURE under corruption set %llx\n",
                     static_cast<unsigned long long>(bad));
  }
  std::printf("| %-44s | %9s |\n", "configuration", "outcome");
  std::printf("|----------------------------------------------|-----------|\n");
  std::printf("| %-44s | %4d/%-4d |\n",
              "generalized A1: all 31 maximal corruption sets", live_and_safe, total);

  // Threshold baseline: t = 2 is the Q3 maximum for n = 9; crash class a
  // (4 servers) and watch it stall.
  crypto::PartySet class_a =
      crypto::party_bit(0) | crypto::party_bit(1) | crypto::party_bit(2) | crypto::party_bit(3);
  const bool threshold_survives = run_with_corruption(
      [](Rng& rng) { return adversary::Deployment::threshold(9, 2, rng); }, class_a, 99,
      4000000);
  std::printf("| %-44s | %9s |\n", "threshold t=2: class a (4 servers) crashed",
              threshold_survives ? "live?!" : "STALLS");
  const bool general_survives = run_with_corruption(
      [](Rng& rng) { return adversary::example1_deployment(rng); }, class_a, 99, 60000000);
  std::printf("| %-44s | %9s |\n", "generalized A1: class a (4 servers) crashed",
              general_survives ? "live+safe" : "FAILS");

  std::printf("\nShape check: the generalized deployment survives all 31 maximal sets\n"
              "(incl. 4 simultaneous failures), while the best threshold config (t=2)\n"
              "cannot survive the class-a pattern — the paper's Example 1 claims.\n");
  return (live_and_safe == total && general_survives && !threshold_survives) ? 0 : 1;
}
