// Experiment F1 — regenerates the paper's Figure 1 comparison as a
// measured table.
//
// Paper claim: this architecture (randomized, coin-based) achieves BOTH
// liveness and safety in a fully asynchronous network where the adversary
// schedules messages; deterministic FD-based systems (CL99-style) stay
// safe but lose liveness when the adversary blocks whichever party is
// leader; reliable-broadcast-only systems (MMR-style) deliver but cannot
// keep replicated state consistent (no total order).  CL99 is cheaper in
// failure-free runs — that is its selling point and is reproduced too.
//
// Output: one row per (system, scenario) with delivered counts, order
// consistency, messages.
#include <cstdio>

#include "protocols/atomic.hpp"
#include "protocols/baselines/pbft_like.hpp"
#include "protocols/baselines/reliable_only.hpp"
#include "protocols/harness.hpp"

using namespace sintra;

namespace {

struct Outcome {
  std::uint64_t min_delivered = 0;   // fewest deliveries at any honest party
  bool order_consistent = true;
  std::uint64_t messages = 0;
  std::uint64_t steps = 0;
};

constexpr int kN = 4;
constexpr int kT = 1;
constexpr int kPayloads = 4;

enum class Scenario { kBenign, kBlockLeader };

std::unique_ptr<net::Scheduler> make_scheduler(Scenario scenario, int* leader_box) {
  if (scenario == Scenario::kBenign) return std::make_unique<net::RandomScheduler>(7);
  return std::make_unique<net::BlockPartyScheduler>(
      7, [leader_box](std::uint64_t) { return *leader_box; });
}

template <typename State>
Outcome finish(protocols::Cluster<State>& cluster,
               const std::function<std::vector<Bytes>(State&)>& log_of,
               crypto::PartySet unreachable = 0) {
  // Parties in `unreachable` are cut off by the network adversary; they
  // count as unavailable, not as a liveness failure of the system.
  Outcome out;
  out.messages = cluster.simulator().total_messages();
  out.steps = cluster.simulator().now();
  std::optional<std::vector<Bytes>> reference;
  out.min_delivered = ~0ULL;
  cluster.for_each([&](int id, State& s) {
    if (crypto::contains(unreachable, id)) return;
    auto log = log_of(s);
    out.min_delivered = std::min(out.min_delivered, static_cast<std::uint64_t>(log.size()));
    if (!reference.has_value()) {
      reference = log;
    } else {
      std::size_t common = std::min(reference->size(), log.size());
      for (std::size_t i = 0; i < common; ++i) {
        if ((*reference)[i] != log[i]) out.order_consistent = false;
      }
    }
  });
  return out;
}

struct SintraState {
  std::unique_ptr<protocols::AtomicBroadcast> abc;
  std::vector<Bytes> log;
};

Outcome run_sintra(Scenario scenario) {
  Rng rng(1);
  auto deployment = adversary::Deployment::threshold(kN, kT, rng);
  int leader = 0;  // "blocking the leader" = blocking party 0; SINTRA has none
  auto sched = make_scheduler(scenario, &leader);
  protocols::Cluster<SintraState> cluster(
      deployment, *sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<SintraState>();
        s->abc = std::make_unique<protocols::AtomicBroadcast>(
            party, "abc",
            [p = s.get()](int, Bytes payload) { p->log.push_back(std::move(payload)); });
        return s;
      });
  cluster.start();
  for (int k = 0; k < kPayloads; ++k) {
    int submitter = 1 + k % 2;  // reachable submitters only
    cluster.protocol(submitter)->abc->submit(bytes_of("req" + std::to_string(k)));
  }
  cluster.simulator().run(30000000);
  return finish<SintraState>(cluster, [](SintraState& s) { return s.log; },
                             scenario == Scenario::kBlockLeader ? crypto::party_bit(0) : 0);
}

struct PbftState {
  std::unique_ptr<protocols::PbftLikeBroadcast> pbft;
  std::vector<Bytes> log;
};

Outcome run_pbft(Scenario scenario) {
  Rng rng(1);
  auto deployment = adversary::Deployment::threshold(kN, kT, rng);
  int leader = 0;
  auto sched = make_scheduler(scenario, &leader);
  protocols::Cluster<PbftState> cluster(
      deployment, *sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<PbftState>();
        s->pbft = std::make_unique<protocols::PbftLikeBroadcast>(
            party, "pbft",
            [p = s.get()](Bytes payload) { p->log.push_back(std::move(payload)); });
        return s;
      });
  cluster.start();
  for (int k = 0; k < kPayloads; ++k) {
    cluster.protocol(1 + k % 2)->pbft->submit(bytes_of("req" + std::to_string(k)));
  }
  if (scenario == Scenario::kBlockLeader) {
    // The failure detector keeps firing; the adversary observes the view
    // changes and instantly retargets each new leader — the paper's
    // adaptive-delay attack (§2.2).
    int timeouts_fired = 0;
    for (std::uint64_t step = 0; step < 100000; ++step) {
      if (!cluster.simulator().step()) {
        if (++timeouts_fired > 10) break;
        cluster.for_each([](int, PbftState& s) { s.pbft->on_timeout(); });
        continue;
      }
      int max_view = 0;
      cluster.for_each([&](int, PbftState& s) {
        max_view = std::max(max_view, s.pbft->view());
      });
      leader = max_view % kN;
    }
  }
  cluster.simulator().run(30000000);
  return finish<PbftState>(cluster, [](PbftState& s) { return s.log; });
}

struct RoState {
  std::unique_ptr<protocols::ReliableOnlyBroadcast> ro;
  std::vector<Bytes> log;
};

Outcome run_reliable_only(Scenario scenario) {
  Rng rng(1);
  auto deployment = adversary::Deployment::threshold(kN, kT, rng);
  int leader = 0;
  auto sched = make_scheduler(scenario, &leader);
  protocols::Cluster<RoState> cluster(
      deployment, *sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<RoState>();
        s->ro = std::make_unique<protocols::ReliableOnlyBroadcast>(
            party, "ro",
            [p = s.get()](int, Bytes payload) { p->log.push_back(std::move(payload)); });
        return s;
      });
  cluster.start();
  for (int k = 0; k < kPayloads; ++k) {
    cluster.protocol(1 + k % 2)->ro->submit(bytes_of("req" + std::to_string(k)));
  }
  cluster.simulator().run(30000000);
  return finish<RoState>(cluster, [](RoState& s) { return s.log; },
                         scenario == Scenario::kBlockLeader ? crypto::party_bit(0) : 0);
}

void print_row(const char* system, const char* scenario, const Outcome& o,
               std::uint64_t expected) {
  const char* liveness = o.min_delivered >= expected ? "live" : "BLOCKED";
  const char* safety = o.order_consistent ? "consistent" : "DIVERGED";
  std::printf("| %-22s | %-13s | %9llu/%llu | %-8s | %-10s | %8llu |\n", system, scenario,
              static_cast<unsigned long long>(o.min_delivered),
              static_cast<unsigned long long>(expected), liveness, safety,
              static_cast<unsigned long long>(o.messages));
}

}  // namespace

int main() {
  std::printf("F1: systems comparison (n=%d, t=%d, %d requests)\n", kN, kT, kPayloads);
  std::printf("Paper claims: this work = live+safe under any schedule; CL99-style = safe\n"
              "but blockable (FD for liveness); reliable-bcast-only = no total order.\n\n");
  std::printf("| %-22s | %-13s | %12s | %-8s | %-10s | %8s |\n", "system", "scenario",
              "delivered", "liveness", "order", "messages");
  std::printf("|------------------------|---------------|--------------|----------|"
              "------------|----------|\n");

  print_row("this work (SINTRA)", "benign", run_sintra(Scenario::kBenign), kPayloads);
  print_row("this work (SINTRA)", "block leader", run_sintra(Scenario::kBlockLeader),
            kPayloads);
  print_row("CL99-style (det. FD)", "benign", run_pbft(Scenario::kBenign), kPayloads);
  print_row("CL99-style (det. FD)", "block leader", run_pbft(Scenario::kBlockLeader),
            kPayloads);
  print_row("MMR-style (rel. only)", "benign", run_reliable_only(Scenario::kBenign),
            kPayloads);
  print_row("MMR-style (rel. only)", "block leader",
            run_reliable_only(Scenario::kBlockLeader), kPayloads);

  std::printf("\nNotes: 'block leader' withholds all traffic of party 0 (and, for the\n"
              "FD baseline, of each successive leader after every view change).  The\n"
              "randomized stack needs no leader, so blocking one party costs nothing.\n"
              "CL99's benign-run message count is the lowest — its selling point.\n");
  return 0;
}
