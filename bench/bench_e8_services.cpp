// Experiment E8 — end-to-end trusted services (paper §5): the CA,
// directory and notary answer correctly, with client-verifiable threshold
// signatures, despite t corrupted servers; the client needs only the
// single service public key.
//
// Reports per-request cost (simulator steps, messages) per service and
// failure pattern.
#include <cstdio>

#include "app/ca.hpp"
#include "app/client.hpp"
#include "app/directory.hpp"
#include "app/notary.hpp"
#include "protocols/harness.hpp"

using namespace sintra;

namespace {

struct SvcState {
  std::unique_ptr<app::Replica> replica;
};

struct Row {
  bool completed = false;
  bool receipt_valid = false;
  std::uint64_t steps = 0;
  std::uint64_t messages = 0;
};

Row run_service(const char* service, bool with_crash, std::uint64_t seed) {
  Rng rng(seed);
  auto deployment = adversary::Deployment::threshold(4, 1, rng);
  net::RandomScheduler sched(seed);
  const bool causal = std::string(service) == "notary";
  const auto mode = causal ? app::Replica::Mode::kCausal : app::Replica::Mode::kAtomic;
  protocols::Cluster<SvcState> cluster(
      deployment, sched,
      [&](net::Party& party, int) {
        auto s = std::make_unique<SvcState>();
        std::unique_ptr<app::StateMachine> machine;
        if (std::string(service) == "ca") {
          machine = std::make_unique<app::CertificationAuthority>();
        } else if (std::string(service) == "directory") {
          machine = std::make_unique<app::SecureDirectory>();
        } else {
          machine = std::make_unique<app::Notary>();
        }
        s->replica = std::make_unique<app::Replica>(party, "svc", mode, std::move(machine));
        return s;
      },
      with_crash ? crypto::party_bit(1) : 0, /*extra_endpoints=*/1, seed);

  std::map<std::uint64_t, app::ServiceClient::Receipt> receipts;
  auto client_owner = std::make_unique<app::ServiceClient>(
      cluster.simulator(), 4, deployment, "svc", mode, seed + 3,
      [&](std::uint64_t id, app::ServiceClient::Receipt receipt) {
        receipts.emplace(id, std::move(receipt));
      });
  app::ServiceClient* client = client_owner.get();
  cluster.attach_client(4, std::move(client_owner));
  cluster.start();

  Bytes body;
  if (std::string(service) == "ca") {
    app::CaRequest issue;
    issue.op = app::CaRequest::Op::kIssue;
    issue.subject = "bench";
    issue.credentials = "credential:bench";
    body = issue.encode();
  } else if (std::string(service) == "directory") {
    app::DirRequest bind;
    bind.op = app::DirRequest::Op::kBind;
    bind.key = "k";
    bind.value = bytes_of("v");
    body = bind.encode();
  } else {
    app::NotaryRequest reg;
    reg.op = app::NotaryRequest::Op::kRegister;
    reg.document = bytes_of("bench doc");
    body = reg.encode();
  }

  std::uint64_t id = client->request(Bytes(body));
  Row row;
  row.completed =
      cluster.simulator().run_until([&] { return receipts.contains(id); }, 50000000);
  if (row.completed) {
    row.receipt_valid = client->verify_receipt(id, body, receipts.at(id));
  }
  row.steps = cluster.simulator().now();
  row.messages = cluster.simulator().total_messages();
  return row;
}

}  // namespace

int main() {
  std::printf("E8: replicated trusted services end-to-end (n=4, t=1; one request)\n");
  std::printf("Paper claims (§5): same answer from all honest replicas; client\n"
              "recombines signature shares into one service signature; the notary\n"
              "runs over secure causal broadcast.\n\n");
  std::printf("| %-10s | %-9s | %-9s | %-14s | %8s | %8s |\n", "service", "faults",
              "completed", "receipt", "steps", "msgs");
  std::printf("|------------|-----------|-----------|----------------|----------|----------|\n");
  bool all_ok = true;
  for (const char* service : {"ca", "directory", "notary"}) {
    for (bool with_crash : {false, true}) {
      Row row = run_service(service, with_crash, with_crash ? 21 : 11);
      all_ok = all_ok && row.completed && row.receipt_valid;
      std::printf("| %-10s | %-9s | %-9s | %-14s | %8llu | %8llu |\n", service,
                  with_crash ? "1 crash" : "none", row.completed ? "yes" : "NO",
                  row.receipt_valid ? "verifies" : "INVALID",
                  static_cast<unsigned long long>(row.steps),
                  static_cast<unsigned long long>(row.messages));
    }
  }
  std::printf("\nShape check: every service completes with a verifiable threshold-signed\n"
              "receipt, with and without a crashed replica; the notary (causal) costs\n"
              "more messages than the CA/directory (atomic) — the price of the TDH2\n"
              "decryption round the paper describes.\n");
  return all_ok ? 0 : 1;
}
