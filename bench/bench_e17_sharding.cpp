// Experiment E17 — sharded multi-group operation (google-benchmark).
//
// Four machines, each one NetworkedNode hosting S independent SINTRA
// groups (distinct dealt keys per group) over ONE LoopbackHub link mesh,
// with ONE machine-wide ExecutorPool per node shared by every tenant.
// Each group runs a full atomic broadcast; the benchmark measures
// submit-to-last-delivery for S * K payloads, so items/s is the AGGREGATE
// committed request rate across shards — the number the shard-scaling
// acceptance gate reads at S = 1, 2, 4, 8.
//
// Because group ids ride per record inside the coalesced BATCH
// super-frames (wire v4), multiplexing S groups adds zero frames: the
// payloads-per-batch counter reported per row proves multi-shard flushes
// still cost one HMAC (and on TCP one sendmsg) per link flush.
//
// On a 1-core container the curve collapses to ~1x — the CI bench runner
// (>= 4 CPUs) produces the real scaling numbers for BENCH_E17.json.
#include <benchmark/benchmark.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "adversary/quorum.hpp"
#include "common/executor.hpp"
#include "net/transport/loopback.hpp"
#include "net/transport/networked_node.hpp"
#include "protocols/atomic.hpp"
#include "protocols/harness.hpp"

using namespace sintra;

namespace {

using common::ExecutorPool;
using net::transport::LoopbackHub;
using net::transport::NetworkedNode;
using protocols::AtomicBroadcast;
using protocols::HostedParty;

constexpr int kN = 4;
constexpr std::size_t kPayloadsPerShard = 4;

struct ShardAbcState {
  std::unique_ptr<AtomicBroadcast> abc;
  std::atomic<std::size_t> delivered{0};  ///< read by the pump's done()
};

/// Four machines × S tenants.  Every tenant of a machine shares that
/// machine's NetworkedNode (transport link, pump, timers) and its
/// ExecutorPool; lanes are salted by group id so two shards running the
/// same protocol tag spread across cores instead of colliding.
struct ShardedBenchCluster {
  LoopbackHub hub;
  std::vector<std::unique_ptr<NetworkedNode>> nodes;
  /// hosts[node][shard]
  std::vector<std::vector<std::unique_ptr<HostedParty<ShardAbcState>>>> hosts;
  // Declared last: pools stop (draining tasks that touch parties and
  // nodes) before anything they reference is destroyed.
  std::vector<std::unique_ptr<ExecutorPool>> execs;

  ShardedBenchCluster(const std::vector<adversary::Deployment>& deployments,
                      std::uint64_t seed, std::size_t executors)
      : hub(kN, seed) {
    const auto shards = deployments.size();
    for (int id = 0; id < kN; ++id) {
      NetworkedNode::Config config;
      config.node_id = id;
      config.n = kN;
      auto node = std::make_unique<NetworkedNode>(config);
      auto pool = std::make_unique<ExecutorPool>(executors);
      std::vector<std::unique_ptr<HostedParty<ShardAbcState>>> tenants;
      for (std::size_t s = 0; s < shards; ++s) {
        auto& endpoint = node->add_group(static_cast<std::uint32_t>(s));
        auto host = std::make_unique<HostedParty<ShardAbcState>>(
            endpoint, id, deployments[s],
            seed * 7919 + static_cast<std::uint64_t>(id) * 131 + s,
            [&pool, s](net::Party& party) {
              party.set_executors(pool.get());
              party.set_lane_group(static_cast<std::uint64_t>(s));
              auto state = std::make_unique<ShardAbcState>();
              party.with_instance("abc", [&party, &state] {
                state->abc = std::make_unique<AtomicBroadcast>(
                    party, "abc", [st = state.get()](int, Bytes) {
                      st->delivered.fetch_add(1, std::memory_order_relaxed);
                    });
              });
              return state;
            });
        endpoint.attach(*host);
        tenants.push_back(std::move(host));
      }
      node->set_executors(pool.get());
      node->bind_transport_batched(
          [this, id](int peer, std::vector<net::transport::GroupPayload> payloads) {
            hub.send_many(id, peer, std::move(payloads));
          });
      hub.set_receiver(id, [raw = node.get()](int from, std::uint32_t group, BytesView payload) {
        raw->on_transport_receive(from, group, payload);
      });
      nodes.push_back(std::move(node));
      hosts.push_back(std::move(tenants));
      execs.push_back(std::move(pool));
    }
  }

  ~ShardedBenchCluster() {
    for (auto& pool : execs) pool->stop();
  }

  bool run_until_each_delivered(std::size_t per_shard, std::size_t max_iters = 50'000'000) {
    auto done = [&] {
      for (auto& tenants : hosts) {
        for (auto& host : tenants) {
          if (host->protocol().delivered.load(std::memory_order_relaxed) < per_shard) {
            return false;
          }
        }
      }
      return true;
    };
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
      if (done()) return true;
      bool progressed = false;
      for (auto& node : nodes) progressed = (node->poll() > 0) || progressed;
      progressed = hub.step() || progressed;
      if (!progressed) {
        for (auto& pool : execs) pool->wait_idle();
        for (auto& node : nodes) node->poll();
        hub.tick();
        std::this_thread::yield();
      }
    }
    return done();
  }
};

void BM_E17ShardedAtomic(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  const std::size_t executors = std::min<std::size_t>(4, std::thread::hardware_concurrency());
  Rng rng(41);
  // Distinct dealt keys per group: each shard is a real independent
  // service, not a replay of one key set.  Dealt once, outside timing.
  std::vector<adversary::Deployment> deployments;
  for (std::size_t s = 0; s < shards; ++s) {
    deployments.push_back(adversary::Deployment::threshold(kN, 1, rng));
  }
  std::uint64_t seed = 1;
  std::uint64_t batches = 0;
  std::uint64_t coalesced = 0;
  bool live = true;
  for (auto _ : state) {
    state.PauseTiming();
    auto cluster = std::make_unique<ShardedBenchCluster>(deployments, ++seed, executors);
    state.ResumeTiming();
    for (std::size_t s = 0; s < shards; ++s) {
      for (std::size_t k = 0; k < kPayloadsPerShard; ++k) {
        auto& host = *cluster->hosts[(s + k) % kN][s];
        host.party().with_instance("abc", [&host, s, k] {
          host.protocol().abc->submit(bytes_of("s" + std::to_string(s) + "/p" + std::to_string(k)));
        });
      }
    }
    live = cluster->run_until_each_delivered(kPayloadsPerShard) && live;
    state.PauseTiming();
    const LoopbackHub::Stats wire = cluster->hub.stats();
    batches += wire.batches_sent;
    coalesced += wire.coalesced_payloads;
    cluster.reset();
    state.ResumeTiming();
  }
  if (!live) state.SkipWithError("sharded atomic broadcast did not deliver");
  // Aggregate committed requests across ALL shards: the scaling gate's
  // numerator.  payloads_per_batch > 1 is the one-HMAC-per-flush proof —
  // multi-shard traffic coalesced instead of fragmenting into frames.
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations() * shards * kPayloadsPerShard));
  state.counters["shards"] = static_cast<double>(shards);
  state.counters["batches"] = static_cast<double>(batches);
  state.counters["payloads_per_batch"] =
      batches == 0 ? 0.0 : static_cast<double>(coalesced) / static_cast<double>(batches);
}
BENCHMARK(BM_E17ShardedAtomic)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
