// Experiment E10 — ablations for the §6 extensions.
//
//  (a) Optimistic vs. randomized atomic broadcast: "optimistic protocols
//      run very fast if no corruptions occur" — messages and steps per
//      delivery on the fast path vs. the full randomized stack, and the
//      one-time cost of switching to the pessimistic mode.
//  (b) Hybrid failure structures: "crashes ... are much easier to handle
//      than Byzantine corruptions" — a 6-server hybrid deployment
//      (t_b = 1, t_c = 1) vs. the 7-server pure-Byzantine deployment
//      (t = 2) that the classical model would need for the same fault
//      count, same workload.
//  (c) Proactive refresh: cost of one share-refresh epoch vs. system size.
#include <cstdio>

#include "adversary/hybrid.hpp"
#include "protocols/harness.hpp"
#include "protocols/optimistic.hpp"
#include "protocols/refresh.hpp"

using namespace sintra;

namespace {

// ---- (a) optimistic vs pessimistic -----------------------------------------

struct OptState {
  std::unique_ptr<protocols::OptimisticBroadcast> opt;
  std::size_t delivered = 0;
};

struct AbcState {
  std::unique_ptr<protocols::AtomicBroadcast> abc;
  std::size_t delivered = 0;
};

void bench_optimistic() {
  const int payloads = 6;
  std::printf("(a) optimistic fast path vs randomized atomic broadcast "
              "(n=4, t=1, %d payloads)\n\n", payloads);
  std::printf("| %-34s | %10s | %10s |\n", "mode", "msgs/pay", "steps/pay");
  std::printf("|------------------------------------|------------|------------|\n");

  {
    Rng rng(1);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(1);
    protocols::Cluster<OptState> cluster(
        deployment, sched,
        [](net::Party& party, int) {
          auto s = std::make_unique<OptState>();
          s->opt = std::make_unique<protocols::OptimisticBroadcast>(
              party, "opt", 0, [p = s.get()](Bytes) { ++p->delivered; });
          return s;
        });
    cluster.start();
    for (int k = 0; k < payloads; ++k) {
      cluster.protocol(k % 4)->opt->submit(bytes_of("pay" + std::to_string(k)));
    }
    cluster.run_until_all(
        [&](OptState& s) { return s.delivered >= static_cast<std::size_t>(payloads); },
        10000000);
    std::printf("| %-34s | %10.1f | %10.1f |\n", "optimistic fast path",
                static_cast<double>(cluster.simulator().total_messages()) / payloads,
                static_cast<double>(cluster.simulator().now()) / payloads);
  }
  {
    Rng rng(1);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(1);
    protocols::Cluster<AbcState> cluster(
        deployment, sched,
        [](net::Party& party, int) {
          auto s = std::make_unique<AbcState>();
          s->abc = std::make_unique<protocols::AtomicBroadcast>(
              party, "abc", [p = s.get()](int, Bytes) { ++p->delivered; });
          return s;
        });
    cluster.start();
    for (int k = 0; k < payloads; ++k) {
      cluster.protocol(k % 4)->abc->submit(bytes_of("pay" + std::to_string(k)));
    }
    cluster.run_until_all(
        [&](AbcState& s) { return s.delivered >= static_cast<std::size_t>(payloads); },
        10000000);
    std::printf("| %-34s | %10.1f | %10.1f |\n", "randomized atomic broadcast",
                static_cast<double>(cluster.simulator().total_messages()) / payloads,
                static_cast<double>(cluster.simulator().now()) / payloads);
  }
  {
    // Fast prefix, then a forced switch, then pessimistic continuation.
    Rng rng(1);
    auto deployment = adversary::Deployment::threshold(4, 1, rng);
    net::RandomScheduler sched(1);
    protocols::Cluster<OptState> cluster(
        deployment, sched,
        [](net::Party& party, int) {
          auto s = std::make_unique<OptState>();
          s->opt = std::make_unique<protocols::OptimisticBroadcast>(
              party, "opt", 0, [p = s.get()](Bytes) { ++p->delivered; });
          return s;
        });
    cluster.start();
    for (int k = 0; k < payloads / 2; ++k) {
      cluster.protocol(k % 4)->opt->submit(bytes_of("pay" + std::to_string(k)));
    }
    cluster.run_until_all(
        [&](OptState& s) { return s.delivered >= static_cast<std::size_t>(payloads / 2); },
        10000000);
    const std::uint64_t before = cluster.simulator().total_messages();
    cluster.protocol(1)->opt->switch_to_pessimistic();
    cluster.run_until_all([](OptState& s) { return s.opt->pessimistic(); }, 10000000);
    const std::uint64_t switch_cost = cluster.simulator().total_messages() - before;
    for (int k = payloads / 2; k < payloads; ++k) {
      cluster.protocol(k % 4)->opt->submit(bytes_of("pay" + std::to_string(k)));
    }
    cluster.run_until_all(
        [&](OptState& s) { return s.delivered >= static_cast<std::size_t>(payloads); },
        10000000);
    std::printf("| %-34s | %10llu | %10s |\n", "  one-time switch cost (msgs)",
                static_cast<unsigned long long>(switch_cost), "-");
  }
  std::printf("\n");
}

// ---- (b) hybrid vs pure Byzantine --------------------------------------------

void bench_hybrid() {
  std::printf("(b) hybrid (6 servers, t_b=1 + t_c=1) vs pure Byzantine (7 servers, t=2),\n"
              "    both with 1 crash + 1 silent corruption, 4 payloads\n\n");
  std::printf("| %-34s | %3s | %8s | %8s | %-5s |\n", "deployment", "n", "msgs", "steps",
              "live");
  std::printf("|------------------------------------|-----|----------|----------|-------|\n");

  auto run = [&](adversary::Deployment deployment, const char* label) {
    net::RandomScheduler sched(5);
    const int n = deployment.n();
    protocols::Cluster<AbcState> cluster(
        deployment, sched,
        [](net::Party& party, int) {
          auto s = std::make_unique<AbcState>();
          s->abc = std::make_unique<protocols::AtomicBroadcast>(
              party, "abc", [p = s.get()](int, Bytes) { ++p->delivered; });
          return s;
        },
        /*corrupted=*/crypto::party_bit(n - 1) | crypto::party_bit(n - 2));
    cluster.start();
    for (int k = 0; k < 4; ++k) {
      cluster.protocol(k % 3)->abc->submit(bytes_of("pay" + std::to_string(k)));
    }
    const bool live = cluster.run_until_all(
        [](AbcState& s) { return s.delivered >= 4; }, 30000000);
    std::printf("| %-34s | %3d | %8llu | %8llu | %-5s |\n", label, n,
                static_cast<unsigned long long>(cluster.simulator().total_messages()),
                static_cast<unsigned long long>(cluster.simulator().now()),
                live ? "yes" : "NO");
  };

  {
    Rng rng(7);
    run(adversary::hybrid_deployment(6, 1, 1, rng), "hybrid n=6 (t_b=1, t_c=1)");
  }
  {
    Rng rng(7);
    run(adversary::Deployment::threshold(7, 2, rng), "pure Byzantine n=7 (t=2)");
  }
  std::printf("\n");
}

// ---- (c) proactive refresh cost ------------------------------------------------

struct RefreshState {
  std::unique_ptr<protocols::ShareRefresh> refresh;
  bool done = false;
};

void bench_refresh() {
  std::printf("(c) proactive refresh: one epoch of coin-key resharing\n\n");
  std::printf("| %3s | %2s | %8s | %8s | %-9s |\n", "n", "t", "msgs", "steps", "applied");
  std::printf("|-----|----|----------|----------|-----------|\n");
  for (int n : {4, 7, 10}) {
    const int t = (n - 1) / 3;
    Rng rng(static_cast<std::uint64_t>(n));
    auto deployment = adversary::Deployment::threshold(n, t, rng);
    net::RandomScheduler sched(static_cast<std::uint64_t>(n) * 3);
    int applied = 0;
    protocols::Cluster<RefreshState> cluster(
        deployment, sched,
        [&](net::Party& party, int id) {
          auto s = std::make_unique<RefreshState>();
          s->refresh = std::make_unique<protocols::ShareRefresh>(
              party, "refresh", deployment.keys->share(id).coin.unit_shares().at(id),
              deployment.keys->public_keys().coin.verification_values(), t,
              [p = s.get(), &applied](protocols::ShareRefresh::Result r) {
                p->done = true;
                applied = r.dealings_applied;
              });
          return s;
        });
    cluster.start();
    cluster.for_each([](int, RefreshState& s) { s.refresh->start(); });
    const bool ok =
        cluster.run_until_all([](RefreshState& s) { return s.done; }, 50000000);
    std::printf("| %3d | %2d | %8llu | %8llu | %3d %-5s |\n", n, t,
                static_cast<unsigned long long>(cluster.simulator().total_messages()),
                static_cast<unsigned long long>(cluster.simulator().now()), applied,
                ok ? "" : "STALL");
  }
}

}  // namespace

int main() {
  std::printf("E10: ablations for the paper's §6 extensions\n\n");
  bench_optimistic();
  bench_hybrid();
  bench_refresh();
  std::printf("\nShape check: the fast path is several times cheaper per delivery than\n"
              "the randomized stack and the switch costs one agreement; the hybrid\n"
              "6-server system handles 1 Byzantine + 1 crash with fewer servers and\n"
              "fewer messages than the 7-server pure-Byzantine equivalent; a refresh\n"
              "epoch costs a small constant number of broadcast rounds.\n");
  return 0;
}
