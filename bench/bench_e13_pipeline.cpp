// Experiment E13 — the verification pipeline (google-benchmark).
//
// Two layers, matching the two halves of the pipeline:
//
//   1. Micro: batch verification (crypto/batch.hpp) against one-at-a-time
//      verification for the same share sets — coin (DLEQ), threshold-RSA
//      signature, and TDH2 decryption shares, at k = 4 and k = 16.  The
//      headline acceptance number is Sig k=16: batch must be >= 3x the
//      individual path.  Combine-then-verify is measured separately —
//      it is the path honest executions actually take.
//
//   2. Macro: E3-style atomic broadcast, full protocol stack over
//      NetworkedNode + LoopbackHub (the Simulator mandates sequential
//      mode, so worker threads can only show up on the real adapter),
//      with a WorkPool of 0/1/2/4 workers per node.  0 workers is the
//      sequential inline baseline; with workers the combines of the four
//      nodes overlap while the single pump thread keeps moving frames.
#include <benchmark/benchmark.h>

#include <memory>
#include <thread>
#include <vector>

#include "adversary/examples.hpp"
#include "common/work_pool.hpp"
#include "crypto/batch.hpp"
#include "crypto/dealer.hpp"
#include "crypto/shamir.hpp"
#include "net/transport/loopback.hpp"
#include "net/transport/networked_node.hpp"
#include "protocols/atomic.hpp"
#include "protocols/harness.hpp"

using namespace sintra;
using namespace sintra::crypto;

namespace {

std::shared_ptr<const LinearScheme> scheme_for(int n, int t) {
  return std::make_shared<ThresholdScheme>(n, t);
}

// Backend selector, same convention as bench_e7_crypto (always the LAST
// benchmark arg): 0 = test Schnorr, 1 = big Schnorr, 2 = secp256k1.  The
// backend name is attached as the label for run_bench.sh's comparison.
GroupPtr group_for(std::int64_t which) {
  switch (which) {
    case 0: return Group::test_group();
    case 1: return Group::big_group();
    default: return Group::curve_group();
  }
}

void label_backend(benchmark::State& state, const Group& g) { state.SetLabel(g.name()); }

// ---- micro: batch vs individual share verification --------------------------
// All share sets are dealt at (n=16, t=5); Arg(0) picks how many of the
// 16 shares the verifier is handed (the batch API cost is per set size,
// not per dealing).

void BM_CoinVerifyIndividual(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(21);
  GroupPtr g = group_for(state.range(1));
  label_backend(state, *g);
  auto deal = CoinDeal::deal(g, scheme_for(16, 5), rng);
  Bytes name = bytes_of("e13");
  std::vector<CoinShare> shares;
  for (std::size_t p = 0; p < k; ++p) {
    for (auto& s : deal.secret_keys[p].share(deal.public_key, name, rng)) shares.push_back(s);
  }
  for (auto _ : state) {
    bool all = true;
    for (const auto& s : shares) all = deal.public_key.verify_share(name, s) && all;
    benchmark::DoNotOptimize(all);
  }
}
BENCHMARK(BM_CoinVerifyIndividual)
    ->Args({4, 0})->Args({16, 0})->Args({4, 1})->Args({16, 1})->Args({4, 2})->Args({16, 2});

void BM_CoinVerifyBatch(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(21);
  GroupPtr g = group_for(state.range(1));
  label_backend(state, *g);
  auto deal = CoinDeal::deal(g, scheme_for(16, 5), rng);
  Bytes name = bytes_of("e13");
  std::vector<CoinShare> shares;
  for (std::size_t p = 0; p < k; ++p) {
    for (auto& s : deal.secret_keys[p].share(deal.public_key, name, rng)) shares.push_back(s);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(batch::verify_coin_shares(deal.public_key, name, shares, rng));
  }
}
BENCHMARK(BM_CoinVerifyBatch)
    ->Args({4, 0})->Args({16, 0})->Args({4, 1})->Args({16, 1})->Args({4, 2})->Args({16, 2});

void BM_SigVerifyIndividual(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(22);
  auto deal = ThresholdSigDeal::deal(RsaParams::precomputed(128), scheme_for(16, 5), rng);
  Bytes message = bytes_of("e13 sign this");
  std::vector<SigShare> shares;
  for (std::size_t p = 0; p < k; ++p) {
    for (auto& s : deal.secret_keys[p].sign(deal.public_key, message, rng)) shares.push_back(s);
  }
  for (auto _ : state) {
    bool all = true;
    for (const auto& s : shares) all = deal.public_key.verify_share(message, s) && all;
    benchmark::DoNotOptimize(all);
  }
}
BENCHMARK(BM_SigVerifyIndividual)->Arg(4)->Arg(16);

void BM_SigVerifyBatch(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(22);
  auto deal = ThresholdSigDeal::deal(RsaParams::precomputed(128), scheme_for(16, 5), rng);
  Bytes message = bytes_of("e13 sign this");
  std::vector<SigShare> shares;
  for (std::size_t p = 0; p < k; ++p) {
    for (auto& s : deal.secret_keys[p].sign(deal.public_key, message, rng)) shares.push_back(s);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(batch::verify_sig_shares(deal.public_key, message, shares, rng));
  }
}
BENCHMARK(BM_SigVerifyBatch)->Arg(4)->Arg(16);

void BM_SigCombineOptimistic(benchmark::State& state) {
  // The honest-execution fast path: combine a threshold set unverified
  // and check the single combined signature (one e = 65537 exponentiation).
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(22);
  auto deal = ThresholdSigDeal::deal(RsaParams::precomputed(128), scheme_for(16, 5), rng);
  Bytes message = bytes_of("e13 sign this");
  std::vector<SigShare> shares;
  for (std::size_t p = 0; p < k; ++p) {
    for (auto& s : deal.secret_keys[p].sign(deal.public_key, message, rng)) shares.push_back(s);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(batch::combine_sig_optimistic(deal.public_key, message, shares, rng));
  }
}
BENCHMARK(BM_SigCombineOptimistic)->Arg(16);

void BM_Tdh2VerifyIndividual(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(23);
  GroupPtr g = group_for(state.range(1));
  label_backend(state, *g);
  auto deal = Tdh2Deal::deal(g, scheme_for(16, 5), rng);
  auto ct = deal.public_key.encrypt(bytes_of("message"), bytes_of("l"), rng);
  std::vector<Tdh2DecShare> shares;
  for (std::size_t p = 0; p < k; ++p) {
    for (auto& s : deal.secret_keys[p].decrypt_shares(deal.public_key, ct, rng)) {
      shares.push_back(s);
    }
  }
  for (auto _ : state) {
    bool all = true;
    for (const auto& s : shares) all = deal.public_key.verify_share(ct, s) && all;
    benchmark::DoNotOptimize(all);
  }
}
BENCHMARK(BM_Tdh2VerifyIndividual)
    ->Args({4, 0})->Args({16, 0})->Args({4, 1})->Args({16, 1})->Args({4, 2})->Args({16, 2});

void BM_Tdh2VerifyBatch(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  Rng rng(23);
  GroupPtr g = group_for(state.range(1));
  label_backend(state, *g);
  auto deal = Tdh2Deal::deal(g, scheme_for(16, 5), rng);
  auto ct = deal.public_key.encrypt(bytes_of("message"), bytes_of("l"), rng);
  std::vector<Tdh2DecShare> shares;
  for (std::size_t p = 0; p < k; ++p) {
    for (auto& s : deal.secret_keys[p].decrypt_shares(deal.public_key, ct, rng)) {
      shares.push_back(s);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(batch::verify_dec_shares(deal.public_key, ct, shares, rng));
  }
}
BENCHMARK(BM_Tdh2VerifyBatch)
    ->Args({4, 0})->Args({16, 0})->Args({4, 1})->Args({16, 1})->Args({4, 2})->Args({16, 2});

// ---- macro: E3 atomic broadcast with 0/1/2/4 pool workers -------------------

using net::transport::LoopbackHub;
using net::transport::NetworkedNode;
using protocols::AtomicBroadcast;
using protocols::HostedParty;

struct AbcState {
  std::unique_ptr<AtomicBroadcast> abc;
  std::size_t delivered = 0;
};

/// The networked_node_test cluster, plus one WorkPool per node: the
/// deterministic single-pump-thread stand-in for the TCP deployment, which
/// is exactly where worker threads are allowed to exist.
struct PipelineCluster {
  LoopbackHub hub;
  std::vector<std::unique_ptr<common::WorkPool>> pools;
  std::vector<std::unique_ptr<NetworkedNode>> nodes;
  std::vector<std::unique_ptr<HostedParty<AbcState>>> hosts;

  PipelineCluster(const adversary::Deployment& deployment, std::uint64_t seed,
                  std::size_t workers)
      : hub(deployment.n(), seed) {
    const int n = deployment.n();
    for (int id = 0; id < n; ++id) {
      NetworkedNode::Config config;
      config.node_id = id;
      config.n = n;
      auto node = std::make_unique<NetworkedNode>(config);
      auto pool = std::make_unique<common::WorkPool>(workers);
      auto host = std::make_unique<HostedParty<AbcState>>(
          *node, id, deployment, seed * 7919 + static_cast<std::uint64_t>(id),
          [](net::Party& party) {
            auto state = std::make_unique<AbcState>();
            state->abc = std::make_unique<AtomicBroadcast>(
                party, "abc", [s = state.get()](int, Bytes) { ++s->delivered; });
            return state;
          });
      host->party().set_work_pool(pool.get());
      node->set_work_pool(pool.get());
      node->attach(*host);
      node->bind_transport(
          [this, id](int peer, Bytes payload) { hub.send(id, peer, std::move(payload)); });
      hub.set_receiver(id, [raw = node.get()](int from, BytesView payload) {
        raw->on_transport_receive(from, payload);
      });
      pools.push_back(std::move(pool));
      nodes.push_back(std::move(node));
      hosts.push_back(std::move(host));
    }
  }

  bool run_until_each_delivered(std::size_t payloads, std::size_t max_iters = 50'000'000) {
    auto done = [&] {
      for (auto& host : hosts) {
        if (host->protocol().delivered < payloads) return false;
      }
      return true;
    };
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
      if (done()) return true;
      bool progressed = false;
      for (auto& node : nodes) progressed = (node->poll() > 0) || progressed;
      progressed = hub.step() || progressed;
      if (!progressed) {
        // Nothing on the wires and no drained completions: either a
        // combine is still in flight on a worker (yield and re-poll) or
        // retransmission is due (tick is a no-op when it isn't).
        hub.tick();
        std::this_thread::yield();
      }
    }
    return done();
  }
};

void BM_E3AtomicPipeline(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  constexpr int kN = 4;
  constexpr std::size_t kPayloads = 8;
  Rng rng(31);
  adversary::CryptoConfig config;
  config.group = group_for(state.range(1));
  label_backend(state, *config.group);
  // Keys dealt once, outside timing (Deployment is shared_ptr-backed).
  auto deployment = adversary::Deployment::threshold(kN, 1, rng, config);
  std::uint64_t seed = 1;
  bool live = true;
  for (auto _ : state) {
    // Cluster build (thread spawn) and teardown (worker joins) stay
    // outside the timed region; only submit-to-last-delivery is measured.
    state.PauseTiming();
    auto cluster = std::make_unique<PipelineCluster>(deployment, ++seed, workers);
    state.ResumeTiming();
    for (std::size_t k = 0; k < kPayloads; ++k) {
      cluster->hosts[k % kN]->protocol().abc->submit(bytes_of("pay" + std::to_string(k)));
    }
    live = cluster->run_until_each_delivered(kPayloads) && live;
    state.PauseTiming();
    cluster.reset();
    state.ResumeTiming();
  }
  if (!live) state.SkipWithError("atomic broadcast did not deliver");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kPayloads));
}
BENCHMARK(BM_E3AtomicPipeline)
    ->Args({0, 0})->Args({1, 0})->Args({2, 0})->Args({4, 0})
    ->Args({0, 1})->Args({2, 1})
    ->Args({0, 2})->Args({2, 2})
    ->Unit(benchmark::kMillisecond);

// ---- macro: multi-group atomic broadcast with 0/1/2/4 protocol executors ----
//
// The executor-scaling experiment (issue 7): G independent atomic
// broadcast groups ("abc0".."abc3") per node are independent instance
// trees, so with E executors attached their handlers run on up to E cores
// concurrently while the pump thread only moves frames.  E=0 is the
// sequential inline baseline over the identical group layout; the
// speedup at E=4 on a multi-core host is the tentpole acceptance number
// (on a 1-core container the numbers collapse to ~1x — run on the CI
// bench runner for the real curve).

constexpr int kGroups = 4;

struct MultiAbcState {
  std::vector<std::unique_ptr<AtomicBroadcast>> groups;
  std::atomic<std::size_t> delivered{0};  ///< read by the pump's done()
};

struct ExecutorCluster {
  LoopbackHub hub;
  std::vector<std::unique_ptr<NetworkedNode>> nodes;
  std::vector<std::unique_ptr<HostedParty<MultiAbcState>>> hosts;
  // Declared last: pools stop (draining tasks that touch parties and
  // nodes) before anything they reference is destroyed.
  std::vector<std::unique_ptr<common::ExecutorPool>> execs;

  ExecutorCluster(const adversary::Deployment& deployment, std::uint64_t seed,
                  std::size_t executors)
      : hub(deployment.n(), seed) {
    const int n = deployment.n();
    for (int id = 0; id < n; ++id) {
      NetworkedNode::Config config;
      config.node_id = id;
      config.n = n;
      auto node = std::make_unique<NetworkedNode>(config);
      auto pool = std::make_unique<common::ExecutorPool>(executors);
      auto host = std::make_unique<HostedParty<MultiAbcState>>(
          *node, id, deployment, seed * 7919 + static_cast<std::uint64_t>(id),
          [&pool](net::Party& party) {
            party.set_executors(pool.get());
            auto state = std::make_unique<MultiAbcState>();
            for (int g = 0; g < kGroups; ++g) {
              const std::string tag = "abc" + std::to_string(g);
              // Construction inside with_instance: timers the stack arms
              // while being built are attributed to this group's executor.
              party.with_instance(tag, [&] {
                state->groups.push_back(std::make_unique<AtomicBroadcast>(
                    party, tag, [s = state.get()](int, Bytes) {
                      s->delivered.fetch_add(1, std::memory_order_relaxed);
                    }));
              });
            }
            return state;
          });
      node->set_executors(pool.get());
      node->attach(*host);
      // Batched transport: every payload the executors buffered during
      // one pump cycle rides one BATCH super-frame per peer.
      node->bind_transport_batched([this, id](int peer, std::vector<net::transport::GroupPayload> payloads) {
        hub.send_many(id, peer, std::move(payloads));
      });
      hub.set_receiver(id, [raw = node.get()](int from, BytesView payload) {
        raw->on_transport_receive(from, payload);
      });
      nodes.push_back(std::move(node));
      hosts.push_back(std::move(host));
      execs.push_back(std::move(pool));
    }
  }

  ~ExecutorCluster() {
    for (auto& pool : execs) pool->stop();
  }

  bool run_until_each_delivered(std::size_t payloads, std::size_t max_iters = 50'000'000) {
    auto done = [&] {
      for (auto& host : hosts) {
        if (host->protocol().delivered.load(std::memory_order_relaxed) < payloads) return false;
      }
      return true;
    };
    for (std::size_t iter = 0; iter < max_iters; ++iter) {
      if (done()) return true;
      bool progressed = false;
      for (auto& node : nodes) progressed = (node->poll() > 0) || progressed;
      progressed = hub.step() || progressed;
      if (!progressed) {
        // Handlers may still be running on executors; settle them so
        // their outbound sends reach the outboxes, then retransmit.
        for (auto& pool : execs) pool->wait_idle();
        for (auto& node : nodes) node->poll();
        hub.tick();
        std::this_thread::yield();
      }
    }
    return done();
  }
};

void BM_E3AtomicExecutors(benchmark::State& state) {
  const auto executors = static_cast<std::size_t>(state.range(0));
  constexpr int kN = 4;
  constexpr std::size_t kPayloadsPerGroup = 4;
  constexpr std::size_t kPayloads = kPayloadsPerGroup * kGroups;
  Rng rng(37);
  adversary::CryptoConfig config;
  config.group = group_for(state.range(1));
  label_backend(state, *config.group);
  auto deployment = adversary::Deployment::threshold(kN, 1, rng, config);
  std::uint64_t seed = 1;
  bool live = true;
  for (auto _ : state) {
    state.PauseTiming();
    auto cluster = std::make_unique<ExecutorCluster>(deployment, ++seed, executors);
    state.ResumeTiming();
    for (std::size_t k = 0; k < kPayloads; ++k) {
      const int g = static_cast<int>(k) % kGroups;
      auto& host = *cluster->hosts[k % kN];
      host.party().with_instance("abc" + std::to_string(g), [&] {
        host.protocol().groups[static_cast<std::size_t>(g)]->submit(
            bytes_of("pay" + std::to_string(k)));
      });
    }
    // Every node delivers every submitted payload (once, atomically).
    live = cluster->run_until_each_delivered(kPayloads) && live;
    state.PauseTiming();
    cluster.reset();
    state.ResumeTiming();
  }
  if (!live) state.SkipWithError("atomic broadcast did not deliver");
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kPayloads));
}
BENCHMARK(BM_E3AtomicExecutors)
    ->Args({0, 0})->Args({1, 0})->Args({2, 0})->Args({4, 0})
    ->Args({0, 2})->Args({4, 2})
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
