#!/usr/bin/env bash
# Run the google-benchmark suites (E7 crypto micro-benchmarks, E13
# verification pipeline, E16 reconfiguration epoch latency n=4->5->4,
# E17 shard scaling S=1/2/4/8) and capture the results as JSON so future
# PRs have a perf trajectory to compare against.  When a committed
# baseline JSON exists at the repo root, any benchmark that comes out
# >20% slower than its committed time prints a REGRESSION warning, and
# one deduplicated summary of all regressed suites follows the sweep
# (the script exits 1 under --strict).
#
# Usage: bench/run_bench.sh [--strict] [build-dir]
# Defaults: build/; output JSONs land at the repo root (BENCH_E7.json,
# BENCH_E13.json, BENCH_E16.json, BENCH_E17.json), overwriting the
# committed baselines — inspect the diff before committing new numbers.
set -euo pipefail

strict=0
if [[ "${1:-}" == "--strict" ]]; then
  strict=1
  shift
fi

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"

# backend_compare <bench.json>: group-backend comparison table.  Labeled
# benchmarks carry the group backend name as their label and the backend
# selector as their LAST argument; rows differing only in that selector
# are the same operation on different backends, so print them side by
# side with the speedup of each backend over the slowest.
backend_compare() {
  python3 - "$1" <<'EOF'
import json, sys
from collections import defaultdict

with open(sys.argv[1]) as f:
    data = json.load(f)

families = defaultdict(dict)  # (family-with-non-backend-args) -> label -> ns
for b in data.get("benchmarks", []):
    if b.get("run_type") == "aggregate" or not b.get("label"):
        continue
    parts = b["name"].split("/")
    key = "/".join(parts[:-1])  # strip trailing backend selector
    families[key][b["label"]] = float(b["real_time"])

printed_header = False
for key in sorted(families):
    rows = families[key]
    if len(rows) < 2:
        continue
    if not printed_header:
        print("\n-- backend comparison (speedup vs slowest backend) --")
        printed_header = True
    slowest = max(rows.values())
    cols = ", ".join(f"{label}: {ns:,.0f} ns ({slowest / ns:.1f}x)"
                     for label, ns in sorted(rows.items(), key=lambda kv: -kv[1]))
    print(f"{key}:  {cols}")
EOF
}

# executor_scaling <bench.json>: multi-core scaling table for the
# BM_E3AtomicExecutors family (issue 7).  Rows are named
# BM_E3AtomicExecutors/<executors>/<backend>; print each backend's curve
# as speedup over its own sequential (E=0) row.  On a 1-core container
# the curve collapses to ~1x — the multi-core CI bench job records the
# real one.  Returns 1 when the host has >=4 CPUs, an E=4 row exists,
# and its speedup is below the 1.5x acceptance floor.
executor_scaling() {
  python3 - "$1" <<'EOF'
import json, sys
from collections import defaultdict

with open(sys.argv[1]) as f:
    data = json.load(f)

curves = defaultdict(dict)  # backend label -> executors -> ms
for b in data.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    parts = b["name"].split("/")
    if parts[0] != "BM_E3AtomicExecutors" or len(parts) != 3:
        continue
    curves[b.get("label", parts[2])][int(parts[1])] = float(b["real_time"])

if not curves:
    sys.exit(0)
num_cpus = data.get("context", {}).get("num_cpus", 1)
print(f"\n-- executor scaling, E3 atomic ({num_cpus} CPUs) --")
failed = False
for label in sorted(curves):
    curve = curves[label]
    base = curve.get(0)
    if base is None or base <= 0:
        continue
    cols = ", ".join(f"E={e}: {base / t:.2f}x" for e, t in sorted(curve.items()))
    print(f"{label}:  {cols}")
    if num_cpus >= 4 and 4 in curve and base / curve[4] < 1.5:
        print(f"SCALING: {label}: {base / curve[4]:.2f}x at 4 executors "
              f"(< 1.5x acceptance floor on a {num_cpus}-core host)")
        failed = True
sys.exit(1 if failed else 0)
EOF
}

# shard_scaling <bench.json>: shard-scaling table for the
# BM_E17ShardedAtomic family (issue 10).  Rows are named
# BM_E17ShardedAtomic/<shards>; items_per_second is the AGGREGATE
# committed request rate across all shards, so the curve is that rate's
# ratio over the S=1 row.  On a 1-core container the curve flattens —
# the multi-core CI bench job records the real one.  Returns 1 when the
# host has >=4 CPUs, an S=4 row exists, and its aggregate throughput is
# below the 1.5x acceptance floor.
shard_scaling() {
  python3 - "$1" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    data = json.load(f)

curve = {}  # shards -> aggregate items/s
batch = {}  # shards -> payloads per BATCH frame
for b in data.get("benchmarks", []):
    if b.get("run_type") == "aggregate":
        continue
    parts = b["name"].split("/")
    if parts[0] != "BM_E17ShardedAtomic" or len(parts) != 2:
        continue
    curve[int(parts[1])] = float(b.get("items_per_second", 0.0))
    batch[int(parts[1])] = float(b.get("payloads_per_batch", 0.0))

if not curve:
    sys.exit(0)
num_cpus = data.get("context", {}).get("num_cpus", 1)
print(f"\n-- shard scaling, E17 aggregate committed req/s ({num_cpus} CPUs) --")
base = curve.get(1)
if base is None or base <= 0:
    sys.exit(0)
cols = ", ".join(f"S={s}: {rate:,.0f}/s ({rate / base:.2f}x, {batch.get(s, 0):.1f} payloads/batch)"
                 for s, rate in sorted(curve.items()))
print(cols)
if num_cpus >= 4 and 4 in curve and curve[4] / base < 1.5:
    print(f"SCALING: {curve[4] / base:.2f}x aggregate throughput at 4 shards "
          f"(< 1.5x acceptance floor on a {num_cpus}-core host)")
    sys.exit(1)
sys.exit(0)
EOF
}

# compare <old.json> <new.json>: warn on >20% real_time slowdowns.
compare_json() {
  python3 - "$1" "$2" <<'EOF'
import json, sys

def load(path):
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        # Skip aggregate rows; compare per-benchmark base measurements.
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = float(b["real_time"])
    return out

old, new = load(sys.argv[1]), load(sys.argv[2])
regressed = 0
for name, new_t in sorted(new.items()):
    old_t = old.get(name)
    if old_t is None or old_t <= 0:
        continue
    ratio = new_t / old_t
    if ratio > 1.20:
        regressed += 1
        print(f"REGRESSION: {name}: {old_t:.0f} -> {new_t:.0f} ns "
              f"({(ratio - 1) * 100:.0f}% slower than committed baseline)")
sys.exit(1 if regressed else 0)
EOF
}

status=0
regressed_suites=()
for exp in e7_crypto e13_pipeline e16_reconfig e17_sharding; do
  id="${exp%%_*}"
  id="${id^^}"  # e7 -> E7
  bench_bin="$build_dir/bench/bench_${exp}"
  out_json="$repo_root/BENCH_${id}.json"
  if [[ ! -x "$bench_bin" ]]; then
    echo "error: $bench_bin not built (run: cmake -B build -S . && cmake --build build -j)" >&2
    exit 1
  fi
  baseline=""
  if [[ -f "$out_json" ]]; then
    baseline="$(mktemp)"
    cp "$out_json" "$baseline"
  fi
  "$bench_bin" --benchmark_out="$out_json" --benchmark_out_format=json \
               --benchmark_format=console
  echo "wrote $out_json"
  backend_compare "$out_json"
  if [[ "$id" == "E13" ]]; then
    if ! executor_scaling "$out_json"; then
      echo "warning: E3 atomic executor scaling below the 1.5x floor" >&2
      status=1
    fi
  fi
  if [[ "$id" == "E17" ]]; then
    if ! shard_scaling "$out_json"; then
      echo "warning: E17 shard scaling below the 1.5x aggregate-throughput floor" >&2
      status=1
    fi
  fi
  if [[ -n "$baseline" ]]; then
    if ! compare_json "$baseline" "$out_json"; then
      # Per-benchmark REGRESSION lines already printed; collect the suite
      # id and warn ONCE after the sweep instead of once per suite.
      regressed_suites+=("$id")
      status=1
    fi
    rm -f "$baseline"
  fi
done

if [[ ${#regressed_suites[@]} -gt 0 ]]; then
  echo "warning: benchmarks regressed >20% vs the committed JSONs in: ${regressed_suites[*]}" >&2
fi

if [[ $strict -eq 1 ]]; then
  exit $status
fi
exit 0
