#!/usr/bin/env bash
# Run the E7 crypto micro-benchmarks and capture the results as JSON so
# future PRs have a perf trajectory to compare against.
#
# Usage: bench/run_bench.sh [build-dir] [output-json]
# Defaults: build/ and BENCH_E7.json at the repo root.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_E7.json}"

bench_bin="$build_dir/bench/bench_e7_crypto"
if [[ ! -x "$bench_bin" ]]; then
  echo "error: $bench_bin not built (run: cmake -B build -S . && cmake --build build -j)" >&2
  exit 1
fi

"$bench_bin" --benchmark_out="$out_json" --benchmark_out_format=json \
             --benchmark_format=console
echo "wrote $out_json"
