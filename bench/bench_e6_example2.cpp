// Experiment E6 — the paper's Example 2 (§4.3): sixteen servers at four
// locations x four operating systems.
//
// Regenerated claims:
//   * the structure tolerates the SIMULTANEOUS corruption of one full
//     location and one full OS — 7 of 16 servers — for every one of the
//     16 (location, OS) combinations;
//   * liveness and safety hold "as long as there are servers with three
//     operating systems at three locations that are uncorrupted";
//   * any threshold solution tolerates at most 5 of 16 (Q³), and a
//     threshold deployment at t = 5 stalls under the 7-server pattern.
#include <cstdio>

#include "adversary/examples.hpp"
#include "protocols/atomic.hpp"
#include "protocols/harness.hpp"

using namespace sintra;

namespace {

struct AbcState {
  std::unique_ptr<protocols::AtomicBroadcast> abc;
  std::vector<Bytes> log;
};

crypto::PartySet row_and_column(int location, int os) {
  crypto::PartySet set = 0;
  for (int k = 0; k < 4; ++k) {
    set |= crypto::party_bit(adversary::example2_party(location, k));
    set |= crypto::party_bit(adversary::example2_party(k, os));
  }
  return set;
}

template <typename MakeDeployment>
bool run_with_corruption(MakeDeployment&& make_deployment, crypto::PartySet corrupted,
                         std::uint64_t seed, std::uint64_t budget) {
  Rng rng(seed);
  auto deployment = make_deployment(rng);
  net::RandomScheduler sched(seed);
  protocols::Cluster<AbcState> cluster(
      deployment, sched,
      [](net::Party& party, int) {
        auto s = std::make_unique<AbcState>();
        s->abc = std::make_unique<protocols::AtomicBroadcast>(
            party, "abc",
            [p = s.get()](int, Bytes payload) { p->log.push_back(std::move(payload)); });
        return s;
      },
      corrupted, 0, seed);
  cluster.start();
  int found = 0;
  for (int id = 0; id < 16 && found < 2; ++id) {
    if (cluster.protocol(id) != nullptr) {
      cluster.protocol(id)->abc->submit(bytes_of("m" + std::to_string(id)));
      ++found;
    }
  }
  if (!cluster.run_until_all([](AbcState& s) { return s.log.size() >= 2; }, budget)) {
    return false;
  }
  const std::vector<Bytes>* reference = nullptr;
  bool safe = true;
  cluster.for_each([&](int, AbcState& s) {
    if (reference == nullptr) reference = &s.log;
    else if (s.log != *reference) safe = false;
  });
  return safe;
}

}  // namespace

int main() {
  auto structure = adversary::example2_structure();
  std::printf("E6: Example 2 — 16 servers, 4 locations x 4 operating systems\n\n");
  std::printf("structure: |A2*| = %zu maximal sets, Q3 = %s, max corruptions = %d;\n"
              "any Q3 threshold on 16 servers allows at most t = 5.\n\n",
              structure.maximal_sets().size(), structure.satisfies_q3() ? "yes" : "NO",
              structure.max_corruptions());

  int ok = 0;
  int total = 0;
  for (int location = 0; location < 4; ++location) {
    for (int os = 0; os < 4; ++os) {
      ++total;
      const bool survived = run_with_corruption(
          [](Rng& rng) { return adversary::example2_deployment(rng); },
          row_and_column(location, os), static_cast<std::uint64_t>(total) * 23 + 5,
          100000000);
      if (survived) ++ok;
      else std::printf("  FAILURE: location %d + OS %d\n", location, os);
    }
  }

  std::printf("| %-52s | %9s |\n", "configuration (corruption = 7 servers each)", "outcome");
  std::printf("|------------------------------------------------------|-----------|\n");
  std::printf("| %-52s | %4d/%-4d |\n",
              "generalized A2: every (location ∪ OS) pattern", ok, total);

  const bool threshold_survives = run_with_corruption(
      [](Rng& rng) { return adversary::Deployment::threshold(16, 5, rng); },
      row_and_column(0, 0), 999, 6000000);
  std::printf("| %-52s | %9s |\n", "threshold t=5: same 7-server pattern",
              threshold_survives ? "live?!" : "STALLS");
  const bool threshold_5_ok = run_with_corruption(
      [](Rng& rng) { return adversary::Deployment::threshold(16, 5, rng); },
      crypto::party_bit(0) | crypto::party_bit(3) | crypto::party_bit(6) |
          crypto::party_bit(9) | crypto::party_bit(12),
      1001, 200000000);
  std::printf("| %-52s | %9s |\n", "threshold t=5: arbitrary 5 servers (its maximum)",
              threshold_5_ok ? "live+safe" : "FAILS");

  std::printf("\nShape check: the generalized structure survives 7 targeted failures in\n"
              "all 16 patterns; the strongest threshold configuration handles 5\n"
              "arbitrary failures but stalls at the same 7 — the paper's comparison.\n");
  return (ok == total && threshold_5_ok && !threshold_survives) ? 0 : 1;
}
