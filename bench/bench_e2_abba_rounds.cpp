// Experiment E2 — ABBA terminates in an expected CONSTANT number of
// rounds, independent of n (paper §2/§3: "Byzantine agreement can be
// solved by randomization in an expected constant number of rounds").
//
// Sweep n (with t = floor((n-1)/3)), run many independent agreement
// instances with adversarially mixed inputs under random and hostile
// schedulers, and report the distribution of decision rounds.  The paper's
// claim holds if mean/max rounds stay flat as n grows.
#include <cstdio>

#include "protocols/abba.hpp"
#include "protocols/harness.hpp"

using namespace sintra;

namespace {

struct AbbaState {
  std::unique_ptr<protocols::Abba> abba;
  std::optional<bool> decision;
  int round = 0;
};

struct RunStats {
  double mean_rounds = 0;
  int max_rounds = 0;
  double mean_steps = 0;
  int failures = 0;
};

RunStats sweep(int n, int t, int instances, bool hostile) {
  RunStats stats;
  double total_rounds = 0;
  double total_steps = 0;
  for (int inst = 0; inst < instances; ++inst) {
    const std::uint64_t seed = static_cast<std::uint64_t>(inst) * 131 + 7;
    Rng rng(seed);
    auto deployment = adversary::Deployment::threshold(n, t, rng);
    std::unique_ptr<net::Scheduler> sched;
    if (hostile) {
      sched = std::make_unique<net::LifoScheduler>(seed);
    } else {
      sched = std::make_unique<net::RandomScheduler>(seed);
    }
    crypto::PartySet corrupted = 0;
    for (int i = 0; i < t; ++i) corrupted |= crypto::party_bit(3 * i);
    protocols::Cluster<AbbaState> cluster(
        deployment, *sched,
        [](net::Party& party, int) {
          auto s = std::make_unique<AbbaState>();
          s->abba = std::make_unique<protocols::Abba>(party, "ba",
                                                      [p = s.get()](bool v, int r) {
                                                        p->decision = v;
                                                        p->round = r;
                                                      });
          return s;
        },
        corrupted, 0, seed);
    cluster.start();
    cluster.for_each([&](int id, AbbaState& s) { s.abba->start(id % 2 == 0); });
    if (!cluster.run_until_all([](AbbaState& s) { return s.decision.has_value(); },
                               30000000)) {
      ++stats.failures;
      continue;
    }
    int worst_round = 0;
    cluster.for_each([&](int, AbbaState& s) { worst_round = std::max(worst_round, s.round); });
    total_rounds += worst_round;
    stats.max_rounds = std::max(stats.max_rounds, worst_round);
    total_steps += static_cast<double>(cluster.simulator().now());
  }
  const int ok = instances - stats.failures;
  if (ok > 0) {
    stats.mean_rounds = total_rounds / ok;
    stats.mean_steps = total_steps / ok;
  }
  return stats;
}

}  // namespace

int main() {
  const int instances = 20;
  std::printf("E2: ABBA round complexity (mixed inputs, t crashes, %d instances/row)\n",
              instances);
  std::printf("Paper claim: expected CONSTANT rounds, independent of n.\n\n");
  std::printf("| %3s | %2s | %-9s | %11s | %10s | %11s | %5s |\n", "n", "t", "scheduler",
              "mean rounds", "max rounds", "mean steps", "fails");
  std::printf("|-----|----|-----------|-------------|------------|-------------|-------|\n");
  for (int n : {4, 7, 10, 13, 16, 19}) {
    const int t = (n - 1) / 3;
    for (bool hostile : {false, true}) {
      RunStats stats = sweep(n, t, instances, hostile);
      std::printf("| %3d | %2d | %-9s | %11.2f | %10d | %11.0f | %5d |\n", n, t,
                  hostile ? "lifo-adv" : "random", stats.mean_rounds, stats.max_rounds,
                  stats.mean_steps, stats.failures);
    }
  }
  std::printf("\nShape check: 'mean rounds' stays ~1-3 across the whole n sweep —\n"
              "the expected-constant-round behaviour the paper claims (steps grow\n"
              "with n because each round carries O(n^2) messages, see E9).\n");
  return 0;
}
